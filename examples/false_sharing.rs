//! False sharing, made visible: two threads increment *different* counters
//! that either share one cache block or live on separate blocks. Same
//! program logic, wildly different coherence traffic — one of the quietest
//! ways to waste a parallel computer.
//!
//! ```text
//! cargo run --release --example false_sharing
//! ```

use tenways::prelude::*;

/// Increments a private counter `rounds` times (load, store, tiny compute).
#[derive(Debug, Clone)]
struct CounterLoop {
    counter: Addr,
    rounds: u64,
    value: u64,
    phase: u8,
}

impl ThreadProgram for CounterLoop {
    fn next_op(&mut self, last: Option<u64>) -> Option<Op> {
        match self.phase {
            0 => {
                if self.rounds == 0 {
                    return None;
                }
                self.rounds -= 1;
                self.phase = 1;
                Some(Op::Load {
                    addr: self.counter,
                    tag: MemTag::Data,
                    consume: true,
                })
            }
            1 => {
                self.value = last.expect("counter value");
                self.phase = 2;
                Some(Op::store(self.counter, self.value + 1))
            }
            _ => {
                self.phase = 0;
                Some(Op::Compute(3))
            }
        }
    }

    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        "counter-loop"
    }
}

fn run(label: &str, a: Addr, b: Addr, rounds: u64) -> (u64, u64) {
    let cfg = MachineConfig::builder()
        .cores(2)
        .build()
        .expect("valid machine");
    let spec = MachineSpec::baseline(ConsistencyModel::Tso).with_machine(cfg);
    let programs: Vec<Box<dyn ThreadProgram>> = vec![
        Box::new(CounterLoop {
            counter: a,
            rounds,
            value: 0,
            phase: 0,
        }),
        Box::new(CounterLoop {
            counter: b,
            rounds,
            value: 0,
            phase: 0,
        }),
    ];
    let mut m = Machine::new(&spec, programs);
    let s = m.run(10_000_000);
    assert!(s.finished, "{label}: hung");
    assert_eq!(m.mem().read(a), rounds, "{label}: thread 0 lost updates");
    assert_eq!(m.mem().read(b), rounds, "{label}: thread 1 lost updates");
    let stats = m.merged_stats();
    let coherence =
        stats.get("l1.invalidations") + stats.get("l1.recalls") + stats.get("l1.downgrades");
    (s.cycles, coherence)
}

fn main() {
    let rounds = 500;
    // Same block: counters 8 bytes apart (both in block 0x1_0000 / 64).
    let (shared_cycles, shared_coh) = run("false-shared", Addr(0x1_0000), Addr(0x1_0008), rounds);
    // Separate blocks: counters 64 bytes apart.
    let (split_cycles, split_coh) = run("padded", Addr(0x1_0000), Addr(0x1_0040), rounds);

    println!("two threads, two private counters, {rounds} increments each:\n");
    println!("{:<16}{:>12}{:>24}", "layout", "cycles", "coherence events");
    println!(
        "{:<16}{:>12}{:>24}",
        "same block", shared_cycles, shared_coh
    );
    println!(
        "{:<16}{:>12}{:>24}",
        "padded apart", split_cycles, split_coh
    );
    println!(
        "\nfalse sharing cost: {:.1}x slower, {:.0}x the coherence traffic — \
         for two counters no thread ever shares.",
        shared_cycles as f64 / split_cycles as f64,
        shared_coh as f64 / split_coh.max(1) as f64
    );
}
