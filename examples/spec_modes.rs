//! Speculation modes side by side: disabled vs on-demand vs continuous vs
//! a capped per-store design, across a conflict sweep — shows both the win
//! and the crossover where speculation loses.
//!
//! ```text
//! cargo run --release --example spec_modes
//! ```

use tenways::prelude::*;

fn main() {
    let modes: [(&str, SpecConfig); 4] = [
        ("disabled", SpecConfig::disabled()),
        ("on-demand", SpecConfig::on_demand()),
        ("continuous", SpecConfig::continuous()),
        ("per-store(8)", SpecConfig::per_store(8)),
    ];

    println!("contended kernel, 4 threads, TSO; runtime in cycles per mode\n");
    println!(
        "{:>10}{}",
        "conflict p",
        modes
            .iter()
            .map(|(n, _)| format!("{n:>14}"))
            .collect::<String>()
    );

    for p in [0.0, 0.05, 0.2, 0.5] {
        print!("{p:>10.2}");
        for (_, spec) in &modes {
            let r = Experiment::contended(ContendedParams {
                threads: 4,
                ops_per_thread: 400,
                conflict_p: p,
                hot_blocks: 4,
                fence_period: 6,
                seed: 11,
            })
            .model(ConsistencyModel::Tso)
            .spec(*spec)
            .run()
            .unwrap();
            assert!(r.summary.finished);
            print!("{:>14}", r.summary.cycles);
        }
        println!();
    }

    println!("\nrollback behaviour at p=0.2 (on-demand vs continuous):");
    for (name, spec) in [
        ("on-demand", SpecConfig::on_demand()),
        ("continuous", SpecConfig::continuous()),
    ] {
        let r = Experiment::contended(ContendedParams {
            threads: 4,
            ops_per_thread: 400,
            conflict_p: 0.2,
            hot_blocks: 4,
            fence_period: 6,
            seed: 11,
        })
        .model(ConsistencyModel::Tso)
        .spec(spec)
        .run()
        .unwrap();
        println!(
            "  {name:<11} epochs={:<6} commits={:<6} rollbacks={:<6} wasted cycles={}",
            r.stats.get("spec.epochs"),
            r.stats.get("spec.commits"),
            r.stats.get("spec.rollbacks"),
            r.stats.get("spec.wasted_cycles"),
        );
    }
}
