//! Lock duel: hand-build two reactive thread programs that fight over a
//! spin lock, run them on the raw `Machine` API, and watch the coherence
//! traffic — a tour of the lower-level building blocks (no workload suite).
//!
//! ```text
//! cargo run --release --example lock_duel
//! ```

use tenways::prelude::*;

/// Acquires `lock` with test-and-test-and-set CAS, bumps a shared counter
/// `rounds` times inside the critical section, releases, repeats.
#[derive(Debug, Clone)]
struct LockFighter {
    lock: Addr,
    counter: Addr,
    rounds: u64,
    /// 0=test 1=cas-wait 2=cs-load 3=cs-store 4=release-fence 5=release
    phase: u8,
    counter_val: u64,
}

impl ThreadProgram for LockFighter {
    fn next_op(&mut self, last: Option<u64>) -> Option<Op> {
        match self.phase {
            0 => {
                if self.rounds == 0 {
                    return None;
                }
                self.phase = 1;
                Some(Op::Load {
                    addr: self.lock,
                    tag: MemTag::Lock,
                    consume: true,
                })
            }
            1 => match last {
                Some(0) => {
                    self.phase = 2;
                    Some(Op::Rmw {
                        addr: self.lock,
                        rmw: RmwOp::Cas {
                            expected: 0,
                            desired: 1,
                        },
                        tag: MemTag::Lock,
                        consume: true,
                    })
                }
                _ => Some(Op::Load {
                    addr: self.lock,
                    tag: MemTag::Lock,
                    consume: true,
                }),
            },
            2 => {
                if last != Some(0) {
                    // Lost the CAS race: back to spinning.
                    self.phase = 1;
                    return Some(Op::Load {
                        addr: self.lock,
                        tag: MemTag::Lock,
                        consume: true,
                    });
                }
                self.phase = 3;
                Some(Op::Fence(FenceKind::Acquire))
            }
            3 => {
                self.phase = 4;
                Some(Op::Load {
                    addr: self.counter,
                    tag: MemTag::Data,
                    consume: true,
                })
            }
            4 => {
                self.counter_val = last.expect("counter value");
                self.phase = 5;
                Some(Op::Store {
                    addr: self.counter,
                    value: self.counter_val + 1,
                    tag: MemTag::Data,
                })
            }
            5 => {
                self.phase = 6;
                Some(Op::Fence(FenceKind::Release))
            }
            _ => {
                self.phase = 0;
                self.rounds -= 1;
                Some(Op::Store {
                    addr: self.lock,
                    value: 0,
                    tag: MemTag::Lock,
                })
            }
        }
    }

    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        "lock-fighter"
    }
}

fn main() {
    let lock = Addr(0x1_0000);
    let counter = Addr(0x1_0040); // separate cache block: no false sharing
    let rounds = 200;

    for model in ConsistencyModel::all() {
        let cfg = MachineConfig::builder()
            .cores(2)
            .build()
            .expect("valid machine");
        let spec = MachineSpec::baseline(model).with_machine(cfg);
        let programs: Vec<Box<dyn ThreadProgram>> = (0..2)
            .map(|_| {
                Box::new(LockFighter {
                    lock,
                    counter,
                    rounds,
                    phase: 0,
                    counter_val: 0,
                }) as Box<dyn ThreadProgram>
            })
            .collect();
        let mut machine = Machine::new(&spec, programs);
        let summary = machine.run(10_000_000);
        assert!(summary.finished, "deadlock under {model}");

        let total = machine.mem().read(counter);
        assert_eq!(
            total,
            2 * rounds,
            "critical section was not mutually exclusive!"
        );

        let stats = machine.merged_stats();
        println!(
            "{:<4} cycles={:<8} counter={} lock-line invalidations={} coherence fills={}",
            model.label(),
            summary.cycles,
            total,
            stats.get("l1.invalidations") + stats.get("l1.recalls"),
            stats.get("l1.fills_coherence"),
        );
    }
    println!("\nmutual exclusion held under every model; the cost is the coherence ping-pong.");
}
