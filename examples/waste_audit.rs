//! Waste audit: run the whole workload suite and print the full ten-ways
//! breakdown plus the energy story — the keynote's argument in one table.
//!
//! ```text
//! cargo run --release --example waste_audit
//! ```

use tenways::prelude::*;
use tenways::waste::report;

fn main() {
    let params = WorkloadParams {
        threads: 4,
        scale: 4,
        seed: 7,
    };

    let mut records = Vec::new();
    for kind in WorkloadKind::all() {
        let r = Experiment::new(kind)
            .params(params)
            .model(ConsistencyModel::Tso)
            .run()
            .unwrap();
        assert!(r.summary.finished, "{} was cut off", kind.name());
        records.push(r);
    }

    println!(
        "=== where the cycles go (baseline TSO, {} threads) ===\n",
        params.threads
    );
    print!("{}", report::breakdown_table(&records));

    println!("\n=== where the Joules go ===\n");
    print!("{}", report::energy_table(&records));

    let movement: f64 = records.iter().map(|r| r.energy.data_movement_nj()).sum();
    let compute: f64 = records.iter().map(|r| r.energy.core_dynamic_nj).sum();
    println!(
        "\nacross the suite, data movement consumes {:.1}x the energy of computation.",
        movement / compute.max(1e-9)
    );

    // Rank the workloads by how much a fence-speculation retrofit would buy.
    println!("\n=== consistency-enforcement waste (what speculation attacks) ===\n");
    let mut ranked: Vec<_> = records
        .iter()
        .map(|r| {
            let frac = r.breakdown.consistency_cycles() as f64 / r.breakdown.total().max(1) as f64;
            (r.label.clone(), frac)
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (name, frac) in ranked {
        println!("{name:<10} {:>5.1}% of cycles", 100.0 * frac);
    }
}
