//! Quickstart: simulate one workload under the three consistency models,
//! with and without fence speculation, and print where the cycles went.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tenways::prelude::*;

fn main() {
    let params = WorkloadParams {
        threads: 4,
        scale: 4,
        seed: 7,
    };
    let kind = WorkloadKind::OltpLike;

    println!(
        "workload: {} ({} threads, scale {})\n",
        kind.name(),
        params.threads,
        params.scale
    );
    println!(
        "{:<8}{:<12}{:>12}{:>10}{:>12}{:>12}{:>12}",
        "model", "speculation", "cycles", "useful%", "consist.cyc", "rollbacks", "ops/uJ"
    );

    let mut rmo_baseline_cycles = None;
    for model in ConsistencyModel::all() {
        for (name, spec) in [
            ("off", SpecConfig::disabled()),
            ("on-demand", SpecConfig::on_demand()),
        ] {
            let r = Experiment::new(kind)
                .params(params)
                .model(model)
                .spec(spec)
                .run()
                .unwrap();
            assert!(r.summary.finished, "run was cut off");
            if model == ConsistencyModel::Rmo && name == "off" {
                rmo_baseline_cycles = Some(r.summary.cycles);
            }
            println!(
                "{:<8}{:<12}{:>12}{:>9.1}%{:>12}{:>12}{:>12.1}",
                model.label(),
                name,
                r.summary.cycles,
                100.0 * r.breakdown.useful_fraction(),
                r.breakdown.consistency_cycles(),
                r.stats.get("spec.rollbacks"),
                r.energy.ops_per_uj(),
            );
        }
    }

    if let Some(rmo) = rmo_baseline_cycles {
        let sc_spec = Experiment::new(kind)
            .params(params)
            .model(ConsistencyModel::Sc)
            .spec(SpecConfig::on_demand())
            .run()
            .unwrap();
        println!(
            "\nspeculative SC runs at {:.2}x RMO — memory ordering made (nearly) \
             performance-transparent.",
            sc_spec.summary.cycles as f64 / rmo as f64
        );
    }
}
