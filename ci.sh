#!/bin/sh
# Local CI: everything a change must pass before it ships.
# TENWAYS_FAST=1 keeps the workload-driving tests at smoke scale.
set -eux

export TENWAYS_FAST=1

cargo build --release --workspace
cargo test -q --workspace
cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings

# Overflow regressions: the stats layer must saturate, not wrap — run the
# workspace tests once in release with debug assertions (which turn silent
# wrap-around into panics). Separate target dir so the release artifacts
# above survive for the sweep smoke test.
RUSTFLAGS="-C debug-assertions=on" CARGO_TARGET_DIR=target/ci-overflow \
    cargo test -q --release --workspace

# Sweep smoke test: a 4-point grid with one injected failing point
# (threads = 0 fails at experiment start). The sweep must exit non-zero
# *after* completing the other three rows — fail-soft, no lost results.
SMOKE_DIR=target/sweep-smoke
rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"
cat > "$SMOKE_DIR/grid.toml" <<'EOF'
workload = "lu"
scale = 1

[sweep]
id = "ci-smoke"

[grid]
threads = [2, 3, 4, 0]
EOF
if ./target/release/tenways sweep --config "$SMOKE_DIR/grid.toml" \
    --out "$SMOKE_DIR" --quiet; then
    echo "sweep smoke test: expected a non-zero exit for the failing point" >&2
    exit 1
fi
test "$(grep -c '"status": "ok"' "$SMOKE_DIR/ci-smoke.json")" = 3
test "$(grep -c '"status": "failed"' "$SMOKE_DIR/ci-smoke.json")" = 1
# Completed sweep rows must carry host-side timing.
test "$(grep -c '"sim_ms":' "$SMOKE_DIR/ci-smoke.json")" = 3
test "$(grep -c '"sim_cycles_per_sec":' "$SMOKE_DIR/ci-smoke.json")" = 3

# Throughput bench smoke run: times naive stepping, machine-gap
# fast-forward, and the component-wake scheduler on every configuration
# (including the mixed 1-busy/15-idle machine), plus the epoch-parallel
# scheduler at 1/2/4/8 shard workers on the 256-core big-mesh config, and
# exits non-zero if any run record diverges or if parallel-epoch at 4
# workers is slower than component-wake on a host with the hardware
# threads to run the shards concurrently — the whole-binary scheduler
# regression gate. (The sequential-vs-parallel equivalence suite proper —
# crates/waste/tests/sched_equivalence.rs and the litmus conformance test
# — runs with the workspace tests above.) Run from a scratch dir so the
# committed full-scale BENCH_sim_throughput.json (and results/) are not
# overwritten with smoke-scale numbers.
BENCH_DIR=target/ci-results
rm -rf "$BENCH_DIR"
mkdir -p "$BENCH_DIR"
(cd "$BENCH_DIR" && TENWAYS_RESULTS_DIR=. "$OLDPWD/target/release/sim_throughput")
test -f "$BENCH_DIR/BENCH_sim_throughput.json"
# Every scheduler mode must appear, and the mixed active/idle machine —
# the wake scheduler's headline configuration — must be in the rows.
grep -q '"mode": "naive"' "$BENCH_DIR/BENCH_sim_throughput.json"
grep -q '"mode": "machine_gap"' "$BENCH_DIR/BENCH_sim_throughput.json"
grep -q '"mode": "component_wake"' "$BENCH_DIR/BENCH_sim_throughput.json"
grep -q '"label": "mixed/1busy15idle/remote4000"' "$BENCH_DIR/BENCH_sim_throughput.json"
grep -q '"speedup_vs_machine_gap"' "$BENCH_DIR/BENCH_sim_throughput.json"
# Epoch-parallel rows must be present at >= 2 worker counts on the
# big-mesh config, and the 4-worker speedup gate must have passed (the
# binary computes it host-aware; a false value here is a perf regression
# on a capable host and fails CI).
grep -q '"mode": "parallel-epoch"' "$BENCH_DIR/BENCH_sim_throughput.json"
grep -q '"workers": 2' "$BENCH_DIR/BENCH_sim_throughput.json"
grep -q '"workers": 4' "$BENCH_DIR/BENCH_sim_throughput.json"
grep -q '"label": "ocean/tso/256c/mesh"' "$BENCH_DIR/BENCH_sim_throughput.json"
grep -q '"gate_speedup_ok": true' "$BENCH_DIR/BENCH_sim_throughput.json"
! grep -q '"gate_speedup_ok": false' "$BENCH_DIR/BENCH_sim_throughput.json"

# Lock-ablation figure gate: fig12 sweeps every LockKind (ttas, ticket,
# mcs, clh) across the model/thread grid under the Schweizer-calibrated
# atomics config, and each job checks mutual exclusion on the protected
# counter — a broken lock exits non-zero. The bench_rows.v1 output must
# contain a row per lock algorithm with the waste split attached.
(cd "$BENCH_DIR" && TENWAYS_RESULTS_DIR=. "$OLDPWD/target/release/fig12_lock_ablation")
for lock in ttas ticket mcs clh; do
    grep -q "\"label\": \"RMO/8t/$lock\"" "$BENCH_DIR/fig12_lock_ablation.json"
done
grep -q '"fence_frac"' "$BENCH_DIR/fig12_lock_ablation.json"

# Atomics-priced sweep smoke test: a tiny grid over a queue-lock workload
# with the `[atomics]` section set to the Schweizer calibration. Both rows
# must complete, and the run records must carry the atomics provenance
# (rmw_cross_socket = 90 is the calibration's far-atomic cost).
ATOMICS_DIR=target/atomics-smoke
rm -rf "$ATOMICS_DIR"
mkdir -p "$ATOMICS_DIR"
cat > "$ATOMICS_DIR/grid.toml" <<'EOF'
workload = "mcs"
scale = 1
model = "rmo"
atomics = "schweizer"

[sweep]
id = "ci-atomics"

[grid]
threads = [2, 4]
EOF
./target/release/tenways sweep --config "$ATOMICS_DIR/grid.toml" \
    --out "$ATOMICS_DIR" --quiet
test "$(grep -c '"status": "ok"' "$ATOMICS_DIR/ci-atomics.json")" = 2
grep -q '"rmw_cross_socket": 90' "$ATOMICS_DIR/ci-atomics.json"

# Litmus conformance gate: the full corpus across every consistency model
# and speculation mode must come back clean — exit is non-zero on any
# observed forbidden state or any speculation-on vs speculation-off
# observable-state divergence. 16 points keeps this at smoke scale; the
# staggered-start probe points that anchor the state sets are always in
# the grid.
LITMUS_DIR=target/ci-litmus
rm -rf "$LITMUS_DIR"
mkdir -p "$LITMUS_DIR"
./target/release/tenways litmus --corpus --points 16 --out "$LITMUS_DIR" --quiet
test "$(grep -c '"status": "ok"' "$LITMUS_DIR/litmus.json")" = 36
test "$(grep -c '"status": "failed"' "$LITMUS_DIR/litmus.json")" = 0
# The report must carry replayable repro context and the transparency
# fields even on a clean run.
grep -q '"schema_version": 1' "$LITMUS_DIR/litmus.json"
grep -q '"spec_divergences": \[\]' "$LITMUS_DIR/litmus.json"
grep -q '"forbidden_violations": \[\]' "$LITMUS_DIR/litmus.json"

# Serve smoke gate: start the service on an ephemeral loopback port
# (--max-requests 3 makes it exit on its own), POST the same config
# twice, and read the counters. The first response must be a miss
# (cached: false), the second a hit (cached: true) — served from the
# content-addressed cache without re-simulating — and /stats must read
# exactly 1 hit, 1 miss, 1 simulation. The serve client is built into
# the binary, so the gate needs no external HTTP tooling.
SERVE_DIR=target/serve-smoke
rm -rf "$SERVE_DIR"
mkdir -p "$SERVE_DIR"
cat > "$SERVE_DIR/job.toml" <<'EOF'
workload = "lu"
threads = 2
scale = 1
EOF
./target/release/tenways serve --addr 127.0.0.1:0 \
    --port-file "$SERVE_DIR/port" --cache-dir "$SERVE_DIR/cache" \
    --max-requests 3 &
SERVE_PID=$!
for _ in $(seq 1 50); do
    test -f "$SERVE_DIR/port" && break
    sleep 0.1
done
SERVE_ADDR=$(cat "$SERVE_DIR/port")
./target/release/tenways serve --addr "$SERVE_ADDR" \
    --post "$SERVE_DIR/job.toml" > "$SERVE_DIR/first.json"
grep -q '"cached": false' "$SERVE_DIR/first.json"
./target/release/tenways serve --addr "$SERVE_ADDR" \
    --post "$SERVE_DIR/job.toml" > "$SERVE_DIR/second.json"
grep -q '"cached": true' "$SERVE_DIR/second.json"
./target/release/tenways serve --addr "$SERVE_ADDR" --stats \
    > "$SERVE_DIR/stats.json"
grep -q '"hits": 1' "$SERVE_DIR/stats.json"
grep -q '"misses": 1' "$SERVE_DIR/stats.json"
grep -q '"sim_runs": 1' "$SERVE_DIR/stats.json"
# The stats document must expose the admission-queue gauges and the
# disk-tier cache counters (the one simulated record is on disk).
grep -q '"queue_depth": 0' "$SERVE_DIR/stats.json"
grep -q '"queue_capacity": 256' "$SERVE_DIR/stats.json"
grep -q '"rejected": 0' "$SERVE_DIR/stats.json"
grep -q '"disk_entries": 1' "$SERVE_DIR/stats.json"
grep -q '"evicted": 0' "$SERVE_DIR/stats.json"
wait "$SERVE_PID"
# Both answers carry the same key and the same record bytes.
test "$(grep '"key"' "$SERVE_DIR/first.json")" = "$(grep '"key"' "$SERVE_DIR/second.json")"

# Batch dedup smoke: POST /batch with four byte-identical configs must
# canonicalize them to one key and cost exactly one simulation —
# /stats reads sim_runs 1, the report reads unique 1 / deduplicated 3.
BATCH_DIR=target/serve-batch-smoke
rm -rf "$BATCH_DIR"
mkdir -p "$BATCH_DIR"
cat > "$BATCH_DIR/batch.json" <<'EOF'
[
  {"workload": "lu", "threads": 2, "scale": 1},
  {"workload": "lu", "threads": 2, "scale": 1},
  {"workload": "lu", "threads": 2, "scale": 1},
  {"workload": "lu", "threads": 2, "scale": 1}
]
EOF
./target/release/tenways serve --addr 127.0.0.1:0 \
    --port-file "$BATCH_DIR/port" --cache-dir "$BATCH_DIR/cache" \
    --max-requests 2 &
SERVE_PID=$!
for _ in $(seq 1 50); do
    test -f "$BATCH_DIR/port" && break
    sleep 0.1
done
SERVE_ADDR=$(cat "$BATCH_DIR/port")
./target/release/tenways serve --addr "$SERVE_ADDR" \
    --batch "$BATCH_DIR/batch.json" > "$BATCH_DIR/batch_out.json"
grep -q '"total": 4' "$BATCH_DIR/batch_out.json"
grep -q '"unique": 1' "$BATCH_DIR/batch_out.json"
grep -q '"deduplicated": 3' "$BATCH_DIR/batch_out.json"
# Status counts are per submitted item: all four answer `computed`, but
# the dedup means they cost one simulation (asserted via /stats below).
grep -q '"computed": 4' "$BATCH_DIR/batch_out.json"
./target/release/tenways serve --addr "$SERVE_ADDR" --stats \
    > "$BATCH_DIR/stats.json"
grep -q '"sim_runs": 1' "$BATCH_DIR/stats.json"
wait "$SERVE_PID"

# Queue-rejection probe: with the admission bound at zero no miss can get
# a slot, so a fresh POST /run must answer 503 + Retry-After with the
# structured rejection body (client exit 1), and /stats must count it.
REJECT_DIR=target/serve-reject-smoke
rm -rf "$REJECT_DIR"
mkdir -p "$REJECT_DIR"
./target/release/tenways serve --addr 127.0.0.1:0 \
    --port-file "$REJECT_DIR/port" --cache-dir "$REJECT_DIR/cache" \
    --workers 1 --queue-depth 0 --max-requests 2 &
SERVE_PID=$!
for _ in $(seq 1 50); do
    test -f "$REJECT_DIR/port" && break
    sleep 0.1
done
SERVE_ADDR=$(cat "$REJECT_DIR/port")
if ./target/release/tenways serve --addr "$SERVE_ADDR" \
    --post "$SERVE_DIR/job.toml" > "$REJECT_DIR/rejected.json"; then
    echo "queue-rejection probe: expected a non-zero exit on 503" >&2
    exit 1
fi
grep -q '"status": "rejected"' "$REJECT_DIR/rejected.json"
grep -q '"retry_after_s": 1' "$REJECT_DIR/rejected.json"
./target/release/tenways serve --addr "$SERVE_ADDR" --stats \
    > "$REJECT_DIR/stats.json"
grep -q '"rejected": 1' "$REJECT_DIR/stats.json"
grep -q '"sim_runs": 0' "$REJECT_DIR/stats.json"
wait "$SERVE_PID"

# Router smoke gate: two ephemeral-port backends behind a `tenways route`
# front. The same config POSTed through the router twice must answer a
# miss then a hit, and the cluster /stats must show exactly one backend
# simulated (the rendezvous owner) — content-addressed dedup holds
# cluster-wide. Then kill a backend: the next POST must still answer 200
# (connect failure marks the backend down and the forward re-resolves to
# the survivor), and the health monitor must report backends_up 1.
ROUTE_DIR=target/route-smoke
rm -rf "$ROUTE_DIR"
mkdir -p "$ROUTE_DIR"
cat > "$ROUTE_DIR/job.toml" <<'EOF'
workload = "lu"
threads = 2
scale = 1
EOF
./target/release/tenways serve --addr 127.0.0.1:0 \
    --port-file "$ROUTE_DIR/b0.port" --cache-dir "$ROUTE_DIR/cache0" \
    --workers 1 &
B0_PID=$!
./target/release/tenways serve --addr 127.0.0.1:0 \
    --port-file "$ROUTE_DIR/b1.port" --cache-dir "$ROUTE_DIR/cache1" \
    --workers 1 &
B1_PID=$!
for _ in $(seq 1 50); do
    test -f "$ROUTE_DIR/b0.port" && test -f "$ROUTE_DIR/b1.port" && break
    sleep 0.1
done
B0_ADDR=$(cat "$ROUTE_DIR/b0.port")
B1_ADDR=$(cat "$ROUTE_DIR/b1.port")
./target/release/tenways route --backend "$B0_ADDR" --backend "$B1_ADDR" \
    --addr 127.0.0.1:0 --port-file "$ROUTE_DIR/router.port" \
    --health-interval-ms 100 --retries 4 --backoff-ms 25 &
ROUTE_PID=$!
for _ in $(seq 1 50); do
    test -f "$ROUTE_DIR/router.port" && break
    sleep 0.1
done
ROUTE_ADDR=$(cat "$ROUTE_DIR/router.port")
./target/release/tenways serve --addr "$ROUTE_ADDR" \
    --post "$ROUTE_DIR/job.toml" > "$ROUTE_DIR/first.json"
grep -q '"cached": false' "$ROUTE_DIR/first.json"
./target/release/tenways serve --addr "$ROUTE_ADDR" \
    --post "$ROUTE_DIR/job.toml" > "$ROUTE_DIR/second.json"
grep -q '"cached": true' "$ROUTE_DIR/second.json"
test "$(grep '"key"' "$ROUTE_DIR/first.json")" = "$(grep '"key"' "$ROUTE_DIR/second.json")"
./target/release/tenways serve --addr "$ROUTE_ADDR" --stats \
    > "$ROUTE_DIR/stats.json"
grep -q '"schema_version": 1' "$ROUTE_DIR/stats.json"
grep -q '"backends_up": 2' "$ROUTE_DIR/stats.json"
# Exactly one backend ran the simulation: one per-backend stats document
# reads sim_runs 0, and the other — plus the cluster sum — reads 1.
test "$(grep -c '"sim_runs": 0' "$ROUTE_DIR/stats.json")" = 1
test "$(grep -c '"sim_runs": 1' "$ROUTE_DIR/stats.json")" = 2
# Kill-and-reroute: take down backend 0, POST again through the router.
kill "$B0_PID"
wait "$B0_PID" || true
./target/release/tenways serve --addr "$ROUTE_ADDR" \
    --post "$ROUTE_DIR/job.toml" > "$ROUTE_DIR/after_kill.json"
test "$(grep '"key"' "$ROUTE_DIR/after_kill.json")" = "$(grep '"key"' "$ROUTE_DIR/first.json")"
# Give the health monitor a probe interval to notice the corpse, then
# the census must read one live backend.
sleep 1
./target/release/tenways serve --addr "$ROUTE_ADDR" --stats \
    > "$ROUTE_DIR/stats_after.json"
grep -q '"backends_up": 1' "$ROUTE_DIR/stats_after.json"
kill "$ROUTE_PID" "$B1_PID"
wait "$ROUTE_PID" || true
wait "$B1_PID" || true

# Warm-start smoke: --warm pre-populates the cache from a sweep spec
# before the listener binds, so the very first POST is already a hit.
# Warming is traffic-counter-neutral: /stats reads the simulation it ran
# (sim_runs 1) but no misses.
WARM_DIR=target/serve-warm-smoke
rm -rf "$WARM_DIR"
mkdir -p "$WARM_DIR"
cat > "$WARM_DIR/grid.toml" <<'EOF'
workload = "lu"
scale = 1

[sweep]
id = "ci-warm"

[grid]
threads = [2]
EOF
./target/release/tenways serve --addr 127.0.0.1:0 \
    --port-file "$WARM_DIR/port" --cache-dir "$WARM_DIR/cache" \
    --warm "$WARM_DIR/grid.toml" --max-requests 2 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    test -f "$WARM_DIR/port" && break
    sleep 0.1
done
SERVE_ADDR=$(cat "$WARM_DIR/port")
./target/release/tenways serve --addr "$SERVE_ADDR" \
    --post "$ROUTE_DIR/job.toml" > "$WARM_DIR/first.json"
grep -q '"cached": true' "$WARM_DIR/first.json"
./target/release/tenways serve --addr "$SERVE_ADDR" --stats \
    > "$WARM_DIR/stats.json"
grep -q '"hits": 1' "$WARM_DIR/stats.json"
grep -q '"misses": 0' "$WARM_DIR/stats.json"
grep -q '"sim_runs": 1' "$WARM_DIR/stats.json"
wait "$SERVE_PID"

# Serve bench gate: cold miss vs warm hit on the committed-scale path,
# plus the saturation load generator. The binary itself enforces the hard
# gates — zero simulations on the hit row, a >= 100x hit speedup, no
# extra simulations or failures under the hot-key burst (scaling is
# host-aware), every queue-full client answered (no deadlock) with
# rejections observed, and batch dedup costing one simulation — and
# exits non-zero otherwise.
(cd "$BENCH_DIR" && TENWAYS_RESULTS_DIR=. "$OLDPWD/target/release/serve_bench")
grep -q '"gate_zero_sim_runs": true' "$BENCH_DIR/BENCH_serve.json"
grep -q '"gate_speedup_ok": true' "$BENCH_DIR/BENCH_serve.json"
grep -q '"gate_hot_scaling": true' "$BENCH_DIR/BENCH_serve.json"
grep -q '"gate_no_deadlock": true' "$BENCH_DIR/BENCH_serve.json"
grep -q '"gate_rejections_seen": true' "$BENCH_DIR/BENCH_serve.json"
grep -q '"gate_batch_dedup": true' "$BENCH_DIR/BENCH_serve.json"
# Scale-out gates (router + 2 in-process backends): a batch with three
# copies of each config costs exactly one simulation per unique key
# cluster-wide, and killing a backend mid-run loses zero requests. The
# capacity gate is host-aware (vacuous on boxes without the cores to run
# two backends concurrently) but must never read false.
grep -q '"gate_cluster_dedup": true' "$BENCH_DIR/BENCH_serve.json"
grep -q '"gate_no_lost_requests": true' "$BENCH_DIR/BENCH_serve.json"
grep -q '"gate_scaleout_capacity": true' "$BENCH_DIR/BENCH_serve.json"
