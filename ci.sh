#!/bin/sh
# Local CI: everything a change must pass before it ships.
# TENWAYS_FAST=1 keeps the workload-driving tests at smoke scale.
set -eux

export TENWAYS_FAST=1

cargo build --release --workspace
cargo test -q --workspace
cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
