//! Scheduler regression matrix: every accelerated run loop (machine-gap
//! fast-forward, component-granular wake scheduling, and epoch-parallel
//! sharding) must be **byte-for-byte** identical to naive per-cycle
//! stepping — same `RunRecord` fingerprint (stats, waste taxonomy,
//! energy, summary; everything except the scheduler's own provenance
//! label) for every workload under every consistency model, with
//! speculation on and off.

use tenways_core::SpecConfig;
use tenways_cpu::ConsistencyModel;
use tenways_waste::{Experiment, SchedMode};
use tenways_workloads::{ContendedParams, WorkloadKind, WorkloadParams};

fn assert_ff_matches_naive(label: &str, exp: Experiment) {
    let naive = exp
        .clone()
        .sched(SchedMode::Naive)
        .run()
        .unwrap()
        .fingerprint();
    for mode in [
        SchedMode::MachineGap,
        SchedMode::ComponentWake,
        SchedMode::ParallelEpoch { workers: 2 },
    ] {
        let fast = exp.clone().sched(mode).run().unwrap();
        assert_eq!(
            fast.fingerprint(),
            naive,
            "{mode:?} diverged from naive stepping on {label}"
        );
    }
}

#[test]
fn ff_is_byte_identical_across_workloads_models_and_spec_modes() {
    let models = [
        ConsistencyModel::Sc,
        ConsistencyModel::Tso,
        ConsistencyModel::Rmo,
    ];
    let specs = [
        ("spec-off", SpecConfig::disabled()),
        ("spec-on", SpecConfig::on_demand()),
    ];
    for kind in WorkloadKind::all() {
        for model in models {
            for (spec_label, spec) in specs {
                let label = format!("{}/{:?}/{}", kind.name(), model, spec_label);
                let exp = Experiment::new(kind)
                    .params(WorkloadParams {
                        threads: 2,
                        scale: 1,
                        seed: 7,
                    })
                    .model(model)
                    .spec(spec);
                assert_ff_matches_naive(&label, exp);
            }
        }
    }
}

#[test]
fn ff_is_byte_identical_on_contended_microbenchmark() {
    // The contended kernel leans on locks, fences, and rollbacks — the
    // paths where skipped-cycle replay is most delicate.
    for spec in [SpecConfig::disabled(), SpecConfig::continuous()] {
        let exp = Experiment::contended(ContendedParams {
            threads: 4,
            ops_per_thread: 300,
            conflict_p: 0.3,
            hot_blocks: 4,
            fence_period: 8,
            seed: 11,
        })
        .model(ConsistencyModel::Sc)
        .spec(spec);
        assert_ff_matches_naive("contended/Sc", exp);
    }
}

#[test]
fn ff_is_byte_identical_under_high_dram_latency() {
    // Long quiescent gaps (the case fast-forward exists for): slow DRAM,
    // memory-bound scan workload.
    let machine = tenways_sim::MachineConfig::builder()
        .cores(2)
        .dram(4, 400, 48)
        .build()
        .unwrap();
    let exp = Experiment::new(WorkloadKind::DssLike)
        .params(WorkloadParams {
            threads: 2,
            scale: 2,
            seed: 3,
        })
        .machine(machine)
        .model(ConsistencyModel::Tso)
        .spec(SpecConfig::on_demand());
    assert_ff_matches_naive("dss/hi-dram", exp);
}
