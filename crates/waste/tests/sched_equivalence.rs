//! Property test: randomly drawn small configurations must produce
//! byte-identical `RunRecord` fingerprints under all run-loop schedulers
//! (naive stepping, machine-gap fast-forward, component-granular wake
//! scheduling, and epoch-parallel sharding at several worker counts —
//! one, a few, and one per core).
//!
//! The point of drawing configurations from a [`DetRng`] instead of
//! enumerating a fixed matrix is coverage of the *interactions*: odd
//! thread counts against mesh topologies, long DRAM latencies under
//! continuous speculation, tiny cycle limits that cut runs mid-gap. The
//! stream is seeded, so a failure reproduces exactly; bump `CASES` locally
//! to fuzz harder.

use tenways_core::SpecConfig;
use tenways_cpu::ConsistencyModel;
use tenways_sim::{DetRng, MachineConfig};
use tenways_waste::{Experiment, SchedMode};
use tenways_workloads::{ContendedParams, WorkloadKind, WorkloadParams};

const CASES: usize = 14;

/// Draws one experiment from the RNG stream. Sizes are deliberately small
/// (threads ≤ 4, scale ≤ 2) so the three full runs per case stay cheap.
fn draw(rng: &mut DetRng, case: usize) -> (String, Experiment, usize) {
    let threads = rng.range(1, 5) as usize;
    let scale = rng.range(1, 3);
    let seed = rng.next_u64();
    let model = *rng
        .choose(&[
            ConsistencyModel::Sc,
            ConsistencyModel::Tso,
            ConsistencyModel::Rmo,
        ])
        .unwrap();
    let spec = *rng
        .choose(&[
            SpecConfig::disabled(),
            SpecConfig::on_demand(),
            SpecConfig::continuous(),
        ])
        .unwrap();
    let dram_latency = *rng.choose(&[60, 400, 2500]).unwrap();
    let noc_latency = rng.range(1, 9);
    let machine = MachineConfig::builder()
        .cores(threads)
        .dram(4, dram_latency, 24)
        .noc(noc_latency, 1, 1)
        .mesh(rng.chance(0.3))
        .build()
        .expect("drawn machine config is valid");
    // Small limits on some cases force the cut-off to land mid-gap.
    let cycle_limit = if rng.chance(0.25) {
        rng.range(500, 5_000)
    } else {
        2_000_000
    };
    let exp = if rng.chance(0.3) {
        Experiment::contended(ContendedParams {
            threads,
            ops_per_thread: 60 * scale,
            conflict_p: rng.unit_f64(),
            hot_blocks: 4,
            fence_period: rng.range(4, 12),
            seed,
        })
    } else {
        let kind = *rng.choose(&WorkloadKind::all()).unwrap();
        Experiment::new(kind).params(WorkloadParams {
            threads,
            scale,
            seed,
        })
    };
    let exp = exp
        .machine(machine)
        .model(model)
        .spec(spec)
        .cycle_limit(cycle_limit);
    let label = format!(
        "case {case}: t={threads} scale={scale} model={model:?} dram={dram_latency} noc={noc_latency} limit={cycle_limit}"
    );
    (label, exp, threads)
}

/// Every modern-sync workload (queue locks, RCU, hazard pointers, flat
/// combining, work stealing) must fingerprint identically under all four
/// run-loop schedulers — their long spin phases and RMW-heavy handoffs
/// are exactly the shapes that punish a scheduler that wakes a component
/// one cycle late. Priced atomics are part of the sweep: the cost model
/// shifts completion times, which must shift them identically everywhere.
#[test]
fn modern_sync_workloads_are_byte_identical_across_all_schedulers() {
    for kind in WorkloadKind::modern_sync() {
        for atomics in [
            tenways_sim::AtomicsConfig::off(),
            tenways_sim::AtomicsConfig::schweizer(),
        ] {
            let exp = Experiment::new(kind)
                .params(WorkloadParams {
                    threads: 3,
                    scale: 1,
                    seed: 0xfeed,
                })
                .model(ConsistencyModel::Rmo)
                .atomics(atomics)
                .cycle_limit(2_000_000);
            let label = format!("{} (atomics free: {})", kind.name(), atomics.is_free());
            let naive = exp
                .clone()
                .sched(SchedMode::Naive)
                .run()
                .unwrap_or_else(|e| panic!("{label}: naive run failed: {e}"))
                .fingerprint();
            for mode in [
                SchedMode::MachineGap,
                SchedMode::ComponentWake,
                SchedMode::ParallelEpoch { workers: 2 },
            ] {
                let fast = exp
                    .clone()
                    .sched(mode)
                    .run()
                    .unwrap_or_else(|e| panic!("{label}: {mode:?} run failed: {e}"))
                    .fingerprint();
                assert_eq!(fast, naive, "{label}: {mode:?} diverged from naive");
            }
        }
    }
}

#[test]
fn random_configs_are_byte_identical_across_all_schedulers() {
    let mut rng = DetRng::seed(0x7e57_0dd5);
    for case in 0..CASES {
        let (label, exp, threads) = draw(&mut rng, case);
        let naive = exp
            .clone()
            .sched(SchedMode::Naive)
            .run()
            .unwrap_or_else(|e| panic!("{label}: naive run failed: {e}"))
            .fingerprint();
        // Worker counts: degenerate (1 falls back to sequential wake),
        // small, larger-than-most-machines, and exactly one per core.
        let modes = [
            SchedMode::MachineGap,
            SchedMode::ComponentWake,
            SchedMode::ParallelEpoch { workers: 1 },
            SchedMode::ParallelEpoch { workers: 2 },
            SchedMode::ParallelEpoch { workers: 4 },
            SchedMode::ParallelEpoch { workers: threads },
        ];
        for mode in modes {
            let fast = exp
                .clone()
                .sched(mode)
                .run()
                .unwrap_or_else(|e| panic!("{label}: {mode:?} run failed: {e}"))
                .fingerprint();
            assert_eq!(fast, naive, "{label}: {mode:?} diverged from naive");
        }
    }
}
