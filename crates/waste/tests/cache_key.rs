//! Stability contract for [`SimConfig::cache_key`]: semantically equal
//! configurations — whatever their source, key order, or how many
//! defaulted fields they spell out — must collide on one canonical hash,
//! and any semantic change must move it. `tenways serve` relies on this
//! to recognize repeat work; a false split only wastes a simulation, but
//! a false collision would serve the wrong record, so the "different"
//! half of the contract is the load-bearing one.

use tenways_waste::{SchedModeChoice, SimConfig};

/// A key is 64 lowercase hex chars (SHA-256).
fn well_formed(key: &str) -> bool {
    key.len() == 64
        && key
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase())
}

#[test]
fn toml_json_and_builder_agree() {
    let toml =
        SimConfig::from_toml_str("workload = \"radix\"\nthreads = 4\nscale = 2\nseed = 11\n")
            .unwrap();
    let json =
        SimConfig::from_json_str(r#"{"workload": "radix", "threads": 4, "scale": 2, "seed": 11}"#)
            .unwrap();
    let built = SimConfig {
        workload: "radix".to_string(),
        threads: 4,
        scale: 2,
        seed: 11,
        ..SimConfig::default()
    };
    assert!(well_formed(&toml.cache_key()));
    assert_eq!(toml.cache_key(), json.cache_key());
    assert_eq!(toml.cache_key(), built.cache_key());
}

#[test]
fn key_order_is_irrelevant() {
    let a = SimConfig::from_json_str(r#"{"workload": "lu", "threads": 2, "scale": 3, "seed": 5}"#)
        .unwrap();
    let b = SimConfig::from_json_str(r#"{"seed": 5, "scale": 3, "threads": 2, "workload": "lu"}"#)
        .unwrap();
    assert_eq!(a.cache_key(), b.cache_key());
}

#[test]
fn explicit_defaults_hash_like_omitted_ones() {
    // Defaults spelled out field-by-field are the same configuration as
    // an empty overlay: normalization runs through one struct.
    let d = SimConfig::default();
    let spelled = SimConfig::from_toml_str(&format!(
        "workload = \"{}\"\nthreads = {}\nscale = {}\nseed = {}\nconflict = {}\ncycle_limit = {}\n",
        d.workload, d.threads, d.scale, d.seed, d.conflict, d.cycle_limit
    ))
    .unwrap();
    let empty = SimConfig::from_toml_str("").unwrap();
    assert_eq!(spelled.cache_key(), empty.cache_key());
    assert_eq!(empty.cache_key(), d.cache_key());
}

#[test]
fn flag_style_overlay_matches_file_style() {
    // The CLI overlays flags onto a loaded config; mutating the struct
    // the way `--seed 9` does must land on the same key as a file that
    // says `seed = 9`.
    let mut flagged = SimConfig::from_toml_str("workload = \"ocean\"\n").unwrap();
    flagged.seed = 9;
    let filed = SimConfig::from_toml_str("workload = \"ocean\"\nseed = 9\n").unwrap();
    assert_eq!(flagged.cache_key(), filed.cache_key());
}

#[test]
fn sched_mode_is_not_part_of_the_key() {
    // Every scheduler produces byte-identical results (the repo's
    // sched-equivalence contract), so a record computed under one mode
    // must serve requests made under any other.
    let base = SimConfig::default();
    for mode in [
        SchedModeChoice::Naive,
        SchedModeChoice::MachineGap,
        SchedModeChoice::ComponentWake,
        SchedModeChoice::ParallelEpoch,
    ] {
        let mut cfg = base.clone();
        cfg.sched.mode = mode;
        if mode == SchedModeChoice::ParallelEpoch {
            cfg.sched.workers = Some(2);
        }
        assert_eq!(
            cfg.cache_key(),
            base.cache_key(),
            "mode {mode:?} split the key"
        );
    }
}

#[test]
fn each_semantic_field_moves_the_key() {
    let base = SimConfig::default();
    let variants: Vec<(&str, SimConfig)> = vec![
        (
            "workload",
            SimConfig {
                workload: "lu".to_string(),
                ..base.clone()
            },
        ),
        (
            "threads",
            SimConfig {
                threads: base.threads + 1,
                ..base.clone()
            },
        ),
        (
            "scale",
            SimConfig {
                scale: base.scale + 1,
                ..base.clone()
            },
        ),
        (
            "seed",
            SimConfig {
                seed: base.seed + 1,
                ..base.clone()
            },
        ),
        (
            "cycle_limit",
            SimConfig {
                cycle_limit: base.cycle_limit - 1,
                ..base.clone()
            },
        ),
        ("machine.dram_latency", {
            let mut c = base.clone();
            c.machine.dram_latency += 10;
            c
        }),
        ("protocol.prefetch_next_line", {
            let mut c = base.clone();
            c.protocol.prefetch_next_line = !c.protocol.prefetch_next_line;
            c
        }),
    ];
    let base_key = base.cache_key();
    let mut keys = vec![base_key.clone()];
    for (field, cfg) in variants {
        let key = cfg.cache_key();
        assert_ne!(key, base_key, "changing {field} did not move the key");
        assert!(
            !keys.contains(&key),
            "{field} collided with another variant"
        );
        keys.push(key);
    }
}

#[test]
fn key_matches_canonical_json_rendering() {
    // The key is definitionally the SHA-256 of the canonical JSON bytes —
    // pin that so the disk format of `results/cache` stays stable.
    let cfg = SimConfig::default();
    let doc = cfg.canonical_json();
    assert_eq!(
        cfg.cache_key(),
        tenways_sim::sha256_hex(doc.to_string().as_bytes())
    );
    assert!(doc.get("sched").is_none(), "sched must be excluded");
    assert!(doc.get("workload").is_some());
}
