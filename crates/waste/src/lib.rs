//! The "ten ways to waste a parallel computer", quantified.
//!
//! This crate turns the raw per-cycle accounting produced by the simulator
//! into the keynote's argument: a [`WasteBreakdown`] that attributes every
//! core cycle to *useful work* or to one of ten ways of wasting it, an
//! [`EnergyModel`] that converts event counts into Joules so results can be
//! reported as *work per Joule*, and an [`Experiment`] runner that the
//! benchmark harness drives to regenerate every table and figure.
//!
//! The ten waste categories:
//!
//! 1. **SC ordering** — naive sequential-consistency serialization.
//! 2. **Fence stalls** — explicit memory fences draining the pipeline.
//! 3. **Atomic stalls** — atomics acting as implicit full fences.
//! 4. **Store-buffer pressure** — retirement blocked on a full store buffer.
//! 5. **Cold misses** — compulsory DRAM fetches.
//! 6. **Capacity misses** — data evicted and refetched (L1→L2→DRAM).
//! 7. **Coherence misses** — data ping-ponging between cores.
//! 8. **Lock spinning** — cycles burnt on lock words.
//! 9. **Barrier waiting** — load imbalance at barriers.
//! 10. **Structural hazards** — ROB/MSHR capacity, unresolved waits.
//!
//! Speculation rollback waste (`spec.wasted_cycles`) is reported as an
//! overlay: those cycles were *also* attributed above while the doomed
//! epoch executed, so the breakdown keeps it out of the sum.
//!
//! # Example
//!
//! ```rust
//! use tenways_waste::Experiment;
//! use tenways_cpu::ConsistencyModel;
//! use tenways_workloads::{WorkloadKind, WorkloadParams};
//!
//! let record = Experiment::new(WorkloadKind::OceanLike)
//!     .params(WorkloadParams { threads: 2, scale: 2, seed: 1 })
//!     .model(ConsistencyModel::Tso)
//!     .run()
//!     .unwrap();
//! assert!(record.summary.finished);
//! let useful = record.breakdown.useful_fraction();
//! assert!(useful > 0.0 && useful <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod energy;
pub mod report;
mod runner;
mod taxonomy;

pub use config::{ConfigLoadError, SchedConfig, SchedConfigError, SchedModeChoice, SimConfig};
pub use energy::{EnergyModel, EnergyReport};
pub use runner::{Experiment, ExperimentError, RunRecord, RUN_RECORD_SCHEMA_VERSION};
pub use taxonomy::{WasteBreakdown, WasteCategory};
pub use tenways_cpu::SchedMode;
