//! Event-count energy accounting: [`EnergyModel`] and [`EnergyReport`].
//!
//! The keynote's thesis is that *data movement, not computation, is the big
//! consumer of energy*. The model here is deliberately simple — a nanojoule
//! constant per event class plus per-cycle static power — because the claim
//! it supports is relative (where the Joules go, and how work-per-Joule
//! changes across designs), not absolute. Default constants are in the
//! ballpark of published 45 nm-class figures: an L1 access costs ~10× a
//! register op, DRAM ~100× an L1 access, and moving a message across the
//! die sits in between.

use tenways_sim::StatSet;

/// Per-event energy constants, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One L1 access (hit or miss probe).
    pub l1_access_nj: f64,
    /// One directory/L2 slice access.
    pub l2_access_nj: f64,
    /// One DRAM access (activation + transfer, flattened).
    pub dram_access_nj: f64,
    /// One message crossing the interconnect.
    pub noc_msg_nj: f64,
    /// Dynamic energy of one busy core cycle.
    pub core_busy_cycle_nj: f64,
    /// Static/leakage energy per core per cycle (busy or not).
    pub core_static_cycle_nj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            l1_access_nj: 0.05,
            l2_access_nj: 0.5,
            dram_access_nj: 20.0,
            noc_msg_nj: 0.25,
            core_busy_cycle_nj: 0.1,
            core_static_cycle_nj: 0.03,
        }
    }
}

/// Where the Joules went in one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// L1 dynamic energy (nJ).
    pub l1_nj: f64,
    /// Directory/L2 dynamic energy (nJ).
    pub l2_nj: f64,
    /// DRAM dynamic energy (nJ).
    pub dram_nj: f64,
    /// Interconnect dynamic energy (nJ).
    pub noc_nj: f64,
    /// Core dynamic energy (busy cycles, nJ).
    pub core_dynamic_nj: f64,
    /// Static/leakage energy (nJ).
    pub static_nj: f64,
    /// Dynamic operations retired.
    pub retired_ops: u64,
    /// Run length in cycles.
    pub cycles: u64,
}

impl EnergyReport {
    /// Computes the report from a merged stat set, the run length and the
    /// core count.
    pub fn from_stats(
        model: &EnergyModel,
        stats: &StatSet,
        cycles: u64,
        cores: usize,
        retired_ops: u64,
    ) -> Self {
        let l1_accesses = stats.get("l1.read_reqs") + stats.get("l1.write_reqs");
        let l2_accesses = stats.get("dir.requests");
        let dram_accesses = stats.get("dram.accesses");
        let noc_msgs = stats.get("noc.sent");
        let busy = stats.get("cyc.busy") + stats.get("cyc.compute");
        EnergyReport {
            l1_nj: l1_accesses as f64 * model.l1_access_nj,
            l2_nj: l2_accesses as f64 * model.l2_access_nj,
            dram_nj: dram_accesses as f64 * model.dram_access_nj,
            noc_nj: noc_msgs as f64 * model.noc_msg_nj,
            core_dynamic_nj: busy as f64 * model.core_busy_cycle_nj,
            static_nj: (cycles * cores as u64) as f64 * model.core_static_cycle_nj,
            retired_ops,
            cycles,
        }
    }

    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.l1_nj + self.l2_nj + self.dram_nj + self.noc_nj + self.core_dynamic_nj + self.static_nj
    }

    /// Energy spent moving data (everything except core dynamic).
    pub fn data_movement_nj(&self) -> f64 {
        self.l1_nj + self.l2_nj + self.dram_nj + self.noc_nj
    }

    /// Retired operations per microjoule — the keynote's "how much science
    /// per Joule" metric, at simulator scale.
    pub fn ops_per_uj(&self) -> f64 {
        let uj = self.total_nj() / 1_000.0;
        if uj == 0.0 {
            0.0
        } else {
            self.retired_ops as f64 / uj
        }
    }

    /// Energy-delay product (nJ · cycles), the classic combined metric.
    pub fn edp(&self) -> f64 {
        self.total_nj() * self.cycles as f64
    }
}

impl tenways_sim::json::ToJson for EnergyModel {
    fn to_json(&self) -> tenways_sim::json::Json {
        use tenways_sim::json::Json;
        Json::obj([
            ("l1_access_nj", Json::F64(self.l1_access_nj)),
            ("l2_access_nj", Json::F64(self.l2_access_nj)),
            ("dram_access_nj", Json::F64(self.dram_access_nj)),
            ("noc_msg_nj", Json::F64(self.noc_msg_nj)),
            ("core_busy_cycle_nj", Json::F64(self.core_busy_cycle_nj)),
            ("core_static_cycle_nj", Json::F64(self.core_static_cycle_nj)),
        ])
    }
}

impl EnergyModel {
    /// Overlays fields from a JSON object onto `self`. Absent keys keep
    /// their current value.
    pub fn apply_json(&mut self, doc: &tenways_sim::json::Json) -> Result<(), String> {
        let pairs = doc
            .as_object()
            .ok_or_else(|| format!("energy section must be an object, got {}", doc.type_name()))?;
        for (key, value) in pairs {
            let nj = || {
                value
                    .as_f64()
                    .ok_or(format!("energy.{key} must be a number"))
            };
            match key.as_str() {
                "l1_access_nj" => self.l1_access_nj = nj()?,
                "l2_access_nj" => self.l2_access_nj = nj()?,
                "dram_access_nj" => self.dram_access_nj = nj()?,
                "noc_msg_nj" => self.noc_msg_nj = nj()?,
                "core_busy_cycle_nj" => self.core_busy_cycle_nj = nj()?,
                "core_static_cycle_nj" => self.core_static_cycle_nj = nj()?,
                other => return Err(format!("unknown energy field `{other}`")),
            }
        }
        Ok(())
    }
}

impl tenways_sim::json::ToJson for EnergyReport {
    fn to_json(&self) -> tenways_sim::json::Json {
        use tenways_sim::json::Json;
        Json::obj([
            ("l1_nj", Json::F64(self.l1_nj)),
            ("l2_nj", Json::F64(self.l2_nj)),
            ("dram_nj", Json::F64(self.dram_nj)),
            ("noc_nj", Json::F64(self.noc_nj)),
            ("core_dynamic_nj", Json::F64(self.core_dynamic_nj)),
            ("static_nj", Json::F64(self.static_nj)),
            ("retired_ops", Json::U64(self.retired_ops)),
            ("cycles", Json::U64(self.cycles)),
            ("total_nj", Json::F64(self.total_nj())),
            ("ops_per_uj", Json::F64(self.ops_per_uj())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(pairs: &[(&'static str, u64)]) -> StatSet {
        pairs.iter().copied().collect()
    }

    #[test]
    fn energy_sums_components() {
        let m = EnergyModel {
            l1_access_nj: 1.0,
            l2_access_nj: 2.0,
            dram_access_nj: 4.0,
            noc_msg_nj: 8.0,
            core_busy_cycle_nj: 16.0,
            core_static_cycle_nj: 1.0,
        };
        let s = stats(&[
            ("l1.read_reqs", 3),
            ("l1.write_reqs", 2),
            ("dir.requests", 2),
            ("dram.accesses", 1),
            ("noc.sent", 1),
            ("cyc.busy", 2),
        ]);
        let r = EnergyReport::from_stats(&m, &s, 10, 2, 100);
        assert_eq!(r.l1_nj, 5.0);
        assert_eq!(r.l2_nj, 4.0);
        assert_eq!(r.dram_nj, 4.0);
        assert_eq!(r.noc_nj, 8.0);
        assert_eq!(r.core_dynamic_nj, 32.0);
        assert_eq!(r.static_nj, 20.0);
        assert_eq!(r.total_nj(), 73.0);
        assert_eq!(r.data_movement_nj(), 21.0);
    }

    #[test]
    fn ops_per_uj_scales_with_work() {
        let m = EnergyModel::default();
        let s = stats(&[("cyc.busy", 1000)]);
        let small = EnergyReport::from_stats(&m, &s, 1000, 1, 100);
        let large = EnergyReport::from_stats(&m, &s, 1000, 1, 1000);
        assert!(large.ops_per_uj() > small.ops_per_uj());
    }

    #[test]
    fn default_model_makes_dram_dominant_per_event() {
        let m = EnergyModel::default();
        assert!(m.dram_access_nj > 10.0 * m.l2_access_nj);
        assert!(m.l2_access_nj > m.l1_access_nj);
    }

    #[test]
    fn edp_is_energy_times_delay() {
        let m = EnergyModel::default();
        let s = stats(&[("cyc.busy", 10)]);
        let r = EnergyReport::from_stats(&m, &s, 100, 1, 10);
        assert!((r.edp() - r.total_nj() * 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_has_zero_dynamic_energy() {
        let r = EnergyReport::from_stats(&EnergyModel::default(), &StatSet::new(), 0, 1, 0);
        assert_eq!(r.total_nj(), 0.0);
        assert_eq!(r.ops_per_uj(), 0.0);
    }
}
