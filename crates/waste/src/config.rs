//! One unified, serializable simulation configuration: [`SimConfig`].
//!
//! `SimConfig` gathers everything that defines a run — workload selection
//! and sizing, consistency model, speculation, machine description,
//! protocol options, energy constants, and the cycle limit — into a single
//! struct that can be:
//!
//! * defaulted ([`SimConfig::default`]),
//! * loaded from a TOML or JSON file ([`SimConfig::load`] /
//!   [`SimConfig::from_toml_str`] / [`SimConfig::from_json_str`]),
//! * overlaid field-by-field from a JSON tree ([`SimConfig::apply_json`] —
//!   partial documents are fine, absent keys keep their values),
//! * serialized back out ([`ToJson`]) for embedding in run records, and
//! * turned into a runnable [`Experiment`](crate::Experiment) via
//!   [`Experiment::from_config`](crate::Experiment::from_config).
//!
//! The CLI and the bench harness both build on this struct, so a config
//! file, a `TENWAYS_*` environment override, and a command-line flag all
//! funnel through the same decode path.
//!
//! ```rust
//! use tenways_waste::SimConfig;
//!
//! let cfg = SimConfig::from_toml_str(r#"
//! workload = "oltp"
//! threads = 4
//!
//! [spec]
//! mode = "on-demand"
//! "#).unwrap();
//! assert_eq!(cfg.threads, 4);
//! let exp = tenways_waste::Experiment::from_config(&cfg).unwrap();
//! let record = exp.run().unwrap();
//! assert_eq!(record.label, "oltp");
//! ```

use tenways_coherence::ProtocolConfig;
use tenways_core::SpecConfig;
use tenways_cpu::{ConsistencyModel, SchedMode};
use tenways_sim::json::{Json, JsonError, ToJson};
use tenways_sim::toml::parse_toml;
use tenways_sim::{AtomicsConfig, MachineConfig};
use tenways_workloads::WorkloadParams;

use crate::energy::EnergyModel;

/// The run-loop scheduler a [`SchedConfig`] selects. Every choice
/// produces byte-identical results; they differ only in wall-clock
/// speed (see [`SchedMode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedModeChoice {
    /// Reference per-cycle stepping.
    Naive,
    /// Whole-machine quiescent-gap fast-forward.
    MachineGap,
    /// Component-granular wake scheduling (the default).
    #[default]
    ComponentWake,
    /// Epoch-parallel scheduling across worker threads.
    ParallelEpoch,
}

impl SchedModeChoice {
    /// The config-file / CLI label (matches [`SchedMode::label`]).
    pub fn label(&self) -> &'static str {
        match self {
            SchedModeChoice::Naive => "naive",
            SchedModeChoice::MachineGap => "machine-gap",
            SchedModeChoice::ComponentWake => "component-wake",
            SchedModeChoice::ParallelEpoch => "parallel-epoch",
        }
    }

    /// Parses a config-file / CLI label.
    pub fn from_label(label: &str) -> Option<SchedModeChoice> {
        match label {
            "naive" => Some(SchedModeChoice::Naive),
            "machine-gap" => Some(SchedModeChoice::MachineGap),
            "component-wake" => Some(SchedModeChoice::ComponentWake),
            "parallel-epoch" => Some(SchedModeChoice::ParallelEpoch),
            _ => None,
        }
    }
}

/// The `[sched]` config section: which run-loop scheduler to use, and —
/// for `parallel-epoch` only — how many *intra-run* worker threads shard
/// the machine. This is distinct from the sweep/litmus `--workers` flag,
/// which fans independent runs out *across* processes or threads; see
/// [`SchedConfig::check_host_budget`] for the combination rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedConfig {
    /// Scheduler selection (`mode = "..."`).
    pub mode: SchedModeChoice,
    /// Intra-run shard workers (`workers = N`); only meaningful for
    /// `parallel-epoch`, defaults to the host's available parallelism.
    pub workers: Option<usize>,
}

/// A [`SchedConfig`] that cannot be turned into a [`SchedMode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedConfigError {
    /// `workers` was set for a mode that runs single-threaded.
    WorkersWithoutParallelMode {
        /// The configured (sequential) mode's label.
        mode: &'static str,
    },
    /// `workers = 0` is meaningless for a sharded run.
    ZeroWorkers,
    /// Across-run parallelism times intra-run workers exceeds the host.
    Oversubscribed {
        /// Total threads the combination would pin.
        requested: usize,
        /// Hardware threads actually available.
        available: usize,
    },
}

impl std::fmt::Display for SchedConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedConfigError::WorkersWithoutParallelMode { mode } => write!(
                f,
                "sched.workers only applies to mode `parallel-epoch` (mode is `{mode}`); \
                 use the sweep-level --workers for across-run parallelism"
            ),
            SchedConfigError::ZeroWorkers => write!(f, "sched.workers must be at least 1"),
            SchedConfigError::Oversubscribed {
                requested,
                available,
            } => write!(
                f,
                "oversubscribed: --workers x --sched-workers pins {requested} threads \
                 but the host has {available}; lower one of them"
            ),
        }
    }
}

impl std::error::Error for SchedConfigError {}

/// Fallback intra-run worker count when `workers` is unset.
fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(2, |n| n.get())
}

impl SchedConfig {
    /// Validates the section and produces the [`SchedMode`] to run with.
    ///
    /// # Errors
    ///
    /// [`SchedConfigError::WorkersWithoutParallelMode`] when `workers` is
    /// set for a sequential mode, [`SchedConfigError::ZeroWorkers`] for
    /// `workers = 0`.
    pub fn resolve(&self) -> Result<SchedMode, SchedConfigError> {
        if self.workers == Some(0) {
            return Err(SchedConfigError::ZeroWorkers);
        }
        if self.workers.is_some() && self.mode != SchedModeChoice::ParallelEpoch {
            return Err(SchedConfigError::WorkersWithoutParallelMode {
                mode: self.mode.label(),
            });
        }
        Ok(match self.mode {
            SchedModeChoice::Naive => SchedMode::Naive,
            SchedModeChoice::MachineGap => SchedMode::MachineGap,
            SchedModeChoice::ComponentWake => SchedMode::ComponentWake,
            SchedModeChoice::ParallelEpoch => SchedMode::ParallelEpoch {
                workers: self.workers.unwrap_or_else(host_parallelism),
            },
        })
    }

    /// Threads one run pins under this section (1 for sequential modes).
    pub fn intra_workers(&self) -> usize {
        match self.mode {
            SchedModeChoice::ParallelEpoch => self.workers.unwrap_or_else(host_parallelism),
            _ => 1,
        }
    }

    /// Rejects the combination of *across-run* parallelism (the sweep and
    /// litmus `--workers` flag: how many independent runs execute
    /// concurrently) with this section's *intra-run* workers when it would
    /// pin more threads than the host offers.
    ///
    /// The check only binds when this section actually shards runs
    /// (`intra_workers() > 1`): plain across-run oversubscription of
    /// sequential runs is long-supported (merely slow), but multiplying
    /// it by intra-run shard teams is never what the user meant.
    ///
    /// # Errors
    ///
    /// [`SchedConfigError::Oversubscribed`] when `intra_workers() > 1`
    /// and `across * intra_workers() > host`.
    pub fn check_host_budget(&self, across: usize, host: usize) -> Result<(), SchedConfigError> {
        let intra = self.intra_workers();
        if intra <= 1 {
            return Ok(());
        }
        let requested = across.saturating_mul(intra);
        if requested > host {
            return Err(SchedConfigError::Oversubscribed {
                requested,
                available: host,
            });
        }
        Ok(())
    }

    /// Overlays a JSON value: either the section object
    /// (`{"mode": "...", "workers": N}`) or the CLI shorthand string
    /// (`"parallel-epoch"` / `"parallel-epoch:4"`).
    pub fn apply_json(&mut self, value: &Json) -> Result<(), String> {
        if let Some(text) = value.as_str() {
            let (label, workers) = match text.split_once(':') {
                Some((label, n)) => {
                    let n: usize = n
                        .parse()
                        .map_err(|_| format!("bad sched worker count `{n}`"))?;
                    (label, Some(n))
                }
                None => (text, None),
            };
            self.mode = SchedModeChoice::from_label(label)
                .ok_or_else(|| format!("unknown sched mode `{label}`"))?;
            self.workers = workers;
            return Ok(());
        }
        let pairs = value.as_object().ok_or_else(|| {
            format!(
                "sched must be an object or string, got {}",
                value.type_name()
            )
        })?;
        for (key, value) in pairs {
            match key.as_str() {
                "mode" => {
                    let label = value.as_str().ok_or("sched.mode must be a string")?;
                    self.mode = SchedModeChoice::from_label(label)
                        .ok_or_else(|| format!("unknown sched mode `{label}`"))?;
                }
                "workers" => {
                    self.workers =
                        Some(value.as_u64().ok_or("sched.workers must be an integer")? as usize)
                }
                other => return Err(format!("unknown sched field `{other}`")),
            }
        }
        Ok(())
    }
}

impl ToJson for SchedConfig {
    fn to_json(&self) -> Json {
        let mut pairs = vec![("mode", Json::from(self.mode.label().to_string()))];
        if let Some(w) = self.workers {
            pairs.push(("workers", Json::from(w)));
        }
        Json::obj(pairs)
    }
}

/// Complete, serializable description of one simulation run.
///
/// See the [module docs](self) for the loading pipeline. Field semantics
/// match the long-standing CLI flags: `workload` is a kernel name (or
/// `"contended"`), `threads` sets both the workload's thread count and the
/// machine's core count, and `conflict` only affects the contended
/// microbenchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Workload name: one of the suite kernels or `"contended"`.
    pub workload: String,
    /// Simulated cores (= workload threads).
    pub threads: usize,
    /// Per-thread work units.
    pub scale: u64,
    /// Run seed.
    pub seed: u64,
    /// Conflict probability for the contended microbenchmark.
    pub conflict: f64,
    /// Consistency model all cores enforce.
    pub model: ConsistencyModel,
    /// Fence-speculation configuration.
    pub spec: SpecConfig,
    /// Hardware description (its core count is overridden by `threads` at
    /// run time).
    pub machine: MachineConfig,
    /// Coherence protocol options.
    pub protocol: ProtocolConfig,
    /// Atomic RMW / fence cost model (all-zero by default, i.e. the
    /// legacy free-atomics behavior; `"schweizer"` selects the measured
    /// calibration).
    pub atomics: AtomicsConfig,
    /// Energy constants.
    pub energy: EnergyModel,
    /// Run-loop scheduler selection. Cannot change results — every mode
    /// is byte-identical — only wall-clock speed.
    pub sched: SchedConfig,
    /// Runs are cut off (not failed) at this many cycles.
    pub cycle_limit: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            workload: "oltp".to_string(),
            threads: 8,
            scale: 8,
            seed: 7,
            conflict: 0.05,
            model: ConsistencyModel::Tso,
            spec: SpecConfig::disabled(),
            machine: MachineConfig::default(),
            protocol: ProtocolConfig::default(),
            atomics: AtomicsConfig::default(),
            energy: EnergyModel::default(),
            sched: SchedConfig::default(),
            cycle_limit: 50_000_000,
        }
    }
}

/// An error loading or decoding a [`SimConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigLoadError {
    /// The file could not be read.
    Io(String),
    /// The document did not parse as TOML or JSON.
    Parse(String),
    /// The document parsed but a field was unknown or mistyped.
    Invalid(String),
}

impl std::fmt::Display for ConfigLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigLoadError::Io(e) => write!(f, "cannot read config: {e}"),
            ConfigLoadError::Parse(e) => write!(f, "cannot parse config: {e}"),
            ConfigLoadError::Invalid(e) => write!(f, "invalid config: {e}"),
        }
    }
}

impl std::error::Error for ConfigLoadError {}

impl From<JsonError> for ConfigLoadError {
    fn from(e: JsonError) -> Self {
        ConfigLoadError::Parse(e.to_string())
    }
}

impl SimConfig {
    /// Decodes a full JSON document, overlaying it onto the defaults.
    pub fn from_json_str(text: &str) -> Result<SimConfig, ConfigLoadError> {
        let doc = Json::parse(text)?;
        let mut cfg = SimConfig::default();
        cfg.apply_json(&doc).map_err(ConfigLoadError::Invalid)?;
        Ok(cfg)
    }

    /// Decodes a TOML document, overlaying it onto the defaults.
    pub fn from_toml_str(text: &str) -> Result<SimConfig, ConfigLoadError> {
        let doc = parse_toml(text).map_err(|e| ConfigLoadError::Parse(e.to_string()))?;
        let mut cfg = SimConfig::default();
        cfg.apply_json(&doc).map_err(ConfigLoadError::Invalid)?;
        Ok(cfg)
    }

    /// Loads a config file, choosing the format by extension (`.json` is
    /// JSON, everything else is treated as TOML).
    pub fn load(path: &std::path::Path) -> Result<SimConfig, ConfigLoadError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigLoadError::Io(format!("{}: {e}", path.display())))?;
        if path
            .extension()
            .is_some_and(|e| e.eq_ignore_ascii_case("json"))
        {
            SimConfig::from_json_str(&text)
        } else {
            SimConfig::from_toml_str(&text)
        }
    }

    /// Overlays fields from a (possibly partial) JSON object onto `self`.
    /// Unknown keys and mistyped values are errors; absent keys keep their
    /// current value. Section values (`machine`, `spec`, `protocol`,
    /// `energy`, `sched`) are themselves overlaid field-by-field.
    pub fn apply_json(&mut self, doc: &Json) -> Result<(), String> {
        let pairs = doc
            .as_object()
            .ok_or_else(|| format!("config must be an object, got {}", doc.type_name()))?;
        for (key, value) in pairs {
            match key.as_str() {
                "workload" => {
                    self.workload = value
                        .as_str()
                        .ok_or("workload must be a string")?
                        .to_string()
                }
                "threads" => {
                    self.threads = value.as_u64().ok_or("threads must be an integer")? as usize
                }
                "scale" => self.scale = value.as_u64().ok_or("scale must be an integer")?,
                "seed" => self.seed = value.as_u64().ok_or("seed must be an integer")?,
                "conflict" => self.conflict = value.as_f64().ok_or("conflict must be a number")?,
                "model" => {
                    let label = value.as_str().ok_or("model must be a string")?;
                    self.model = ConsistencyModel::from_label(label)
                        .ok_or_else(|| format!("unknown model `{label}`"))?;
                }
                "spec" => self.spec.apply_json(value)?,
                "machine" => self.machine.apply_json(value)?,
                "protocol" => self.protocol.apply_json(value)?,
                "atomics" => {
                    self.atomics.apply_json(value)?;
                    self.atomics.validate().map_err(|e| e.to_string())?;
                }
                "energy" => self.energy.apply_json(value)?,
                "sched" => self.sched.apply_json(value)?,
                "cycle_limit" => {
                    self.cycle_limit = value.as_u64().ok_or("cycle_limit must be an integer")?
                }
                other => return Err(format!("unknown config field `{other}`")),
            }
        }
        Ok(())
    }

    /// The workload sizing parameters these settings imply.
    pub fn params(&self) -> WorkloadParams {
        WorkloadParams {
            threads: self.threads,
            scale: self.scale,
            seed: self.seed,
        }
    }

    /// The canonical JSON document of this configuration: the full
    /// serialization (every field explicit, so defaulted and
    /// explicitly-set-to-default fields render identically) with keys
    /// sorted recursively, minus the non-semantic `sched` section.
    ///
    /// Because loading normalizes every source — TOML vs JSON text, key
    /// order, CLI flag overlays, partial documents overlaid onto defaults
    /// — into this one struct, any two semantically equal configs produce
    /// a byte-identical canonical document. The scheduler is excluded for
    /// the same reason [`RunRecord::fingerprint`](crate::RunRecord::fingerprint)
    /// excludes it: every [`SchedMode`] produces byte-identical results,
    /// so a result computed under any scheduler answers all of them.
    pub fn canonical_json(&self) -> Json {
        let doc = self.to_json();
        let pairs = match doc {
            Json::Obj(pairs) => pairs.into_iter().filter(|(k, _)| k != "sched").collect(),
            other => return tenways_sim::hash::canonical(&other),
        };
        tenways_sim::hash::canonical(&Json::Obj(pairs))
    }

    /// The content-address of this configuration: the SHA-256 hex digest
    /// of [`canonical_json`](Self::canonical_json)'s compact rendering.
    /// This is the key of the `tenways serve` result cache — equal keys
    /// mean interchangeable (deterministic, byte-identical) results.
    pub fn cache_key(&self) -> String {
        tenways_sim::hash::sha256_hex(self.canonical_json().to_string().as_bytes())
    }
}

impl ToJson for SimConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::from(self.workload.clone())),
            ("threads", Json::from(self.threads)),
            ("scale", Json::from(self.scale)),
            ("seed", Json::from(self.seed)),
            ("conflict", Json::from(self.conflict)),
            ("model", self.model.to_json()),
            ("spec", self.spec.to_json()),
            ("machine", self.machine.to_json()),
            ("protocol", self.protocol.to_json()),
            ("atomics", self.atomics.to_json()),
            ("energy", self.energy.to_json()),
            ("sched", self.sched.to_json()),
            ("cycle_limit", Json::from(self.cycle_limit)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenways_core::SpecMode;

    #[test]
    fn default_round_trips_through_json() {
        let cfg = SimConfig::default();
        let text = cfg.to_json().to_string();
        let back = SimConfig::from_json_str(&text).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn non_default_round_trips_through_json() {
        let mut cfg = SimConfig {
            workload: "contended".to_string(),
            threads: 16,
            conflict: 0.25,
            model: ConsistencyModel::Sc,
            spec: SpecConfig::per_store(12),
            ..SimConfig::default()
        };
        cfg.machine.noc_mesh = true;
        cfg.machine.dram_latency = 200;
        cfg.protocol.grant_exclusive = false;
        cfg.energy.dram_access_nj = 25.5;
        cfg.cycle_limit = 1_000;
        let back = SimConfig::from_json_str(&cfg.to_json().to_string()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn partial_toml_overlays_defaults() {
        let cfg = SimConfig::from_toml_str(
            "workload = \"radix\"\nseed = 0x7ea5\n\n[spec]\nmode = \"continuous\"\n\n[machine]\ncores = 4\n",
        )
        .unwrap();
        assert_eq!(cfg.workload, "radix");
        assert_eq!(cfg.seed, 0x7ea5);
        assert_eq!(cfg.spec.mode, SpecMode::Continuous);
        assert_eq!(cfg.machine.cores, 4);
        // Untouched fields keep their defaults.
        assert_eq!(cfg.threads, SimConfig::default().threads);
        assert_eq!(
            cfg.machine.dram_latency,
            SimConfig::default().machine.dram_latency
        );
    }

    #[test]
    fn unknown_fields_are_rejected() {
        assert!(matches!(
            SimConfig::from_json_str(r#"{"wrkload":"oltp"}"#),
            Err(ConfigLoadError::Invalid(_))
        ));
        assert!(matches!(
            SimConfig::from_json_str(r#"{"threads":"many"}"#),
            Err(ConfigLoadError::Invalid(_))
        ));
        assert!(matches!(
            SimConfig::from_json_str("not json"),
            Err(ConfigLoadError::Parse(_))
        ));
    }

    #[test]
    fn spec_accepts_cli_shorthand_string() {
        let cfg = SimConfig::from_json_str(r#"{"spec":"per-store:9"}"#).unwrap();
        assert_eq!(cfg.spec, SpecConfig::per_store(9));
    }

    #[test]
    fn sched_section_parses_from_toml_and_shorthand() {
        let cfg =
            SimConfig::from_toml_str("[sched]\nmode = \"parallel-epoch\"\nworkers = 4\n").unwrap();
        assert_eq!(cfg.sched.mode, SchedModeChoice::ParallelEpoch);
        assert_eq!(cfg.sched.workers, Some(4));
        assert_eq!(
            cfg.sched.resolve(),
            Ok(SchedMode::ParallelEpoch { workers: 4 })
        );

        let cfg = SimConfig::from_json_str(r#"{"sched":"machine-gap"}"#).unwrap();
        assert_eq!(cfg.sched.resolve(), Ok(SchedMode::MachineGap));
        let cfg = SimConfig::from_json_str(r#"{"sched":"parallel-epoch:2"}"#).unwrap();
        assert_eq!(
            cfg.sched.resolve(),
            Ok(SchedMode::ParallelEpoch { workers: 2 })
        );
        let back = SimConfig::from_json_str(&cfg.to_json().to_string()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn sched_validation_errors_are_typed() {
        let cfg = SchedConfig {
            mode: SchedModeChoice::ComponentWake,
            workers: Some(4),
        };
        assert_eq!(
            cfg.resolve(),
            Err(SchedConfigError::WorkersWithoutParallelMode {
                mode: "component-wake"
            })
        );
        let cfg = SchedConfig {
            mode: SchedModeChoice::ParallelEpoch,
            workers: Some(0),
        };
        assert_eq!(cfg.resolve(), Err(SchedConfigError::ZeroWorkers));
        assert!(SimConfig::from_toml_str("[sched]\nmode = \"warp-drive\"\n").is_err());
        assert!(SimConfig::from_json_str(r#"{"sched":{"wrkers":2}}"#).is_err());
    }

    #[test]
    fn atomics_section_parses_from_toml_and_shorthand() {
        let cfg = SimConfig::from_toml_str(
            "[atomics]\nrmw_l1 = 15\nrmw_same_socket = 40\nrmw_cross_socket = 90\nfence_full = 33\n",
        )
        .unwrap();
        assert_eq!(
            cfg.atomics,
            AtomicsConfig {
                fence_oneway: 0,
                ..AtomicsConfig::schweizer()
            }
        );

        let cfg = SimConfig::from_json_str(r#"{"atomics":"schweizer"}"#).unwrap();
        assert_eq!(cfg.atomics, AtomicsConfig::schweizer());
        assert!(!cfg.atomics.is_free());
        let back = SimConfig::from_json_str(&cfg.to_json().to_string()).unwrap();
        assert_eq!(back, cfg);

        let cfg = SimConfig::from_json_str(r#"{"atomics":"off"}"#).unwrap();
        assert!(cfg.atomics.is_free());
    }

    #[test]
    fn atomics_section_is_validated_at_decode() {
        // Non-monotonic: nearer tier dearer than the farther one.
        let err =
            SimConfig::from_toml_str("[atomics]\nrmw_l1 = 50\nrmw_same_socket = 40\n").unwrap_err();
        assert!(matches!(err, ConfigLoadError::Invalid(_)), "{err:?}");
        assert!(SimConfig::from_json_str(r#"{"atomics":"haswell"}"#).is_err());
        assert!(SimConfig::from_json_str(r#"{"atomics":{"rmw_l9":3}}"#).is_err());
    }

    #[test]
    fn host_budget_combines_across_and_intra_workers() {
        let cfg = SchedConfig {
            mode: SchedModeChoice::ParallelEpoch,
            workers: Some(4),
        };
        assert_eq!(cfg.intra_workers(), 4);
        assert_eq!(cfg.check_host_budget(2, 8), Ok(()));
        assert_eq!(
            cfg.check_host_budget(3, 8),
            Err(SchedConfigError::Oversubscribed {
                requested: 12,
                available: 8
            })
        );
        // Sequential modes never trip the budget: across-run
        // oversubscription alone is supported (merely slow).
        let seq = SchedConfig::default();
        assert_eq!(seq.intra_workers(), 1);
        assert_eq!(seq.check_host_budget(8, 8), Ok(()));
        assert_eq!(seq.check_host_budget(64, 1), Ok(()));
    }
}
