//! Mapping raw cycle buckets onto the ten waste categories:
//! [`WasteBreakdown`].

use tenways_sim::StatSet;

/// The taxonomy: useful work plus the ten ways to waste.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WasteCategory {
    /// Retired work and inherent compute latency.
    Useful,
    /// Naive SC serialization of memory operations.
    ScOrdering,
    /// Explicit fence drains.
    FenceStall,
    /// Atomics acting as implicit fences.
    AtomicStall,
    /// Retirement blocked on a full store buffer.
    StoreBuffer,
    /// Compulsory (first-touch) misses.
    ColdMiss,
    /// Capacity/conflict refetches (L1 or L2 evictions).
    CapacityMiss,
    /// Communication: data pried from other cores.
    CoherenceMiss,
    /// Cycles burnt accessing lock words (spins and their misses).
    LockSpin,
    /// Cycles burnt on barrier arrival and generation spinning.
    BarrierWait,
    /// ROB/MSHR/speculation-capacity hazards, idle tails, unresolved waits.
    Structural,
}

impl WasteCategory {
    /// All categories, report order (useful first).
    pub fn all() -> [WasteCategory; 11] {
        [
            WasteCategory::Useful,
            WasteCategory::ScOrdering,
            WasteCategory::FenceStall,
            WasteCategory::AtomicStall,
            WasteCategory::StoreBuffer,
            WasteCategory::ColdMiss,
            WasteCategory::CapacityMiss,
            WasteCategory::CoherenceMiss,
            WasteCategory::LockSpin,
            WasteCategory::BarrierWait,
            WasteCategory::Structural,
        ]
    }

    /// Stable label.
    pub fn label(self) -> &'static str {
        match self {
            WasteCategory::Useful => "useful",
            WasteCategory::ScOrdering => "sc_ordering",
            WasteCategory::FenceStall => "fence_stall",
            WasteCategory::AtomicStall => "atomic_stall",
            WasteCategory::StoreBuffer => "store_buffer",
            WasteCategory::ColdMiss => "cold_miss",
            WasteCategory::CapacityMiss => "capacity_miss",
            WasteCategory::CoherenceMiss => "coherence_miss",
            WasteCategory::LockSpin => "lock_spin",
            WasteCategory::BarrierWait => "barrier_wait",
            WasteCategory::Structural => "structural",
        }
    }
}

/// Classifies one raw `cyc.*` bucket. Tag precedence first: anything the
/// workload marked as lock/barrier belongs to that category regardless of
/// the stall mechanism — the keynote's view is "time lost to
/// synchronization", not "which pipeline structure blocked".
fn classify(bucket: &str) -> Option<WasteCategory> {
    let b = bucket.strip_prefix("cyc.")?;
    if b.ends_with(".lock") || b.contains(".lock.") {
        return Some(WasteCategory::LockSpin);
    }
    if b.ends_with(".barrier") || b.contains(".barrier.") {
        return Some(WasteCategory::BarrierWait);
    }
    Some(match b {
        "busy" | "compute" => WasteCategory::Useful,
        "idle_done" | "other" | "stall.rob_full" | "stall.mshr_full" | "stall.spec_cap"
        | "stall.same_addr" | "mem.unresolved" => WasteCategory::Structural,
        // An honored fence burning its configured execution latency (the
        // `[atomics]` fence cost) is fence waste, same as fence-ordering
        // stalls.
        "stall.fence_exec" => WasteCategory::FenceStall,
        _ if b.starts_with("stall.sc.") => WasteCategory::ScOrdering,
        _ if b.starts_with("stall.fence.") => WasteCategory::FenceStall,
        _ if b.starts_with("stall.atomic.") => WasteCategory::AtomicStall,
        _ if b.starts_with("stall.sb_full.") => WasteCategory::StoreBuffer,
        _ if b.ends_with(".cold") => WasteCategory::ColdMiss,
        _ if b.ends_with(".capacity") || b.ends_with(".l2") || b.ends_with(".l1") => {
            WasteCategory::CapacityMiss
        }
        _ if b.ends_with(".coherence") => WasteCategory::CoherenceMiss,
        _ => WasteCategory::Structural,
    })
}

/// Cycle totals per waste category, plus the rollback-waste overlay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WasteBreakdown {
    cycles: [u64; 11],
    /// Cycles spent in epochs that rolled back (overlaps the categories).
    pub rollback_overlay: u64,
    /// Message-cycles spent queueing in the interconnect (machine-level;
    /// overlaps the per-core memory-wait categories).
    pub noc_queue_overlay: u64,
    total: u64,
}

impl WasteBreakdown {
    /// Builds the breakdown from a merged stat set (see
    /// `tenways_cpu::Machine::merged_stats`).
    pub fn from_stats(stats: &StatSet) -> Self {
        let mut cycles = [0u64; 11];
        for (key, v) in stats.iter() {
            if let Some(cat) = classify(key) {
                let idx = WasteCategory::all()
                    .iter()
                    .position(|c| *c == cat)
                    .expect("in table");
                cycles[idx] += v;
            }
        }
        let total = cycles.iter().sum();
        WasteBreakdown {
            cycles,
            rollback_overlay: stats.get("spec.wasted_cycles"),
            noc_queue_overlay: stats.get("noc.inject_queue_cycles")
                + stats.get("noc.accept_queue_cycles"),
            total,
        }
    }

    /// Cycles attributed to `cat`.
    pub fn get(&self, cat: WasteCategory) -> u64 {
        let idx = WasteCategory::all()
            .iter()
            .position(|c| *c == cat)
            .expect("in table");
        self.cycles[idx]
    }

    /// Total attributed cycles (sum over categories).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of cycles in `cat` (0 if no cycles recorded).
    pub fn fraction(&self, cat: WasteCategory) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.get(cat) as f64 / self.total as f64
        }
    }

    /// Fraction of cycles doing useful work.
    pub fn useful_fraction(&self) -> f64 {
        self.fraction(WasteCategory::Useful)
    }

    /// Total wasted cycles (everything but useful).
    pub fn wasted(&self) -> u64 {
        self.total - self.get(WasteCategory::Useful)
    }

    /// Iterates `(category, cycles)` in report order.
    pub fn iter(&self) -> impl Iterator<Item = (WasteCategory, u64)> + '_ {
        WasteCategory::all().into_iter().map(|c| (c, self.get(c)))
    }

    /// Cycles lost to consistency enforcement specifically (the quantity
    /// fence speculation attacks): SC ordering + fences + atomics.
    pub fn consistency_cycles(&self) -> u64 {
        self.get(WasteCategory::ScOrdering)
            + self.get(WasteCategory::FenceStall)
            + self.get(WasteCategory::AtomicStall)
    }
}

impl tenways_sim::json::ToJson for WasteBreakdown {
    /// Categories keyed by their report labels, plus the overlays and
    /// derived fractions.
    fn to_json(&self) -> tenways_sim::json::Json {
        use tenways_sim::json::Json;
        let mut fields: Vec<(String, Json)> = self
            .iter()
            .map(|(cat, cycles)| (cat.label().to_string(), Json::U64(cycles)))
            .collect();
        fields.push((
            "rollback_overlay".to_string(),
            Json::U64(self.rollback_overlay),
        ));
        fields.push((
            "noc_queue_overlay".to_string(),
            Json::U64(self.noc_queue_overlay),
        ));
        fields.push(("total".to_string(), Json::U64(self.total())));
        fields.push((
            "useful_fraction".to_string(),
            Json::F64(self.useful_fraction()),
        ));
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(pairs: &[(&'static str, u64)]) -> StatSet {
        pairs.iter().copied().collect()
    }

    #[test]
    fn classification_covers_the_bucket_vocabulary() {
        let cases = [
            ("cyc.busy", WasteCategory::Useful),
            ("cyc.compute", WasteCategory::Useful),
            ("cyc.stall.sc.data", WasteCategory::ScOrdering),
            ("cyc.stall.fence.data", WasteCategory::FenceStall),
            ("cyc.stall.fence_exec", WasteCategory::FenceStall),
            ("cyc.stall.atomic.data", WasteCategory::AtomicStall),
            ("cyc.stall.sb_full.data", WasteCategory::StoreBuffer),
            ("cyc.mem.data.cold", WasteCategory::ColdMiss),
            ("cyc.mem.data.capacity", WasteCategory::CapacityMiss),
            ("cyc.mem.data.l2", WasteCategory::CapacityMiss),
            ("cyc.mem.data.l1", WasteCategory::CapacityMiss),
            ("cyc.mem.data.coherence", WasteCategory::CoherenceMiss),
            ("cyc.mem.lock.coherence", WasteCategory::LockSpin),
            ("cyc.stall.atomic.lock", WasteCategory::LockSpin),
            ("cyc.mem.barrier.l2", WasteCategory::BarrierWait),
            ("cyc.stall.fence.barrier", WasteCategory::BarrierWait),
            ("cyc.stall.rob_full", WasteCategory::Structural),
            ("cyc.mem.unresolved", WasteCategory::Structural),
            ("cyc.idle_done", WasteCategory::Structural),
        ];
        for (bucket, want) in cases {
            assert_eq!(classify(bucket), Some(want), "{bucket}");
        }
    }

    #[test]
    fn non_cycle_stats_are_ignored() {
        assert_eq!(classify("l1.hits"), None);
        assert_eq!(classify("spec.commits"), None);
        let b = WasteBreakdown::from_stats(&stats(&[("l1.hits", 100), ("cyc.busy", 10)]));
        assert_eq!(b.total(), 10);
    }

    #[test]
    fn totals_and_fractions() {
        let b = WasteBreakdown::from_stats(&stats(&[
            ("cyc.busy", 60),
            ("cyc.stall.fence.data", 25),
            ("cyc.mem.data.coherence", 15),
        ]));
        assert_eq!(b.total(), 100);
        assert_eq!(b.useful_fraction(), 0.6);
        assert_eq!(b.wasted(), 40);
        assert_eq!(b.get(WasteCategory::FenceStall), 25);
        assert_eq!(b.consistency_cycles(), 25);
    }

    #[test]
    fn rollback_overlay_is_kept_out_of_total() {
        let b = WasteBreakdown::from_stats(&stats(&[("cyc.busy", 50), ("spec.wasted_cycles", 30)]));
        assert_eq!(b.total(), 50);
        assert_eq!(b.rollback_overlay, 30);
    }

    #[test]
    fn noc_queue_overlay_sums_both_queues() {
        let b = WasteBreakdown::from_stats(&stats(&[
            ("cyc.busy", 10),
            ("noc.inject_queue_cycles", 7),
            ("noc.accept_queue_cycles", 5),
        ]));
        assert_eq!(b.noc_queue_overlay, 12);
        assert_eq!(b.total(), 10);
    }

    #[test]
    fn iter_visits_all_categories_in_order() {
        let b = WasteBreakdown::from_stats(&stats(&[("cyc.busy", 1)]));
        let cats: Vec<_> = b.iter().map(|(c, _)| c).collect();
        assert_eq!(cats.len(), 11);
        assert_eq!(cats[0], WasteCategory::Useful);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = WasteCategory::all().iter().map(|c| c.label()).collect();
        let n = labels.len();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), n);
    }
}
