//! Plain-text report rendering for the benchmark harness.
//!
//! Every figure/table binary in `tenways-bench` prints through these
//! helpers so output stays uniform and diff-able across runs.

use crate::runner::RunRecord;
use crate::taxonomy::WasteCategory;

/// Renders a stacked waste-breakdown table (one row per record), columns
/// being the taxonomy categories as percentages of total cycles.
pub fn breakdown_table(records: &[RunRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<22}", "workload"));
    for cat in WasteCategory::all() {
        out.push_str(&format!("{:>15}", cat.label()));
    }
    out.push_str(&format!("{:>15}\n", "rollback%"));
    for r in records {
        out.push_str(&format!("{:<22}", r.label));
        for cat in WasteCategory::all() {
            out.push_str(&format!("{:>14.1}%", 100.0 * r.breakdown.fraction(cat)));
        }
        let rb = if r.breakdown.total() == 0 {
            0.0
        } else {
            100.0 * r.breakdown.rollback_overlay as f64 / r.breakdown.total() as f64
        };
        out.push_str(&format!("{:>14.1}%\n", rb));
    }
    out
}

/// Renders a runtime comparison: rows are labels, columns are the given
/// series, values are runtimes normalized to the **last** column.
pub fn normalized_runtime_table(series_names: &[&str], rows: &[(String, Vec<u64>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<14}", "workload"));
    for name in series_names {
        out.push_str(&format!("{name:>16}"));
    }
    out.push('\n');
    for (label, cycles) in rows {
        out.push_str(&format!("{label:<14}"));
        let base = *cycles.last().unwrap_or(&1) as f64;
        for &c in cycles {
            out.push_str(&format!("{:>16.3}", c as f64 / base.max(1.0)));
        }
        out.push('\n');
    }
    out
}

/// Renders an energy table: per-component nJ, total, ops/µJ, EDP.
pub fn energy_table(records: &[RunRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22}{:>12}{:>12}{:>12}{:>12}{:>12}{:>12}{:>14}{:>12}{:>14}\n",
        "workload",
        "l1 nJ",
        "l2 nJ",
        "dram nJ",
        "noc nJ",
        "core nJ",
        "static nJ",
        "total nJ",
        "ops/uJ",
        "EDP"
    ));
    for r in records {
        let e = &r.energy;
        out.push_str(&format!(
            "{:<22}{:>12.0}{:>12.0}{:>12.0}{:>12.0}{:>12.0}{:>12.0}{:>14.0}{:>12.1}{:>14.2e}\n",
            r.label,
            e.l1_nj,
            e.l2_nj,
            e.dram_nj,
            e.noc_nj,
            e.core_dynamic_nj,
            e.static_nj,
            e.total_nj(),
            e.ops_per_uj(),
            e.edp(),
        ));
    }
    out
}

/// Renders a histogram as a CDF listing.
pub fn cdf_listing(title: &str, hist: &tenways_sim::Histogram) -> String {
    let mut out = format!(
        "{title}: n={} mean={:.2} p50={} p90={} p99={} max={}\n",
        hist.count(),
        hist.mean(),
        hist.percentile(50.0),
        hist.percentile(90.0),
        hist.percentile(99.0),
        hist.max()
    );
    for (v, f) in hist.cdf() {
        out.push_str(&format!("  <= {v:>6}: {:>6.2}%\n", f * 100.0));
    }
    out
}

/// Renders a generic aligned two-column-plus table.
pub fn simple_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    for h in headers {
        out.push_str(&format!("{h:>16}"));
    }
    out.push('\n');
    for row in rows {
        for cell in row {
            out.push_str(&format!("{cell:>16}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenways_cpu::ConsistencyModel;
    use tenways_workloads::{WorkloadKind, WorkloadParams};

    fn record() -> RunRecord {
        crate::Experiment::new(WorkloadKind::LuLike)
            .params(WorkloadParams {
                threads: 2,
                scale: 1,
                seed: 0,
            })
            .model(ConsistencyModel::Tso)
            .run()
            .unwrap()
    }

    #[test]
    fn breakdown_table_has_all_columns() {
        let t = breakdown_table(&[record()]);
        for cat in WasteCategory::all() {
            assert!(t.contains(cat.label()), "missing {}", cat.label());
        }
        assert!(t.contains("lu"));
    }

    #[test]
    fn normalized_table_normalizes_to_last_column() {
        let t = normalized_runtime_table(&["SC", "RMO"], &[("x".into(), vec![200, 100])]);
        assert!(t.contains("2.000"), "{t}");
        assert!(t.contains("1.000"), "{t}");
    }

    #[test]
    fn energy_table_renders() {
        let t = energy_table(&[record()]);
        assert!(t.contains("total nJ"));
        assert!(t.contains("lu"));
    }

    #[test]
    fn cdf_listing_is_monotone_in_output() {
        let mut h = tenways_sim::Histogram::new(8, 1);
        for v in [1, 2, 2, 3] {
            h.record(v);
        }
        let t = cdf_listing("sb", &h);
        assert!(t.contains("p50"));
        assert!(t.contains("100.00%"));
    }

    #[test]
    fn simple_table_alignment() {
        let t = simple_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.lines().count() == 2);
    }
}
