//! The experiment runner: [`Experiment`] configures one simulation and
//! [`RunRecord`] carries everything the report layer needs.

use tenways_coherence::ProtocolConfig;
use tenways_cpu::{ConsistencyModel, Machine, MachineSpec, RunSummary, SpecConfig};
use tenways_sim::{Histogram, MachineConfig, StatSet};
use tenways_workloads::{contended_programs, ContendedParams, WorkloadKind, WorkloadParams};

use crate::energy::{EnergyModel, EnergyReport};
use crate::taxonomy::WasteBreakdown;

/// What to simulate.
#[derive(Debug, Clone)]
enum Input {
    Kind(WorkloadKind),
    Contended(ContendedParams),
}

/// A configured experiment (builder).
#[derive(Debug, Clone)]
pub struct Experiment {
    input: Input,
    params: WorkloadParams,
    machine: MachineConfig,
    model: ConsistencyModel,
    spec: SpecConfig,
    protocol: ProtocolConfig,
    energy: EnergyModel,
    cycle_limit: u64,
}

impl Experiment {
    /// An experiment on one of the suite kernels with default settings
    /// (8 threads, TSO baseline, default machine).
    pub fn new(kind: WorkloadKind) -> Self {
        Experiment {
            input: Input::Kind(kind),
            params: WorkloadParams::default(),
            machine: MachineConfig::default(),
            model: ConsistencyModel::Tso,
            spec: SpecConfig::disabled(),
            protocol: ProtocolConfig::default(),
            energy: EnergyModel::default(),
            cycle_limit: 50_000_000,
        }
    }

    /// An experiment on the contended microbenchmark.
    pub fn contended(params: ContendedParams) -> Self {
        let threads = params.threads;
        let mut e = Experiment::new(WorkloadKind::BarnesLike);
        e.input = Input::Contended(params);
        e.params.threads = threads;
        e
    }

    /// Sets workload sizing (threads/scale/seed). Thread count must match
    /// the machine's core count at [`run`](Self::run) time; the runner
    /// resizes the machine automatically.
    pub fn params(mut self, params: WorkloadParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the machine description (core count is overridden to match the
    /// workload's thread count).
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// Sets the consistency model.
    pub fn model(mut self, model: ConsistencyModel) -> Self {
        self.model = model;
        self
    }

    /// Sets the speculation configuration.
    pub fn spec(mut self, spec: SpecConfig) -> Self {
        self.spec = spec;
        self
    }

    /// Sets coherence protocol options (MSI/MESI).
    pub fn protocol(mut self, protocol: ProtocolConfig) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the energy constants.
    pub fn energy(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Sets the cycle limit (runs are cut off, not failed, at the limit).
    pub fn cycle_limit(mut self, limit: u64) -> Self {
        self.cycle_limit = limit;
        self
    }

    /// Runs the experiment.
    pub fn run(&self) -> RunRecord {
        let threads = match &self.input {
            Input::Kind(_) => self.params.threads,
            Input::Contended(p) => p.threads,
        };
        let mut machine_cfg = self.machine.clone();
        machine_cfg.cores = threads;
        let programs = match &self.input {
            Input::Kind(kind) => {
                let mut p = self.params;
                p.threads = threads;
                kind.build(&p)
            }
            Input::Contended(p) => contended_programs(p),
        };
        let ms = MachineSpec {
            machine: machine_cfg,
            model: self.model,
            spec: self.spec,
            protocol: self.protocol,
        };
        let mut machine = Machine::new(&ms, programs);
        let summary = machine.run(self.cycle_limit);
        let stats = machine.merged_stats();
        let breakdown = WasteBreakdown::from_stats(&stats);
        let energy = EnergyReport::from_stats(
            &self.energy,
            &stats,
            summary.cycles,
            threads,
            summary.retired_ops,
        );
        RunRecord {
            label: match &self.input {
                Input::Kind(k) => k.name().to_string(),
                Input::Contended(p) => format!("contended(p={})", p.conflict_p),
            },
            model: self.model,
            spec: self.spec,
            summary,
            stats,
            breakdown,
            energy,
            sb_occupancy: machine.sb_occupancy(),
            spec_depth: machine.spec_depth(),
        }
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Workload label.
    pub label: String,
    /// Consistency model used.
    pub model: ConsistencyModel,
    /// Speculation configuration used.
    pub spec: SpecConfig,
    /// Timing summary.
    pub summary: RunSummary,
    /// Merged raw statistics.
    pub stats: StatSet,
    /// The ten-ways cycle breakdown.
    pub breakdown: WasteBreakdown,
    /// The energy report.
    pub energy: EnergyReport,
    /// Store-buffer occupancy distribution.
    pub sb_occupancy: Histogram,
    /// Speculation epoch depth distribution.
    pub spec_depth: Histogram,
}

impl RunRecord {
    /// Runtime normalized to `baseline` (1.0 = same speed; >1 = slower).
    pub fn runtime_vs(&self, baseline: &RunRecord) -> f64 {
        if baseline.summary.cycles == 0 {
            return 0.0;
        }
        self.summary.cycles as f64 / baseline.summary.cycles as f64
    }

    /// Speedup over `baseline` (>1 = faster).
    pub fn speedup_vs(&self, baseline: &RunRecord) -> f64 {
        if self.summary.cycles == 0 {
            return 0.0;
        }
        baseline.summary.cycles as f64 / self.summary.cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_runs_and_reports() {
        let r = Experiment::new(WorkloadKind::LuLike)
            .params(WorkloadParams { threads: 2, scale: 2, seed: 3 })
            .run();
        assert!(r.summary.finished);
        assert!(r.breakdown.total() > 0);
        assert!(r.energy.total_nj() > 0.0);
        assert_eq!(r.label, "lu");
    }

    #[test]
    fn contended_experiment_runs() {
        let r = Experiment::contended(ContendedParams {
            threads: 2,
            ops_per_thread: 100,
            ..ContendedParams::default()
        })
        .run();
        assert!(r.summary.finished);
        assert!(r.label.starts_with("contended"));
    }

    #[test]
    fn speedup_math() {
        let fast = Experiment::new(WorkloadKind::LuLike)
            .params(WorkloadParams { threads: 2, scale: 2, seed: 3 })
            .model(ConsistencyModel::Rmo)
            .run();
        let slow = Experiment::new(WorkloadKind::LuLike)
            .params(WorkloadParams { threads: 2, scale: 2, seed: 3 })
            .model(ConsistencyModel::Sc)
            .run();
        assert!(slow.runtime_vs(&fast) >= 1.0);
        assert!(fast.speedup_vs(&slow) >= 1.0);
    }

    #[test]
    fn machine_cores_follow_thread_count() {
        let r = Experiment::new(WorkloadKind::DssLike)
            .params(WorkloadParams { threads: 3, scale: 1, seed: 0 })
            .run();
        assert_eq!(r.summary.core_done_at.len(), 3);
    }
}
