//! The experiment runner: [`Experiment`] configures one simulation and
//! [`RunRecord`] carries everything the report layer needs.

use tenways_coherence::ProtocolConfig;
use tenways_cpu::{ConsistencyModel, Machine, MachineSpec, RunSummary, SchedMode, SpecConfig};
use tenways_sim::config::ConfigError;
use tenways_sim::json::{Json, ToJson};
use tenways_sim::trace::{TraceEvent, Tracer};
use tenways_sim::{AtomicsConfig, AtomicsError, Histogram, MachineConfig, StatSet};
use tenways_workloads::{contended_programs, ContendedParams, WorkloadKind, WorkloadParams};

use crate::config::{SchedConfigError, SimConfig};
use crate::energy::{EnergyModel, EnergyReport};
use crate::taxonomy::WasteBreakdown;

/// Version of the serialized [`RunRecord`] JSON layout; bumped on any
/// breaking change. Mirrored in `results/schema/run_record.v1.json`.
pub const RUN_RECORD_SCHEMA_VERSION: u64 = 1;

/// Why an [`Experiment`] could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// The configured workload name matches no kernel (and isn't
    /// `"contended"`).
    UnknownWorkload(String),
    /// The machine description is invalid (after the runner overrode its
    /// core count with the thread count).
    InvalidMachine(ConfigError),
    /// The `[sched]` section is inconsistent (see [`SchedConfigError`]).
    Sched(SchedConfigError),
    /// The atomics cost model is inconsistent (see [`AtomicsError`]).
    Atomics(AtomicsError),
    /// Any other configuration problem.
    Config(String),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::UnknownWorkload(name) => write!(f, "unknown workload `{name}`"),
            ExperimentError::InvalidMachine(e) => write!(f, "invalid machine: {e}"),
            ExperimentError::Sched(e) => write!(f, "invalid sched config: {e}"),
            ExperimentError::Atomics(e) => write!(f, "invalid atomics config: {e}"),
            ExperimentError::Config(e) => write!(f, "invalid experiment: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

/// What to simulate.
#[derive(Debug, Clone)]
enum Input {
    Kind(WorkloadKind),
    Contended(ContendedParams),
}

/// A configured experiment (builder).
#[derive(Debug, Clone)]
pub struct Experiment {
    input: Input,
    params: WorkloadParams,
    machine: MachineConfig,
    model: ConsistencyModel,
    spec: SpecConfig,
    protocol: ProtocolConfig,
    atomics: AtomicsConfig,
    energy: EnergyModel,
    cycle_limit: u64,
    sched: SchedMode,
}

impl Experiment {
    /// An experiment on one of the suite kernels with default settings
    /// (8 threads, TSO baseline, default machine).
    pub fn new(kind: WorkloadKind) -> Self {
        Experiment {
            input: Input::Kind(kind),
            params: WorkloadParams::default(),
            machine: MachineConfig::default(),
            model: ConsistencyModel::Tso,
            spec: SpecConfig::disabled(),
            protocol: ProtocolConfig::default(),
            atomics: AtomicsConfig::default(),
            energy: EnergyModel::default(),
            cycle_limit: 50_000_000,
            sched: SchedMode::default(),
        }
    }

    /// An experiment on the contended microbenchmark.
    pub fn contended(params: ContendedParams) -> Self {
        let threads = params.threads;
        let mut e = Experiment::new(WorkloadKind::BarnesLike);
        e.input = Input::Contended(params);
        e.params.threads = threads;
        e
    }

    /// Builds an experiment from a unified [`SimConfig`].
    ///
    /// The config's `workload` selects a suite kernel by name, or the
    /// contended microbenchmark when it is `"contended"` (sized
    /// `ops_per_thread = 200 * scale`, matching the CLI's long-standing
    /// mapping).
    ///
    /// # Errors
    ///
    /// [`ExperimentError::UnknownWorkload`] if the name matches nothing,
    /// [`ExperimentError::Sched`] if the `[sched]` section is
    /// inconsistent (e.g. `workers` set for a sequential mode).
    pub fn from_config(cfg: &SimConfig) -> Result<Experiment, ExperimentError> {
        let sched = cfg.sched.resolve().map_err(ExperimentError::Sched)?;
        let base = if cfg.workload == "contended" {
            Experiment::contended(ContendedParams {
                threads: cfg.threads,
                ops_per_thread: 200 * cfg.scale,
                conflict_p: cfg.conflict,
                hot_blocks: 4,
                fence_period: 8,
                seed: cfg.seed,
            })
        } else {
            let kind = WorkloadKind::all()
                .into_iter()
                .find(|k| k.name() == cfg.workload)
                .ok_or_else(|| ExperimentError::UnknownWorkload(cfg.workload.clone()))?;
            Experiment::new(kind).params(cfg.params())
        };
        Ok(base
            .machine(cfg.machine.clone())
            .model(cfg.model)
            .spec(cfg.spec)
            .protocol(cfg.protocol)
            .atomics(cfg.atomics)
            .energy(cfg.energy)
            .sched(sched)
            .cycle_limit(cfg.cycle_limit))
    }

    /// Sets workload sizing (threads/scale/seed). Thread count must match
    /// the machine's core count at [`run`](Self::run) time; the runner
    /// resizes the machine automatically.
    pub fn params(mut self, params: WorkloadParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the machine description (core count is overridden to match the
    /// workload's thread count).
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// Sets the consistency model.
    pub fn model(mut self, model: ConsistencyModel) -> Self {
        self.model = model;
        self
    }

    /// Sets the speculation configuration.
    pub fn spec(mut self, spec: SpecConfig) -> Self {
        self.spec = spec;
        self
    }

    /// Sets coherence protocol options (MSI/MESI).
    pub fn protocol(mut self, protocol: ProtocolConfig) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the atomic RMW / fence cost model (validated at run time).
    pub fn atomics(mut self, atomics: AtomicsConfig) -> Self {
        self.atomics = atomics;
        self
    }

    /// Sets the energy constants.
    pub fn energy(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Sets the cycle limit (runs are cut off, not failed, at the limit).
    pub fn cycle_limit(mut self, limit: u64) -> Self {
        self.cycle_limit = limit;
        self
    }

    /// Selects the run-loop scheduling strategy (component-granular wake
    /// scheduling by default; `[sched]` in [`SimConfig`] feeds this).
    /// Every [`SchedMode`] produces byte-identical results — including
    /// [`SchedMode::ParallelEpoch`] at any worker count — so it cannot
    /// change what a run measures, only how fast the host simulates it.
    /// The record's [`RunRecord::fingerprint`] strips the mode label for
    /// cross-scheduler equivalence checks.
    pub fn sched(mut self, sched: SchedMode) -> Self {
        self.sched = sched;
        self
    }

    /// Runs the experiment.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::InvalidMachine`] if the machine description is
    /// invalid once its core count is overridden by the thread count (e.g.
    /// zero threads), [`ExperimentError::Config`] for other bad sizings.
    pub fn run(&self) -> Result<RunRecord, ExperimentError> {
        self.run_with_tracer(Tracer::disabled())
    }

    /// Runs the experiment with event tracing enabled, returning the run
    /// record together with the recorded events (oldest first, bounded by
    /// `capacity` — the newest events win when the ring overflows).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::run`].
    pub fn run_traced(
        &self,
        capacity: usize,
    ) -> Result<(RunRecord, Vec<TraceEvent>), ExperimentError> {
        let tracer = Tracer::enabled(capacity);
        let record = self.run_with_tracer(tracer.clone())?;
        Ok((record, tracer.drain()))
    }

    fn run_with_tracer(&self, tracer: Tracer) -> Result<RunRecord, ExperimentError> {
        self.atomics.validate().map_err(ExperimentError::Atomics)?;
        let threads = match &self.input {
            Input::Kind(_) => self.params.threads,
            Input::Contended(p) => p.threads,
        };
        let mut machine_cfg = self.machine.clone();
        machine_cfg.cores = threads;
        machine_cfg
            .validate()
            .map_err(ExperimentError::InvalidMachine)?;
        let programs = match &self.input {
            Input::Kind(kind) => {
                let mut p = self.params;
                p.threads = threads;
                kind.build(&p)
            }
            Input::Contended(p) => contended_programs(p),
        };
        if programs.len() != threads {
            return Err(ExperimentError::Config(format!(
                "workload built {} programs for {} threads",
                programs.len(),
                threads
            )));
        }
        let ms = MachineSpec {
            machine: machine_cfg,
            model: self.model,
            spec: self.spec,
            protocol: self.protocol,
            atomics: self.atomics,
        };
        let mut machine = Machine::new(&ms, programs);
        machine.set_sched(self.sched);
        machine.set_tracer(tracer);
        let summary = machine.run(self.cycle_limit);
        let stats = machine.merged_stats();
        let breakdown = WasteBreakdown::from_stats(&stats);
        let energy = EnergyReport::from_stats(
            &self.energy,
            &stats,
            summary.cycles,
            threads,
            summary.retired_ops,
        );
        Ok(RunRecord {
            label: match &self.input {
                Input::Kind(k) => k.name().to_string(),
                Input::Contended(p) => format!("contended(p={})", p.conflict_p),
            },
            model: self.model,
            spec: self.spec,
            atomics: self.atomics,
            sched: self.sched.label(),
            summary,
            stats,
            breakdown,
            energy,
            sb_occupancy: machine.sb_occupancy(),
            spec_depth: machine.spec_depth(),
        })
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Workload label.
    pub label: String,
    /// Consistency model used.
    pub model: ConsistencyModel,
    /// Speculation configuration used.
    pub spec: SpecConfig,
    /// Atomics cost model used.
    pub atomics: AtomicsConfig,
    /// Run-loop scheduler label ([`SchedMode::label`]). Provenance only:
    /// excluded from [`fingerprint`](Self::fingerprint), because every
    /// scheduler produces identical results.
    pub sched: &'static str,
    /// Timing summary.
    pub summary: RunSummary,
    /// Merged raw statistics.
    pub stats: StatSet,
    /// The ten-ways cycle breakdown.
    pub breakdown: WasteBreakdown,
    /// The energy report.
    pub energy: EnergyReport,
    /// Store-buffer occupancy distribution.
    pub sb_occupancy: Histogram,
    /// Speculation epoch depth distribution.
    pub spec_depth: Histogram,
}

impl ToJson for RunRecord {
    /// The versioned results-schema layout (`schema_version` is
    /// [`RUN_RECORD_SCHEMA_VERSION`]).
    fn to_json(&self) -> Json {
        Json::obj(self.fields(true))
    }
}

impl RunRecord {
    fn fields(&self, with_sched: bool) -> Vec<(&'static str, Json)> {
        let mut pairs = vec![
            ("schema_version", Json::U64(RUN_RECORD_SCHEMA_VERSION)),
            ("label", Json::from(self.label.clone())),
            ("model", self.model.to_json()),
            ("spec", self.spec.to_json()),
            ("atomics", self.atomics.to_json()),
        ];
        if with_sched {
            pairs.push(("sched", Json::from(self.sched.to_string())));
        }
        pairs.extend([
            ("summary", self.summary.to_json()),
            ("breakdown", self.breakdown.to_json()),
            ("energy", self.energy.to_json()),
            ("sb_occupancy", self.sb_occupancy.to_json()),
            ("spec_depth", self.spec_depth.to_json()),
            ("stats", self.stats.to_json()),
        ]);
        pairs
    }

    /// The serialized record minus scheduler provenance: two runs of the
    /// same experiment must produce *equal fingerprints* under any
    /// [`SchedMode`] and worker count. The equivalence suite and the CI
    /// gate compare these, so a scheduler change that perturbs results
    /// (rather than just its own label) still fails byte comparison.
    pub fn fingerprint(&self) -> String {
        Json::obj(self.fields(false)).to_string()
    }

    /// Runtime normalized to `baseline` (1.0 = same speed; >1 = slower).
    pub fn runtime_vs(&self, baseline: &RunRecord) -> f64 {
        if baseline.summary.cycles == 0 {
            return 0.0;
        }
        self.summary.cycles as f64 / baseline.summary.cycles as f64
    }

    /// Speedup over `baseline` (>1 = faster).
    pub fn speedup_vs(&self, baseline: &RunRecord) -> f64 {
        if self.summary.cycles == 0 {
            return 0.0;
        }
        baseline.summary.cycles as f64 / self.summary.cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_runs_and_reports() {
        let r = Experiment::new(WorkloadKind::LuLike)
            .params(WorkloadParams {
                threads: 2,
                scale: 2,
                seed: 3,
            })
            .run()
            .unwrap();
        assert!(r.summary.finished);
        assert!(r.breakdown.total() > 0);
        assert!(r.energy.total_nj() > 0.0);
        assert_eq!(r.label, "lu");
    }

    #[test]
    fn contended_experiment_runs() {
        let r = Experiment::contended(ContendedParams {
            threads: 2,
            ops_per_thread: 100,
            ..ContendedParams::default()
        })
        .run()
        .unwrap();
        assert!(r.summary.finished);
        assert!(r.label.starts_with("contended"));
    }

    #[test]
    fn speedup_math() {
        let fast = Experiment::new(WorkloadKind::LuLike)
            .params(WorkloadParams {
                threads: 2,
                scale: 2,
                seed: 3,
            })
            .model(ConsistencyModel::Rmo)
            .run()
            .unwrap();
        let slow = Experiment::new(WorkloadKind::LuLike)
            .params(WorkloadParams {
                threads: 2,
                scale: 2,
                seed: 3,
            })
            .model(ConsistencyModel::Sc)
            .run()
            .unwrap();
        assert!(slow.runtime_vs(&fast) >= 1.0);
        assert!(fast.speedup_vs(&slow) >= 1.0);
    }

    #[test]
    fn machine_cores_follow_thread_count() {
        let r = Experiment::new(WorkloadKind::DssLike)
            .params(WorkloadParams {
                threads: 3,
                scale: 1,
                seed: 0,
            })
            .run()
            .unwrap();
        assert_eq!(r.summary.core_done_at.len(), 3);
    }

    #[test]
    fn zero_threads_is_a_typed_error() {
        let err = Experiment::new(WorkloadKind::LuLike)
            .params(WorkloadParams {
                threads: 0,
                scale: 1,
                seed: 0,
            })
            .run()
            .unwrap_err();
        assert!(matches!(err, ExperimentError::InvalidMachine(_)), "{err:?}");
    }

    #[test]
    fn from_config_rejects_unknown_workload() {
        let cfg = SimConfig {
            workload: "quake".to_string(),
            ..SimConfig::default()
        };
        assert_eq!(
            Experiment::from_config(&cfg).unwrap_err(),
            ExperimentError::UnknownWorkload("quake".to_string())
        );
    }

    #[test]
    fn from_config_matches_builder_run() {
        let cfg = SimConfig {
            workload: "lu".to_string(),
            threads: 2,
            scale: 2,
            seed: 3,
            ..SimConfig::default()
        };
        let via_config = Experiment::from_config(&cfg).unwrap().run().unwrap();
        let via_builder = Experiment::new(WorkloadKind::LuLike)
            .params(WorkloadParams {
                threads: 2,
                scale: 2,
                seed: 3,
            })
            .run()
            .unwrap();
        assert_eq!(via_config.summary, via_builder.summary);
        assert_eq!(
            via_config.to_json().to_string(),
            via_builder.to_json().to_string()
        );
    }

    #[test]
    fn atomics_cost_model_slows_sync_heavy_runs() {
        // CLH: a full publication fence plus a tail swap per acquire, so
        // both the fence and the RMW price must be visible.
        let base = Experiment::new(WorkloadKind::ClhLock).params(WorkloadParams {
            threads: 2,
            scale: 2,
            seed: 3,
        });
        let free = base.clone().run().unwrap();
        let priced = base
            .clone()
            .atomics(AtomicsConfig::schweizer())
            .run()
            .unwrap();
        assert!(free.summary.finished && priced.summary.finished);
        // Contended handoff order can shift either way, so the strict
        // slowdown claim is made uncontended, where every priced cycle
        // adds directly to the critical path.
        let solo = base.clone().params(WorkloadParams {
            threads: 1,
            scale: 2,
            seed: 3,
        });
        let solo_free = solo.clone().run().unwrap();
        let solo_priced = solo.atomics(AtomicsConfig::schweizer()).run().unwrap();
        assert!(
            solo_priced.summary.cycles > solo_free.summary.cycles,
            "charging atomics must lengthen an uncontended lock run ({} vs {})",
            solo_priced.summary.cycles,
            solo_free.summary.cycles
        );
        // The fence execution latency lands in the fence-stall category
        // (asserted uncontended: under contention the handoff reshuffle
        // can trade ordering-stall cycles against execution cycles).
        assert!(
            solo_priced
                .breakdown
                .get(crate::taxonomy::WasteCategory::FenceStall)
                > solo_free
                    .breakdown
                    .get(crate::taxonomy::WasteCategory::FenceStall),
            "priced fences must show up as fence waste"
        );
        for r in [&free, &solo_free] {
            assert_eq!(r.stats.get("cyc.stall.fence_exec"), 0);
        }
        for r in [&priced, &solo_priced] {
            assert!(r.stats.get("cyc.stall.fence_exec") > 0);
        }
        // Provenance: the record carries the cost model, and it changes
        // the fingerprint.
        assert_eq!(
            priced.to_json().get("atomics").and_then(|a| a
                .get("rmw_cross_socket")
                .and_then(tenways_sim::json::Json::as_u64)),
            Some(90)
        );
        assert_ne!(free.fingerprint(), priced.fingerprint());
    }

    #[test]
    fn invalid_atomics_is_a_typed_error() {
        let err = Experiment::new(WorkloadKind::OltpLike)
            .params(WorkloadParams {
                threads: 2,
                scale: 1,
                seed: 0,
            })
            .atomics(AtomicsConfig {
                rmw_l1: 80,
                rmw_same_socket: 40,
                ..AtomicsConfig::off()
            })
            .run()
            .unwrap_err();
        assert!(matches!(err, ExperimentError::Atomics(_)), "{err:?}");
    }

    #[test]
    fn run_record_json_round_trips_and_is_versioned() {
        let r = Experiment::new(WorkloadKind::RadixLike)
            .params(WorkloadParams {
                threads: 2,
                scale: 2,
                seed: 1,
            })
            .run()
            .unwrap();
        let doc = r.to_json();
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_u64),
            Some(RUN_RECORD_SCHEMA_VERSION)
        );
        // Value-level round trip: parse(render(doc)) == doc. (RunRecord
        // holds `&'static str` stat keys, so the typed direction is not
        // reconstructible — the JSON tree is the canonical serialized form.)
        let reparsed = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(reparsed, doc);
        assert_eq!(
            doc.get("summary")
                .and_then(|s| s.get("cycles"))
                .and_then(Json::as_u64),
            Some(r.summary.cycles)
        );
    }

    #[test]
    fn identical_configs_produce_identical_json() {
        let cfg = SimConfig {
            workload: "ocean".to_string(),
            threads: 2,
            scale: 2,
            ..SimConfig::default()
        };
        let a = Experiment::from_config(&cfg).unwrap().run().unwrap();
        let b = Experiment::from_config(&cfg).unwrap().run().unwrap();
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }

    #[test]
    fn traced_run_yields_events_and_same_record() {
        let exp = Experiment::new(WorkloadKind::OltpLike)
            .params(WorkloadParams {
                threads: 2,
                scale: 2,
                seed: 1,
            })
            .model(ConsistencyModel::Sc);
        let (traced, events) = exp.run_traced(1 << 16).unwrap();
        let untraced = exp.run().unwrap();
        assert_eq!(
            traced.summary, untraced.summary,
            "tracing must not perturb timing"
        );
        assert_eq!(
            traced.to_json().to_string(),
            untraced.to_json().to_string(),
            "tracing must not perturb the record"
        );
        assert!(
            !events.is_empty(),
            "an SC oltp run must produce stall events"
        );
        assert!(
            events
                .windows(2)
                .all(|w| w[0].cycle <= w[1].cycle + w[1].dur + 1_000_000),
            "events are roughly time-ordered"
        );
    }
}
