//! End-to-end protocol tests driven through the sandbox.

use tenways_coherence::{
    sandbox::ProtocolSandbox, AccessKind, FillClass, L1State, ProtocolConfig, SpecMark,
    ViolationCause,
};
use tenways_sim::{Addr, CoreId, MachineConfig};

fn machine(cores: usize) -> MachineConfig {
    MachineConfig::builder().cores(cores).build().unwrap()
}

fn msi_sandbox(cores: usize) -> ProtocolSandbox {
    ProtocolSandbox::with_protocol(
        &machine(cores),
        ProtocolConfig {
            grant_exclusive: false,
            ..ProtocolConfig::default()
        },
    )
}

fn mesi_sandbox(cores: usize) -> ProtocolSandbox {
    ProtocolSandbox::new(&machine(cores))
}

const A: Addr = Addr(0x1000);
const B: Addr = Addr(0x2000);

#[test]
fn cold_read_fills_shared_or_exclusive() {
    let mut sb = msi_sandbox(2);
    let c = sb.access_and_wait(CoreId(0), AccessKind::Read, A);
    assert_eq!(c.class, FillClass::DramCold);
    assert_eq!(
        sb.l1(CoreId(0)).state_of(sb.block(A)),
        Some(L1State::Shared)
    );

    let mut sb = mesi_sandbox(2);
    sb.access_and_wait(CoreId(0), AccessKind::Read, A);
    assert_eq!(
        sb.l1(CoreId(0)).state_of(sb.block(A)),
        Some(L1State::Exclusive)
    );
}

#[test]
fn second_reader_joins_sharers() {
    let mut sb = msi_sandbox(2);
    sb.access_and_wait(CoreId(0), AccessKind::Read, A);
    let c = sb.access_and_wait(CoreId(1), AccessKind::Read, A);
    // Second read is a capacity-free L2 hit.
    assert_eq!(c.class, FillClass::L2Hit);
    sb.settle(1000);
    let sharers = sb.home_of(sb.block(A)).sharers_of(sb.block(A));
    assert_eq!(sharers.len(), 2);
    sb.assert_coherent(sb.block(A));
}

#[test]
fn mesi_second_reader_downgrades_exclusive_owner() {
    let mut sb = mesi_sandbox(2);
    sb.access_and_wait(CoreId(0), AccessKind::Read, A);
    assert_eq!(
        sb.l1(CoreId(0)).state_of(sb.block(A)),
        Some(L1State::Exclusive)
    );
    let c = sb.access_and_wait(CoreId(1), AccessKind::Read, A);
    assert_eq!(c.class, FillClass::Coherence, "data pried from E owner");
    sb.settle(1000);
    assert_eq!(
        sb.l1(CoreId(0)).state_of(sb.block(A)),
        Some(L1State::Shared)
    );
    assert_eq!(
        sb.l1(CoreId(1)).state_of(sb.block(A)),
        Some(L1State::Shared)
    );
    sb.assert_coherent(sb.block(A));
}

#[test]
fn write_invalidates_sharers() {
    let mut sb = msi_sandbox(4);
    for c in 0..4u16 {
        sb.access_and_wait(CoreId(c), AccessKind::Read, A);
    }
    let c = sb.access_and_wait(CoreId(0), AccessKind::Write, A);
    assert_eq!(c.class, FillClass::Coherence);
    sb.settle(1000);
    assert!(sb.l1(CoreId(0)).holds_modified(sb.block(A)));
    for c in 1..4u16 {
        assert!(
            !sb.l1(CoreId(c)).holds(sb.block(A)),
            "core{c} not invalidated"
        );
    }
    sb.assert_coherent(sb.block(A));
}

#[test]
fn write_recalls_modified_owner() {
    let mut sb = msi_sandbox(2);
    sb.access_and_wait(CoreId(0), AccessKind::Write, A);
    assert!(sb.l1(CoreId(0)).holds_modified(sb.block(A)));
    let c = sb.access_and_wait(CoreId(1), AccessKind::Write, A);
    assert_eq!(c.class, FillClass::Coherence);
    sb.settle(1000);
    assert!(sb.l1(CoreId(1)).holds_modified(sb.block(A)));
    assert!(!sb.l1(CoreId(0)).holds(sb.block(A)));
    sb.assert_coherent(sb.block(A));
}

#[test]
fn read_downgrades_modified_owner_and_preserves_data_path() {
    let mut sb = msi_sandbox(2);
    sb.access_and_wait(CoreId(0), AccessKind::Write, A);
    let c = sb.access_and_wait(CoreId(1), AccessKind::Read, A);
    assert_eq!(c.class, FillClass::Coherence);
    sb.settle(1000);
    assert_eq!(
        sb.l1(CoreId(0)).state_of(sb.block(A)),
        Some(L1State::Shared)
    );
    assert_eq!(
        sb.l1(CoreId(1)).state_of(sb.block(A)),
        Some(L1State::Shared)
    );
    // Writeback must have landed at the directory.
    assert!(sb.home_of(sb.block(A)).stats().get("dir.writebacks") >= 1);
    sb.assert_coherent(sb.block(A));
}

#[test]
fn upgrade_from_shared_requires_no_data() {
    let mut sb = msi_sandbox(2);
    sb.access_and_wait(CoreId(0), AccessKind::Read, A);
    sb.access_and_wait(CoreId(1), AccessKind::Read, A);
    let c = sb.access_and_wait(CoreId(0), AccessKind::Write, A);
    assert_eq!(c.class, FillClass::Coherence, "had to invalidate core 1");
    sb.settle(1000);
    assert!(sb.l1(CoreId(0)).holds_modified(sb.block(A)));
    assert!(!sb.l1(CoreId(1)).holds(sb.block(A)));
    sb.assert_coherent(sb.block(A));
}

#[test]
fn sole_sharer_upgrade_is_local_to_directory() {
    let mut sb = msi_sandbox(2);
    sb.access_and_wait(CoreId(0), AccessKind::Read, A);
    let c = sb.access_and_wait(CoreId(0), AccessKind::Write, A);
    // No other sharer: no coherence traffic beyond the GetM round trip.
    assert_eq!(c.class, FillClass::L2Hit);
    sb.settle(1000);
    assert!(sb.l1(CoreId(0)).holds_modified(sb.block(A)));
}

#[test]
fn mesi_store_to_exclusive_is_silent() {
    let mut sb = mesi_sandbox(2);
    sb.access_and_wait(CoreId(0), AccessKind::Read, A);
    let before = sb.fabric().stats().get("noc.sent");
    let c = sb.access_and_wait(CoreId(0), AccessKind::Write, A);
    assert_eq!(c.class, FillClass::L1Hit, "E→M upgrade is a hit");
    assert_eq!(
        sb.fabric().stats().get("noc.sent"),
        before,
        "no messages for E→M"
    );
    assert!(sb.l1(CoreId(0)).holds_modified(sb.block(A)));
}

#[test]
fn write_after_write_same_core_hits() {
    let mut sb = msi_sandbox(2);
    sb.access_and_wait(CoreId(0), AccessKind::Write, A);
    let c = sb.access_and_wait(CoreId(0), AccessKind::Write, A);
    assert_eq!(c.class, FillClass::L1Hit);
}

#[test]
fn capacity_eviction_writes_back_dirty_data() {
    // Tiny L1: 2 sets x 1 way. Blocks 0 and 2 (same set) conflict.
    let cfg = MachineConfig::builder().cores(1).l1(2, 1).build().unwrap();
    let mut sb = ProtocolSandbox::with_protocol(
        &cfg,
        ProtocolConfig {
            grant_exclusive: false,
            ..ProtocolConfig::default()
        },
    );
    let a = Addr(0); // block 0, set 0
    let b = Addr(128); // block 2, set 0
    sb.access_and_wait(CoreId(0), AccessKind::Write, a);
    sb.access_and_wait(CoreId(0), AccessKind::Read, b); // evicts dirty a
    sb.settle(2000);
    assert!(!sb.l1(CoreId(0)).holds(sb.block(a)));
    assert!(sb.l1(CoreId(0)).holds(sb.block(b)));
    assert!(sb.home_of(sb.block(a)).stats().get("dir.writebacks") >= 1);
    // Re-reading A comes back from L2, not DRAM (writeback landed there).
    let c = sb.access_and_wait(CoreId(0), AccessKind::Read, a);
    assert_eq!(c.class, FillClass::L2Hit);
}

#[test]
fn refetch_after_eviction_is_capacity_classified_when_l2_also_lost_it() {
    // Force an L2 conflict too? L2 is large; instead verify the cold/refill
    // distinction: first touch is cold, refetch is not cold.
    let cfg = MachineConfig::builder().cores(1).l1(2, 1).build().unwrap();
    let mut sb = ProtocolSandbox::new(&cfg);
    let a = Addr(0);
    let c1 = sb.access_and_wait(CoreId(0), AccessKind::Read, a);
    assert_eq!(c1.class, FillClass::DramCold);
    sb.access_and_wait(CoreId(0), AccessKind::Read, Addr(128));
    sb.settle(2000);
    let c2 = sb.access_and_wait(CoreId(0), AccessKind::Read, a);
    assert_ne!(c2.class, FillClass::DramCold, "second touch is never cold");
}

#[test]
fn distinct_blocks_are_independent() {
    let mut sb = msi_sandbox(2);
    sb.access_and_wait(CoreId(0), AccessKind::Write, A);
    sb.access_and_wait(CoreId(1), AccessKind::Write, B);
    sb.settle(1000);
    assert!(sb.l1(CoreId(0)).holds_modified(sb.block(A)));
    assert!(sb.l1(CoreId(1)).holds_modified(sb.block(B)));
    sb.assert_coherent(sb.block(A));
    sb.assert_coherent(sb.block(B));
}

#[test]
fn concurrent_writers_serialize() {
    let mut sb = msi_sandbox(4);
    // All four cores write the same block "simultaneously".
    let reqs: Vec<_> = (0..4u16)
        .map(|c| sb.access(CoreId(c), AccessKind::Write, A))
        .collect();
    for r in reqs {
        sb.run_until_complete(r, 20_000);
    }
    sb.settle(2000);
    // Exactly one owner at the end.
    let owners: Vec<_> = (0..4u16)
        .filter(|&c| sb.l1(CoreId(c)).holds_modified(sb.block(A)))
        .collect();
    assert_eq!(owners.len(), 1, "owners: {owners:?}");
    sb.assert_coherent(sb.block(A));
}

#[test]
fn reader_writer_storm_stays_coherent() {
    let mut sb = mesi_sandbox(4);
    let mut reqs = Vec::new();
    for round in 0..6 {
        for c in 0..4u16 {
            let kind = if (round + c as usize).is_multiple_of(3) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            reqs.push(sb.access(CoreId(c), kind, A));
        }
        for r in reqs.drain(..) {
            sb.run_until_complete(r, 30_000);
        }
    }
    sb.settle(3000);
    sb.assert_coherent(sb.block(A));
}

#[test]
fn false_sharing_same_block_conflicts() {
    let mut sb = msi_sandbox(2);
    // Two different byte addresses in the same 64B block.
    let a0 = Addr(0x3000);
    let a1 = Addr(0x3020);
    assert_eq!(sb.block(a0), sb.block(a1));
    sb.access_and_wait(CoreId(0), AccessKind::Write, a0);
    sb.access_and_wait(CoreId(1), AccessKind::Write, a1);
    sb.settle(1000);
    assert!(
        !sb.l1(CoreId(0)).holds(sb.block(a0)),
        "false sharing invalidated core 0"
    );
}

// ---------------- speculation hook tests ----------------

#[test]
fn spec_read_mark_violated_by_remote_write() {
    let mut sb = msi_sandbox(2);
    sb.access_and_wait(CoreId(0), AccessKind::Read, A);
    assert!(sb.mark_spec(CoreId(0), SpecMark::Read, A));
    sb.access_and_wait(CoreId(1), AccessKind::Write, A);
    sb.settle(1000);
    let v = sb.take_violations();
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].0, CoreId(0));
    assert_eq!(v[0].1.cause, ViolationCause::RemoteInvalidation);
}

#[test]
fn spec_read_mark_not_violated_by_remote_read() {
    let mut sb = msi_sandbox(2);
    sb.access_and_wait(CoreId(0), AccessKind::Read, A);
    assert!(sb.mark_spec(CoreId(0), SpecMark::Read, A));
    sb.access_and_wait(CoreId(1), AccessKind::Read, A);
    sb.settle(1000);
    assert!(sb.take_violations().is_empty(), "read-read never conflicts");
}

#[test]
fn spec_write_mark_violated_by_remote_read() {
    let mut sb = msi_sandbox(2);
    sb.access_and_wait(CoreId(0), AccessKind::Write, A);
    assert!(sb.mark_spec(CoreId(0), SpecMark::Write, A));
    sb.access_and_wait(CoreId(1), AccessKind::Read, A);
    sb.settle(1000);
    let v = sb.take_violations();
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].1.cause, ViolationCause::RemoteDowngrade);
}

#[test]
fn spec_write_on_dirty_line_flushes_clean_copy() {
    let mut sb = msi_sandbox(1);
    sb.access_and_wait(CoreId(0), AccessKind::Write, A); // dirty
    assert!(sb.mark_spec(CoreId(0), SpecMark::Write, A));
    sb.settle(1000);
    assert!(sb.home_of(sb.block(A)).stats().get("dir.clean_writebacks") >= 1);
}

#[test]
fn commit_clears_marks() {
    let mut sb = msi_sandbox(2);
    sb.access_and_wait(CoreId(0), AccessKind::Read, A);
    sb.mark_spec(CoreId(0), SpecMark::Read, A);
    assert!(sb.l1(CoreId(0)).is_spec_marked(sb.block(A)));
    sb.l1_mut(CoreId(0)).commit_spec();
    assert!(!sb.l1(CoreId(0)).is_spec_marked(sb.block(A)));
    // After commit, remote writes no longer violate.
    sb.access_and_wait(CoreId(1), AccessKind::Write, A);
    sb.settle(1000);
    assert!(sb.take_violations().is_empty());
}

#[test]
fn rollback_drops_spec_written_lines() {
    let cfg = machine(2);
    let mut sb = ProtocolSandbox::with_protocol(
        &cfg,
        ProtocolConfig {
            grant_exclusive: false,
            ..ProtocolConfig::default()
        },
    );
    sb.access_and_wait(CoreId(0), AccessKind::Write, A);
    sb.mark_spec(CoreId(0), SpecMark::Write, A);
    // Roll back: the line must be gone and ownership surrendered.
    {
        // Access to internals through the sandbox.
        let block = sb.block(A);
        let _ = block;
    }
    sb_rollback(&mut sb, CoreId(0));
    sb.settle(2000);
    assert!(!sb.l1(CoreId(0)).holds(sb.block(A)));
    assert!(sb.home_of(sb.block(A)).sharers_of(sb.block(A)).is_empty());
    // Another core can then take the block cleanly.
    sb.access_and_wait(CoreId(1), AccessKind::Write, A);
    sb.settle(2000);
    sb.assert_coherent(sb.block(A));
}

/// Helper: rollback through the public L1 API (the sandbox has no direct
/// rollback wrapper; exercise the controller like the spec engine would).
fn sb_rollback(sb: &mut ProtocolSandbox, core: CoreId) {
    // The controller needs the fabric; route through a tiny shim in the
    // sandbox: marking API exists, rollback goes through l1_mut + step.
    sb.rollback_spec(core);
}

#[test]
fn spec_eviction_raises_violation() {
    let cfg = MachineConfig::builder().cores(1).l1(2, 1).build().unwrap();
    let mut sb = ProtocolSandbox::new(&cfg);
    let a = Addr(0);
    let b = Addr(128); // same set
    sb.access_and_wait(CoreId(0), AccessKind::Read, a);
    sb.mark_spec(CoreId(0), SpecMark::Read, a);
    sb.access_and_wait(CoreId(0), AccessKind::Read, b); // evicts a
    sb.settle(2000);
    let v = sb.take_violations();
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].1.cause, ViolationCause::Eviction);
}

#[test]
fn mark_spec_on_absent_block_fails() {
    let mut sb = msi_sandbox(1);
    assert!(!sb.mark_spec(CoreId(0), SpecMark::Read, A));
}

#[test]
fn deterministic_replay() {
    let run = || {
        let mut sb = mesi_sandbox(4);
        let mut log = Vec::new();
        for i in 0..8u64 {
            let core = CoreId((i % 4) as u16);
            let kind = if i % 2 == 0 {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            let addr = Addr(0x1000 + (i % 3) * 64);
            let c = sb.access_and_wait(core, kind, addr);
            log.push((c.at.as_u64(), c.class));
        }
        sb.settle(2000);
        log
    };
    assert_eq!(run(), run());
}

#[test]
fn many_blocks_many_cores_fuzz_stays_coherent() {
    let mut sb = mesi_sandbox(4);
    // Deterministic pseudo-random access pattern.
    let mut x: u64 = 0x12345;
    let mut step = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for _ in 0..200 {
        let r = step();
        let core = CoreId((r % 4) as u16);
        let addr = Addr(0x4000 + (r >> 3) % 16 * 64);
        let kind = if r & 4 == 0 {
            AccessKind::Read
        } else {
            AccessKind::Write
        };
        let req = sb.access(core, kind, addr);
        sb.run_until_complete(req, 30_000);
    }
    sb.settle(5000);
    for blk in 0..16u64 {
        sb.assert_coherent(sb.block(Addr(0x4000 + blk * 64)));
    }
}

// ---------------- prefetcher tests ----------------

fn prefetch_sandbox(cores: usize) -> ProtocolSandbox {
    ProtocolSandbox::with_protocol(
        &machine(cores),
        ProtocolConfig {
            grant_exclusive: true,
            prefetch_next_line: true,
        },
    )
}

#[test]
fn next_line_prefetch_fills_the_neighbour() {
    let mut sb = prefetch_sandbox(1);
    let a = Addr(0x1000); // block X
    let next = Addr(0x1040); // block X+1
    sb.access_and_wait(CoreId(0), AccessKind::Read, a);
    sb.settle(5_000);
    assert!(
        sb.l1(CoreId(0)).holds(sb.block(next)),
        "next line must be prefetched"
    );
    // The prefetched line serves the demand as a hit.
    let c = sb.access_and_wait(CoreId(0), AccessKind::Read, next);
    assert_eq!(c.class, FillClass::L1Hit);
    assert!(sb.l1(CoreId(0)).stats().get("l1.prefetch_useful") >= 1);
}

#[test]
fn prefetch_disabled_does_not_fill_neighbours() {
    let cfg = machine(1);
    let mut sb = ProtocolSandbox::new(&cfg);
    sb.access_and_wait(CoreId(0), AccessKind::Read, Addr(0x1000));
    sb.settle(5_000);
    assert!(!sb.l1(CoreId(0)).holds(sb.block(Addr(0x1040))));
}

#[test]
fn prefetched_lines_stay_coherent() {
    let mut sb = prefetch_sandbox(2);
    let a = Addr(0x1000);
    let next = Addr(0x1040);
    sb.access_and_wait(CoreId(0), AccessKind::Read, a); // prefetches next
    sb.settle(5_000);
    // Core 1 writes the prefetched block: core 0's copy must be purged.
    sb.access_and_wait(CoreId(1), AccessKind::Write, next);
    sb.settle(5_000);
    assert!(!sb.l1(CoreId(0)).holds(sb.block(next)));
    sb.assert_coherent(sb.block(next));
    sb.assert_coherent(sb.block(a));
}

#[test]
fn prefetch_streams_ahead_on_sequential_scans() {
    let mut sb = prefetch_sandbox(1);
    let mut useful = 0;
    for i in 0..16u64 {
        let c = sb.access_and_wait(CoreId(0), AccessKind::Read, Addr(0x2000 + i * 64));
        if c.class == FillClass::L1Hit && i > 0 {
            useful += 1;
        }
        sb.settle(5_000);
    }
    assert!(
        useful >= 8,
        "sequential scan should mostly hit prefetched lines: {useful}"
    );
}
