//! Property-based fuzzing of the coherence protocol: arbitrary access
//! interleavings must terminate, settle, and leave every block coherent.

use proptest::prelude::*;
use tenways_coherence::{sandbox::ProtocolSandbox, AccessKind, ProtocolConfig, SpecMark};
use tenways_sim::{Addr, CoreId, MachineConfig};

#[derive(Debug, Clone, Copy)]
struct Access {
    core: u16,
    block: u64,
    write: bool,
    /// Step this many cycles before issuing (stretches interleavings).
    delay: u8,
}

fn arb_access(cores: u16, blocks: u64) -> impl Strategy<Value = Access> {
    (0..cores, 0..blocks, any::<bool>(), 0u8..12).prop_map(|(core, block, write, delay)| Access {
        core,
        block,
        write,
        delay,
    })
}

fn machine(cores: usize) -> MachineConfig {
    // Small L1s force evictions into the mix.
    MachineConfig::builder().cores(cores).l1(4, 2).build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every interleaving settles and satisfies single-writer /
    /// multiple-reader with a directory view that covers all cached copies.
    #[test]
    fn protocol_is_coherent_under_fuzz(
        accesses in proptest::collection::vec(arb_access(4, 12), 1..80),
        mesi in any::<bool>(),
    ) {
        let cfg = machine(4);
        let mut sb = ProtocolSandbox::with_protocol(
            &cfg,
            ProtocolConfig { grant_exclusive: mesi, ..ProtocolConfig::default() },
        );
        let mut pending = Vec::new();
        for a in &accesses {
            for _ in 0..a.delay {
                sb.step();
            }
            let kind = if a.write { AccessKind::Write } else { AccessKind::Read };
            pending.push(sb.access(CoreId(a.core), kind, Addr(0x1000 + a.block * 64)));
            // Bound outstanding requests per core below the MSHR count.
            if pending.len() >= 8 {
                for req in pending.drain(..) {
                    sb.run_until_complete(req, 50_000);
                }
            }
        }
        for req in pending {
            sb.run_until_complete(req, 50_000);
        }
        sb.settle(50_000);
        for b in 0..12u64 {
            sb.assert_coherent(sb.block(Addr(0x1000 + b * 64)));
        }
    }

    /// Speculation marks never break the protocol: random marks +
    /// commits/rollbacks interleaved with traffic still settle coherent.
    #[test]
    fn spec_marks_do_not_corrupt_protocol(
        accesses in proptest::collection::vec(arb_access(3, 6), 1..50),
        actions in proptest::collection::vec(0u8..4, 1..50),
    ) {
        let cfg = machine(3);
        let mut sb = ProtocolSandbox::new(&cfg);
        for (a, act) in accesses.iter().zip(&actions) {
            let kind = if a.write { AccessKind::Write } else { AccessKind::Read };
            let addr = Addr(0x1000 + a.block * 64);
            sb.access_and_wait(CoreId(a.core), kind, addr);
            match act {
                0 => {
                    let mark = if a.write { SpecMark::Write } else { SpecMark::Read };
                    let _ = sb.mark_spec(CoreId(a.core), mark, addr);
                }
                1 => sb.commit_spec(CoreId(a.core)),
                2 => {
                    sb.rollback_spec(CoreId(a.core));
                }
                _ => {}
            }
        }
        // Close out any open speculative state.
        for c in 0..3u16 {
            sb.rollback_spec(CoreId(c));
        }
        sb.settle(50_000);
        for b in 0..6u64 {
            sb.assert_coherent(sb.block(Addr(0x1000 + b * 64)));
        }
        let _ = sb.take_violations();
    }
}
