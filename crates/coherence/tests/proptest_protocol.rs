//! Randomized fuzzing of the coherence protocol: arbitrary access
//! interleavings must terminate, settle, and leave every block coherent.
//!
//! Interleavings are generated with the simulator's own deterministic RNG
//! ([`DetRng`]) so every CI run fuzzes the exact same case set — a failure
//! names the case index, which reproduces it directly.

use tenways_coherence::{sandbox::ProtocolSandbox, AccessKind, ProtocolConfig, SpecMark};
use tenways_sim::{Addr, CoreId, DetRng, MachineConfig};

#[derive(Debug, Clone, Copy)]
struct Access {
    core: u16,
    block: u64,
    write: bool,
    /// Step this many cycles before issuing (stretches interleavings).
    delay: u8,
}

fn gen_access(rng: &mut DetRng, cores: u16, blocks: u64) -> Access {
    Access {
        core: rng.below(cores as u64) as u16,
        block: rng.below(blocks),
        write: rng.chance(0.5),
        delay: rng.below(12) as u8,
    }
}

fn machine(cores: usize) -> MachineConfig {
    // Small L1s force evictions into the mix.
    MachineConfig::builder()
        .cores(cores)
        .l1(4, 2)
        .build()
        .unwrap()
}

const CASES: u64 = 48;

/// Every interleaving settles and satisfies single-writer /
/// multiple-reader with a directory view that covers all cached copies.
#[test]
fn protocol_is_coherent_under_fuzz() {
    for case in 0..CASES {
        let mut rng = DetRng::seed(0xC0FFEE).split("coherent").split_index(case);
        let n = rng.range(1, 80);
        let accesses: Vec<Access> = (0..n).map(|_| gen_access(&mut rng, 4, 12)).collect();
        let mesi = rng.chance(0.5);

        let cfg = machine(4);
        let mut sb = ProtocolSandbox::with_protocol(
            &cfg,
            ProtocolConfig {
                grant_exclusive: mesi,
                ..ProtocolConfig::default()
            },
        );
        let mut pending = Vec::new();
        for a in &accesses {
            for _ in 0..a.delay {
                sb.step();
            }
            let kind = if a.write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            pending.push(sb.access(CoreId(a.core), kind, Addr(0x1000 + a.block * 64)));
            // Bound outstanding requests per core below the MSHR count.
            if pending.len() >= 8 {
                for req in pending.drain(..) {
                    sb.run_until_complete(req, 50_000);
                }
            }
        }
        for req in pending {
            sb.run_until_complete(req, 50_000);
        }
        sb.settle(50_000);
        for b in 0..12u64 {
            sb.assert_coherent(sb.block(Addr(0x1000 + b * 64)));
        }
    }
}

/// Speculation marks never break the protocol: random marks +
/// commits/rollbacks interleaved with traffic still settle coherent.
#[test]
fn spec_marks_do_not_corrupt_protocol() {
    for case in 0..CASES {
        let mut rng = DetRng::seed(0xC0FFEE).split("spec_marks").split_index(case);
        let n = rng.range(1, 50);
        let accesses: Vec<Access> = (0..n).map(|_| gen_access(&mut rng, 3, 6)).collect();
        let actions: Vec<u8> = (0..n).map(|_| rng.below(4) as u8).collect();

        let cfg = machine(3);
        let mut sb = ProtocolSandbox::new(&cfg);
        for (a, act) in accesses.iter().zip(&actions) {
            let kind = if a.write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let addr = Addr(0x1000 + a.block * 64);
            sb.access_and_wait(CoreId(a.core), kind, addr);
            match act {
                0 => {
                    let mark = if a.write {
                        SpecMark::Write
                    } else {
                        SpecMark::Read
                    };
                    let _ = sb.mark_spec(CoreId(a.core), mark, addr);
                }
                1 => sb.commit_spec(CoreId(a.core)),
                2 => {
                    sb.rollback_spec(CoreId(a.core));
                }
                _ => {}
            }
        }
        // Close out any open speculative state.
        for c in 0..3u16 {
            sb.rollback_spec(CoreId(c));
        }
        sb.settle(50_000);
        for b in 0..6u64 {
            sb.assert_coherent(sb.block(Addr(0x1000 + b * 64)));
        }
        let _ = sb.take_violations();
    }
}
