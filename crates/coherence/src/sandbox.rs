//! A self-contained protocol test rig: [`ProtocolSandbox`].
//!
//! The sandbox wires `cores` L1 controllers, the directory banks and a
//! fabric together and lets tests (and curious users) drive individual
//! accesses synchronously, inspect cache/directory state, and check global
//! coherence invariants. The cpu crate builds the real simulator around the
//! same components; this rig exists so the protocol can be exercised and
//! verified in isolation.

use tenways_noc::Fabric;
use tenways_sim::{Addr, BlockAddr, BlockGeometry, Clock, CoreId, Cycle, MachineConfig};

use crate::l1::{AccessKind, Completion, L1Controller, ProtocolConfig, ReqId, SpecViolation};
use crate::msg::Msg;
use crate::DirectoryBank;

/// A miniature machine: L1s + directory + fabric, driven one access at a
/// time.
#[derive(Debug)]
pub struct ProtocolSandbox {
    clock: Clock,
    geometry: BlockGeometry,
    l1s: Vec<L1Controller>,
    dirs: Vec<DirectoryBank>,
    fabric: Fabric<Msg>,
    next_req: u64,
    completions: Vec<(CoreId, Completion)>,
    violations: Vec<(CoreId, SpecViolation)>,
}

impl ProtocolSandbox {
    /// Builds a sandbox for `cfg` with the default protocol options.
    pub fn new(cfg: &MachineConfig) -> Self {
        Self::with_protocol(cfg, ProtocolConfig::default())
    }

    /// Builds a sandbox with explicit protocol options (e.g. MSI vs MESI).
    pub fn with_protocol(cfg: &MachineConfig, protocol: ProtocolConfig) -> Self {
        ProtocolSandbox {
            clock: Clock::new(),
            geometry: cfg.block_geometry(),
            l1s: cfg
                .core_ids()
                .map(|c| L1Controller::new(c, cfg, protocol))
                .collect(),
            dirs: (0..cfg.dir_banks)
                .map(|b| DirectoryBank::with_protocol(b, cfg, protocol))
                .collect(),
            fabric: Fabric::for_machine(cfg),
            next_req: 0,
            completions: Vec::new(),
            violations: Vec::new(),
        }
    }

    /// The block containing `addr` under this machine's geometry.
    pub fn block(&self, addr: Addr) -> BlockAddr {
        self.geometry.block_of(addr)
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.clock.now()
    }

    /// Immutable view of a core's L1.
    pub fn l1(&self, core: CoreId) -> &L1Controller {
        &self.l1s[core.index()]
    }

    /// Mutable access to a core's L1 (for spec marking etc.).
    pub fn l1_mut(&mut self, core: CoreId) -> &mut L1Controller {
        &mut self.l1s[core.index()]
    }

    /// The home directory bank of a block.
    pub fn home_of(&self, block: BlockAddr) -> &DirectoryBank {
        &self.dirs[(block.as_u64() % self.dirs.len() as u64) as usize]
    }

    /// The fabric (for stats inspection).
    pub fn fabric(&self) -> &Fabric<Msg> {
        &self.fabric
    }

    /// Issues an access from `core` and returns its request token.
    ///
    /// # Panics
    ///
    /// Panics if the L1 rejects the request (MSHRs full) — sandbox drivers
    /// issue few enough requests that this indicates a test bug.
    pub fn access(&mut self, core: CoreId, kind: AccessKind, addr: Addr) -> ReqId {
        let req = ReqId(self.next_req);
        self.next_req += 1;
        let block = self.geometry.block_of(addr);
        let now = self.clock.now();
        self.l1s[core.index()]
            .request(now, req, kind, block, &mut self.fabric)
            .expect("sandbox request rejected (MSHRs full)");
        req
    }

    /// Marks a block speculatively at a core (must be resident).
    pub fn mark_spec(&mut self, core: CoreId, mark: crate::SpecMark, addr: Addr) -> bool {
        let block = self.geometry.block_of(addr);
        let now = self.clock.now();
        self.l1s[core.index()].mark_spec(now, mark, block, &mut self.fabric)
    }

    /// Commits a core's speculative epoch (clears all marks).
    pub fn commit_spec(&mut self, core: CoreId) {
        self.l1s[core.index()].commit_spec();
    }

    /// Rolls back a core's speculative epoch; returns dropped line count.
    pub fn rollback_spec(&mut self, core: CoreId) -> usize {
        let now = self.clock.now();
        self.l1s[core.index()].rollback_spec(now, &mut self.fabric)
    }

    /// Advances the machine one cycle.
    pub fn step(&mut self) {
        let now = self.clock.advance();
        self.fabric.tick(now);
        for dir in &mut self.dirs {
            dir.tick(now, &mut self.fabric);
        }
        for l1 in &mut self.l1s {
            l1.tick(now, &mut self.fabric);
        }
        for l1 in &mut self.l1s {
            let core = l1.core();
            for c in l1.take_completions() {
                self.completions.push((core, c));
            }
            for v in l1.take_violations() {
                self.violations.push((core, v));
            }
        }
    }

    /// Steps until a specific request completes (or panics after `limit`
    /// cycles — a stuck protocol).
    pub fn run_until_complete(&mut self, req: ReqId, limit: u64) -> Completion {
        for _ in 0..limit {
            if let Some(pos) = self.completions.iter().position(|(_, c)| c.req == req) {
                return self.completions.remove(pos).1;
            }
            self.step();
        }
        if let Some(pos) = self.completions.iter().position(|(_, c)| c.req == req) {
            return self.completions.remove(pos).1;
        }
        panic!("request {req:?} did not complete within {limit} cycles");
    }

    /// Convenience: issue an access and run it to completion.
    pub fn access_and_wait(&mut self, core: CoreId, kind: AccessKind, addr: Addr) -> Completion {
        let req = self.access(core, kind, addr);
        self.run_until_complete(req, 10_000)
    }

    /// Steps until every component is quiescent (no in-flight work).
    ///
    /// # Panics
    ///
    /// Panics if the machine does not settle within `limit` cycles.
    pub fn settle(&mut self, limit: u64) {
        for _ in 0..limit {
            if self.is_quiescent() {
                return;
            }
            self.step();
        }
        assert!(
            self.is_quiescent(),
            "machine did not settle within {limit} cycles"
        );
    }

    /// Whether all L1s, banks and the fabric are idle.
    pub fn is_quiescent(&self) -> bool {
        self.fabric.is_quiescent()
            && self.l1s.iter().all(L1Controller::is_quiescent)
            && self.dirs.iter().all(DirectoryBank::is_quiescent)
    }

    /// Drains recorded violations.
    pub fn take_violations(&mut self) -> Vec<(CoreId, SpecViolation)> {
        std::mem::take(&mut self.violations)
    }

    /// Checks the single-writer / multiple-reader coherence invariant for
    /// `block` across all caches, and that the directory's view matches.
    ///
    /// Only meaningful when the machine [is quiescent](Self::is_quiescent).
    ///
    /// # Panics
    ///
    /// Panics with a description of the violation, if any.
    pub fn assert_coherent(&self, block: BlockAddr) {
        let mut owners = Vec::new();
        let mut sharers = Vec::new();
        for l1 in &self.l1s {
            match l1.state_of(block) {
                Some(crate::L1State::Modified) | Some(crate::L1State::Exclusive) => {
                    owners.push(l1.core());
                }
                Some(crate::L1State::Shared) => sharers.push(l1.core()),
                None => {}
            }
        }
        assert!(owners.len() <= 1, "{block}: multiple owners {owners:?}");
        assert!(
            owners.is_empty() || sharers.is_empty(),
            "{block}: owner {owners:?} coexists with sharers {sharers:?}"
        );
        let dir_view = self.home_of(block).sharers_of(block);
        for core in owners.iter().chain(&sharers) {
            assert!(
                dir_view.contains(core),
                "{block}: directory lost track of {core} (dir view: {dir_view:?})"
            );
        }
    }
}
