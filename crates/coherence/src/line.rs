//! Per-line L1 state: [`L1State`] and the speculation mark bits
//! ([`SpecMark`]).

/// Stable (non-transient) coherence state of an L1 line.
///
/// Transient states (fills in flight, evictions awaiting PutAck) are not
/// encoded here; they live in the controller's MSHRs and writeback buffer
/// respectively, which keeps the line payload a simple value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1State {
    /// Read-only copy; others may share.
    Shared,
    /// Read-only copy known to be the only cached copy (MESI `E`); may be
    /// upgraded to [`L1State::Modified`] silently.
    Exclusive,
    /// Writable, possibly dirty, sole copy.
    Modified,
}

impl L1State {
    /// Whether a load may be satisfied from this state.
    pub fn readable(self) -> bool {
        true
    }

    /// Whether a store may be performed without a protocol transaction.
    pub fn writable(self) -> bool {
        matches!(self, L1State::Modified | L1State::Exclusive)
    }

    /// Whether the directory considers this cache the owner.
    pub fn owned(self) -> bool {
        matches!(self, L1State::Modified | L1State::Exclusive)
    }
}

/// Which speculation bit(s) to set on a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecMark {
    /// The speculative epoch read this block.
    Read,
    /// The speculative epoch wrote this block.
    Write,
}

/// The payload stored per L1 line in the cache array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Line {
    /// Coherence state.
    pub state: L1State,
    /// The line holds data newer than the L2/memory copy.
    pub dirty: bool,
    /// Speculatively read this epoch.
    pub spec_read: bool,
    /// Speculatively written this epoch.
    pub spec_write: bool,
    /// Filled by the prefetcher and not yet demanded (usefulness tracking).
    pub prefetched: bool,
}

impl L1Line {
    /// A freshly filled line in `state`, clean and unmarked.
    pub fn fresh(state: L1State) -> Self {
        L1Line {
            state,
            dirty: false,
            spec_read: false,
            spec_write: false,
            prefetched: false,
        }
    }

    /// Whether either speculation bit is set.
    pub fn is_spec(&self) -> bool {
        self.spec_read || self.spec_write
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permissions_by_state() {
        assert!(L1State::Shared.readable());
        assert!(!L1State::Shared.writable());
        assert!(!L1State::Shared.owned());
        assert!(L1State::Exclusive.writable());
        assert!(L1State::Exclusive.owned());
        assert!(L1State::Modified.writable());
        assert!(L1State::Modified.owned());
    }

    #[test]
    fn fresh_lines_are_clean_and_unmarked() {
        let l = L1Line::fresh(L1State::Shared);
        assert!(!l.dirty && !l.is_spec());
        let mut l = L1Line::fresh(L1State::Modified);
        l.spec_read = true;
        assert!(l.is_spec());
        l.spec_read = false;
        l.spec_write = true;
        assert!(l.is_spec());
    }
}
