//! The per-core private-L1 cache controller: [`L1Controller`].
//!
//! The controller mediates between the core above it (which issues
//! [`AccessKind::Read`] / [`AccessKind::Write`] requests against byte-free
//! block addresses) and the directory protocol below it. It owns the L1
//! array, the MSHRs, a writeback buffer for in-flight evictions, and the
//! speculation mark bits the fence-speculation engine uses.

use std::collections::{BTreeMap, VecDeque};

use tenways_mem::{CacheArray, CacheParams, MshrFile, Replacement};
use tenways_noc::Fabric;
use tenways_sim::{BlockAddr, CoreId, Cycle, MachineConfig, NodeId, StatSet};

use crate::line::{L1Line, L1State, SpecMark};
use crate::msg::{FillClass, Msg};

/// Token a core attaches to a memory request so it can match the
/// completion back to the originating instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub u64);

/// What the core wants from the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Load: any valid state suffices.
    Read,
    /// Store or atomic: requires M (or E, silently upgraded).
    Write,
}

/// A finished memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request token.
    pub req: ReqId,
    /// Cycle at which the data/permission became available.
    pub at: Cycle,
    /// Where the data came from (stall attribution).
    pub class: FillClass,
}

/// Why a core request could not even be accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// All MSHRs are busy with other blocks; retry next cycle.
    MshrFull,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::MshrFull => write!(f, "no free MSHR"),
        }
    }
}

impl std::error::Error for RequestError {}

/// Why a speculation violation fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationCause {
    /// A remote writer invalidated a speculatively accessed block.
    RemoteInvalidation,
    /// A remote reader downgraded a speculatively *written* block.
    RemoteDowngrade,
    /// A speculatively accessed block was chosen as an eviction victim.
    Eviction,
}

impl ViolationCause {
    /// Stable label for stats.
    pub fn label(self) -> &'static str {
        match self {
            ViolationCause::RemoteInvalidation => "remote_inv",
            ViolationCause::RemoteDowngrade => "remote_downgrade",
            ViolationCause::Eviction => "eviction",
        }
    }
}

/// An event that must abort the current speculative epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecViolation {
    /// The conflicting block.
    pub block: BlockAddr,
    /// What happened to it.
    pub cause: ViolationCause,
    /// When it happened.
    pub at: Cycle,
}

/// Protocol options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// Grant E on a read miss when no other cache holds the block (MESI);
    /// `false` gives plain MSI.
    pub grant_exclusive: bool,
    /// Issue a read prefetch for block N+1 on every demand miss fill of
    /// block N (a simple next-line prefetcher).
    pub prefetch_next_line: bool,
}

impl tenways_sim::json::ToJson for ProtocolConfig {
    fn to_json(&self) -> tenways_sim::json::Json {
        use tenways_sim::json::Json;
        Json::obj([
            ("grant_exclusive", Json::Bool(self.grant_exclusive)),
            ("prefetch_next_line", Json::Bool(self.prefetch_next_line)),
        ])
    }
}

impl ProtocolConfig {
    /// Overlays fields from a JSON object onto `self`. Absent keys keep
    /// their current value.
    pub fn apply_json(&mut self, doc: &tenways_sim::json::Json) -> Result<(), String> {
        let pairs = doc.as_object().ok_or_else(|| {
            format!(
                "protocol section must be an object, got {}",
                doc.type_name()
            )
        })?;
        for (key, value) in pairs {
            let flag = || {
                value
                    .as_bool()
                    .ok_or(format!("protocol.{key} must be a bool"))
            };
            match key.as_str() {
                "grant_exclusive" => self.grant_exclusive = flag()?,
                "prefetch_next_line" => self.prefetch_next_line = flag()?,
                other => return Err(format!("unknown protocol field `{other}`")),
            }
        }
        Ok(())
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            grant_exclusive: true,
            prefetch_next_line: false,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Waiter {
    req: ReqId,
    kind: AccessKind,
}

/// State of an eviction awaiting the directory's PutAck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WbState {
    /// Sent PutS; still logically a sharer.
    EvictShared,
    /// Sent PutM; still logically the owner. `dirty` mirrors the message.
    EvictOwned { dirty: bool },
    /// A probe already consumed the line; just waiting for PutAck.
    Defunct,
}

/// The private L1 + protocol controller for one core.
///
/// Drive it with [`request`](Self::request) (from the core) and
/// [`tick`](Self::tick) (once per cycle, after the fabric tick); collect
/// results with [`take_completions`](Self::take_completions) and
/// [`take_violations`](Self::take_violations).
#[derive(Debug)]
pub struct L1Controller {
    core: CoreId,
    node: NodeId,
    cores: usize,
    dir_banks: usize,
    hit_latency: u64,
    config: ProtocolConfig,
    cache: CacheArray<L1Line>,
    mshrs: MshrFile<Waiter>,
    /// For each outstanding miss: did we ask for M?
    want_m: BTreeMap<u64, bool>,
    wb: BTreeMap<u64, WbState>,
    /// Hit completions maturing after the hit latency (FIFO by time).
    hit_q: VecDeque<(Cycle, ReqId)>,
    /// Write waiters displaced by an S fill, to be re-requested.
    retry_q: VecDeque<(ReqId, AccessKind, BlockAddr)>,
    completions: Vec<Completion>,
    violations: Vec<SpecViolation>,
    /// Blocks that may carry speculation marks (superset; bits are truth).
    spec_marked: Vec<BlockAddr>,
    /// Stat keys bumped by *failed* `request` calls this cycle. A blocked
    /// core repeats the identical failed request every cycle of a quiescent
    /// gap, so fast-forward replays these keys once per skipped cycle.
    /// Cleared at the top of every [`tick`](Self::tick).
    idle_fx: Vec<&'static str>,
    /// A failed `request` this cycle had a one-time side effect (cleared a
    /// prefetched bit), so the cycle is not a uniform replica and must not
    /// seed a fast-forward jump.
    fx_once: bool,
    stats: StatSet,
}

impl L1Controller {
    /// Creates the controller for `core` under machine `cfg`.
    pub fn new(core: CoreId, cfg: &MachineConfig, protocol: ProtocolConfig) -> Self {
        let params = CacheParams::new(cfg.l1_sets, cfg.l1_ways, Replacement::Lru)
            .expect("MachineConfig validated its cache geometry");
        L1Controller {
            core,
            node: NodeId::from(core),
            cores: cfg.cores,
            dir_banks: cfg.dir_banks,
            hit_latency: cfg.l1_hit_latency,
            config: protocol,
            cache: CacheArray::with_seed(params, u64::from(core.0)),
            mshrs: MshrFile::new(cfg.mshrs),
            want_m: BTreeMap::new(),
            wb: BTreeMap::new(),
            hit_q: VecDeque::new(),
            retry_q: VecDeque::new(),
            completions: Vec::new(),
            violations: Vec::new(),
            spec_marked: Vec::new(),
            idle_fx: Vec::new(),
            fx_once: false,
            stats: StatSet::new(),
        }
    }

    /// This controller's core.
    pub fn core(&self) -> CoreId {
        self.core
    }

    fn home_node(&self, block: BlockAddr) -> NodeId {
        let bank = (block.as_u64() % self.dir_banks as u64) as usize;
        NodeId((self.cores + bank) as u16)
    }

    /// Issues a memory request. On a hit the completion matures after the
    /// hit latency; on a miss it matures when the fill returns.
    ///
    /// # Errors
    ///
    /// [`RequestError::MshrFull`] when a new miss cannot be tracked; the
    /// caller must retry on a later cycle (a structural stall).
    pub fn request(
        &mut self,
        now: Cycle,
        req: ReqId,
        kind: AccessKind,
        block: BlockAddr,
        fabric: &mut Fabric<Msg>,
    ) -> Result<(), RequestError> {
        // Track the stat bumps of this attempt; a successful request is
        // progress (never replayed), so its record is discarded.
        let fx_mark = self.idle_fx.len();
        let r = self.request_inner(now, req, kind, block, fabric);
        if r.is_ok() {
            self.idle_fx.truncate(fx_mark);
        }
        r
    }

    fn request_inner(
        &mut self,
        now: Cycle,
        req: ReqId,
        kind: AccessKind,
        block: BlockAddr,
        fabric: &mut Fabric<Msg>,
    ) -> Result<(), RequestError> {
        let kind_key = match kind {
            AccessKind::Read => "l1.read_reqs",
            AccessKind::Write => "l1.write_reqs",
        };
        self.stats.bump(kind_key);
        self.idle_fx.push(kind_key);

        if let Some(line) = self.cache.get(block) {
            if line.prefetched {
                line.prefetched = false;
                self.stats.bump("l1.prefetch_useful");
                self.fx_once = true;
            }
            match kind {
                AccessKind::Read => {
                    self.stats.bump("l1.hits");
                    self.hit_q.push_back((now.after(self.hit_latency), req));
                    return Ok(());
                }
                AccessKind::Write if line.state.writable() => {
                    if line.state == L1State::Exclusive {
                        line.state = L1State::Modified;
                        self.stats.bump("l1.silent_e_to_m");
                    }
                    line.dirty = true;
                    self.stats.bump("l1.hits");
                    self.hit_q.push_back((now.after(self.hit_latency), req));
                    return Ok(());
                }
                AccessKind::Write => {
                    // S line: upgrade. Falls through to the miss path below;
                    // the line stays readable while the GetM is in flight.
                    self.stats.bump("l1.upgrades");
                    self.idle_fx.push("l1.upgrades");
                }
            }
        } else {
            self.stats.bump("l1.misses");
            self.idle_fx.push("l1.misses");
        }

        let primary = self
            .mshrs
            .allocate(block, Waiter { req, kind })
            .map_err(|_| RequestError::MshrFull)?;
        if primary {
            let want_m = kind == AccessKind::Write;
            self.want_m.insert(block.as_u64(), want_m);
            let msg = if want_m {
                Msg::GetM(block)
            } else {
                Msg::GetS(block)
            };
            fabric.send(now, self.node, self.home_node(block), msg);
        } else if kind == AccessKind::Write
            && !self.want_m.get(&block.as_u64()).copied().unwrap_or(false)
        {
            // A write merged into an outstanding GetS: the S fill will not
            // satisfy it; it is re-requested (as an upgrade) at fill time.
            self.stats.bump("l1.write_under_gets");
        }
        Ok(())
    }

    /// Marks a block as speculatively read/written. Returns `false` (and
    /// marks nothing) if the block is not resident — callers should treat
    /// that as a conservative violation.
    ///
    /// Marking [`SpecMark::Write`] on a dirty, not-yet-spec-written line
    /// first flushes the pre-speculation data to the L2 (a `CleanWb`
    /// message) so rollback can drop the line without losing data.
    pub fn mark_spec(
        &mut self,
        now: Cycle,
        mark: SpecMark,
        block: BlockAddr,
        fabric: &mut Fabric<Msg>,
    ) -> bool {
        let node = self.node;
        let home = self.home_node(block);
        let Some(line) = self.cache.peek_mut(block) else {
            return false;
        };
        match mark {
            SpecMark::Read => {
                if !line.spec_read {
                    line.spec_read = true;
                    self.spec_marked.push(block);
                    self.stats.bump("l1.spec_read_marks");
                }
            }
            SpecMark::Write => {
                if !line.state.writable() {
                    // The line was downgraded between the write completing
                    // and the mark being applied — report failure so the
                    // caller treats it as a (conservative) violation.
                    return false;
                }
                if !line.spec_write {
                    if line.dirty {
                        fabric.send(now, node, home, Msg::CleanWb(block));
                        self.stats.bump("l1.spec_clean_wb");
                    }
                    line.spec_write = true;
                    line.dirty = true;
                    self.spec_marked.push(block);
                    self.stats.bump("l1.spec_write_marks");
                }
            }
        }
        true
    }

    /// Commits the speculative epoch: flash-clears all mark bits. O(marked).
    pub fn commit_spec(&mut self) {
        for block in std::mem::take(&mut self.spec_marked) {
            if let Some(line) = self.cache.peek_mut(block) {
                line.spec_read = false;
                line.spec_write = false;
            }
        }
        self.stats.bump("l1.spec_commits");
    }

    /// Rolls back the speculative epoch: speculatively-written lines are
    /// dropped (their pre-speculation contents already live in the L2) and
    /// read marks are cleared. Returns the number of lines dropped.
    pub fn rollback_spec(&mut self, now: Cycle, fabric: &mut Fabric<Msg>) -> usize {
        let mut dropped = 0;
        for block in std::mem::take(&mut self.spec_marked) {
            let Some(line) = self.cache.peek_mut(block) else {
                continue;
            };
            if line.spec_write {
                self.cache.remove(block);
                fabric.send(
                    now,
                    self.node,
                    self.home_node(block),
                    Msg::PutM {
                        block,
                        dirty: false,
                    },
                );
                self.wb
                    .insert(block.as_u64(), WbState::EvictOwned { dirty: false });
                dropped += 1;
            } else {
                line.spec_read = false;
                line.spec_write = false;
            }
        }
        self.stats.bump("l1.spec_rollbacks");
        self.stats
            .bump_by("l1.spec_rollback_dropped", dropped as u64);
        dropped
    }

    /// Number of currently spec-marked resident lines (for footprints).
    pub fn spec_footprint(&self) -> usize {
        self.cache.iter().filter(|(_, l)| l.is_spec()).count()
    }

    /// Advances the controller: matures hit completions, retries displaced
    /// writes, and processes protocol messages delivered by the fabric.
    ///
    /// Returns `true` if anything moved (a hit matured, a retry was
    /// accepted, or a protocol message was processed) this cycle.
    pub fn tick(&mut self, now: Cycle, fabric: &mut Fabric<Msg>) -> bool {
        self.idle_fx.clear();
        self.fx_once = false;
        let mut progress = false;

        while let Some(&(at, req)) = self.hit_q.front() {
            if at > now {
                break;
            }
            self.hit_q.pop_front();
            progress = true;
            self.completions.push(Completion {
                req,
                at,
                class: FillClass::L1Hit,
            });
        }

        for _ in 0..self.retry_q.len() {
            let Some((req, kind, block)) = self.retry_q.pop_front() else {
                break;
            };
            if self.request(now, req, kind, block, fabric).is_err() {
                self.retry_q.push_back((req, kind, block));
            } else {
                progress = true;
            }
        }

        let msgs: Vec<Msg> = fabric.take_inbox(self.node).map(|e| e.payload).collect();
        for msg in msgs {
            progress = true;
            self.handle_msg(now, msg, fabric);
        }
        progress
    }

    /// Earliest future cycle at which this controller will act on its own:
    /// the next maturing hit, or "immediately" while finished completions /
    /// violations await pickup by the core. Misses, writebacks and queued
    /// retries are unblocked by fabric deliveries, which surface through
    /// the fabric's horizon. `None` when none of those are pending.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.completions.is_empty() || !self.violations.is_empty() {
            return Some(now.after(1));
        }
        self.hit_q.front().map(|&(at, _)| at.max(now.after(1)))
    }

    /// Whether a failed request this cycle had a one-time side effect,
    /// making the cycle unsafe to use as a fast-forward template.
    pub fn took_one_time_fx(&self) -> bool {
        self.fx_once
    }

    /// Replays the stat bumps of the failed requests observed in the tick
    /// at `now` over `gap` skipped quiescent cycles, `now+1 ..= now+gap`
    /// (the blocked core and the retry queue would have repeated them
    /// identically every cycle). Same `skip_idle(now, gap)` contract as
    /// the fabric and the core; see DESIGN.md §2.
    pub fn skip_idle(&mut self, now: Cycle, gap: u64) {
        let _ = now; // the controller keeps no watermark; `now` documents the gap start
        for &key in &self.idle_fx {
            self.stats.bump_by(key, gap);
        }
    }

    fn handle_msg(&mut self, now: Cycle, msg: Msg, fabric: &mut Fabric<Msg>) {
        match msg {
            Msg::DataS {
                block,
                exclusive,
                class,
            } => {
                let state = if exclusive && self.config.grant_exclusive {
                    L1State::Exclusive
                } else {
                    L1State::Shared
                };
                self.fill(now, block, state, class, fabric);
            }
            Msg::DataM { block, class } => {
                self.fill(now, block, L1State::Modified, class, fabric);
            }
            Msg::Inv(block) => self.handle_inv(now, block, fabric),
            Msg::Recall(block) => self.handle_recall(now, block, fabric),
            Msg::Downgrade(block) => self.handle_downgrade(now, block, fabric),
            Msg::PutAck(block) => {
                self.wb.remove(&block.as_u64());
            }
            other => {
                debug_assert!(false, "L1 received unexpected message {other:?}");
                self.stats.bump("l1.unexpected_msgs");
            }
        }
    }

    /// Installs a fill and completes its waiters.
    fn fill(
        &mut self,
        now: Cycle,
        block: BlockAddr,
        state: L1State,
        class: FillClass,
        fabric: &mut Fabric<Msg>,
    ) {
        self.want_m.remove(&block.as_u64());
        let entry = self.mshrs.complete(block);

        let demand = entry.as_ref().is_some_and(|e| !e.waiters.is_empty());

        // Preserve any existing line's flags (upgrade fill over an S copy).
        if let Some(line) = self.cache.peek_mut(block) {
            line.state = state;
        } else if let Some(evicted) = self.cache.insert(
            block,
            L1Line {
                prefetched: !demand,
                ..L1Line::fresh(state)
            },
        ) {
            self.evict(now, evicted.block, evicted.payload, fabric);
        }

        if demand && self.config.prefetch_next_line {
            self.maybe_prefetch(now, BlockAddr(block.as_u64().wrapping_add(1)), fabric);
        }

        let Some(entry) = entry else {
            // A fill with no MSHR entry should not happen under the blocking
            // directory; count it defensively.
            self.stats.bump("l1.orphan_fills");
            return;
        };

        let grants_write = state.writable();
        let mut wrote = false;
        for waiter in entry.waiters {
            match waiter.kind {
                AccessKind::Read => {
                    self.completions.push(Completion {
                        req: waiter.req,
                        at: now,
                        class,
                    });
                }
                AccessKind::Write if grants_write => {
                    wrote = true;
                    self.completions.push(Completion {
                        req: waiter.req,
                        at: now,
                        class,
                    });
                }
                AccessKind::Write => {
                    // S fill cannot satisfy a write: re-request as upgrade.
                    self.retry_q
                        .push_back((waiter.req, AccessKind::Write, block));
                }
            }
        }
        if wrote {
            if let Some(line) = self.cache.peek_mut(block) {
                if line.state == L1State::Exclusive {
                    line.state = L1State::Modified;
                    self.stats.bump("l1.silent_e_to_m");
                }
                line.dirty = true;
            }
        }
        self.stats.bump(match class {
            FillClass::L1Hit => "l1.fills_l1hit",
            FillClass::L2Hit => "l1.fills_l2",
            FillClass::DramCold => "l1.fills_cold",
            FillClass::DramCapacity => "l1.fills_capacity",
            FillClass::Coherence => "l1.fills_coherence",
        });
    }

    /// Issues a next-line read prefetch if the block is absent, untracked,
    /// and an MSHR is free.
    fn maybe_prefetch(&mut self, now: Cycle, block: BlockAddr, fabric: &mut Fabric<Msg>) {
        if self.cache.peek(block).is_some()
            || self.mshrs.contains(block)
            || self.wb.contains_key(&block.as_u64())
            || self.mshrs.is_full()
        {
            return;
        }
        if self.mshrs.allocate_prefetch(block).unwrap_or(false) {
            self.want_m.insert(block.as_u64(), false);
            fabric.send(now, self.node, self.home_node(block), Msg::GetS(block));
            self.stats.bump("l1.prefetches");
        }
    }

    /// Starts an eviction transaction for a victim line.
    fn evict(&mut self, now: Cycle, block: BlockAddr, line: L1Line, fabric: &mut Fabric<Msg>) {
        if line.is_spec() {
            self.violations.push(SpecViolation {
                block,
                cause: ViolationCause::Eviction,
                at: now,
            });
            self.stats.bump("l1.violation_eviction");
        }
        self.stats.bump("l1.evictions");
        let (msg, wb) = if line.state.owned() {
            (
                Msg::PutM {
                    block,
                    dirty: line.dirty,
                },
                WbState::EvictOwned { dirty: line.dirty },
            )
        } else {
            (Msg::PutS(block), WbState::EvictShared)
        };
        fabric.send(now, self.node, self.home_node(block), msg);
        let prev = self.wb.insert(block.as_u64(), wb);
        debug_assert!(prev.is_none(), "double eviction of {block}");
    }

    fn note_violation(&mut self, now: Cycle, block: BlockAddr, cause: ViolationCause) {
        self.violations.push(SpecViolation {
            block,
            cause,
            at: now,
        });
        self.stats.bump(match cause {
            ViolationCause::RemoteInvalidation => "l1.violation_remote_inv",
            ViolationCause::RemoteDowngrade => "l1.violation_remote_downgrade",
            ViolationCause::Eviction => "l1.violation_eviction",
        });
    }

    fn handle_inv(&mut self, now: Cycle, block: BlockAddr, fabric: &mut Fabric<Msg>) {
        if let Some(line) = self.cache.peek_mut(block) {
            let spec = line.is_spec();
            if spec {
                self.note_violation(now, block, ViolationCause::RemoteInvalidation);
            }
            self.cache.remove(block);
            self.stats.bump("l1.invalidations");
        } else if let Some(wb) = self.wb.get_mut(&block.as_u64()) {
            *wb = WbState::Defunct;
            self.stats.bump("l1.invalidations_in_wb");
        } else {
            self.stats.bump("l1.stale_inv");
        }
        fabric.send(now, self.node, self.home_node(block), Msg::InvAck(block));
    }

    fn handle_recall(&mut self, now: Cycle, block: BlockAddr, fabric: &mut Fabric<Msg>) {
        let dirty;
        if let Some(line) = self.cache.peek_mut(block) {
            let spec = line.is_spec();
            dirty = line.dirty;
            if spec {
                self.note_violation(now, block, ViolationCause::RemoteInvalidation);
            }
            self.cache.remove(block);
            self.stats.bump("l1.recalls");
        } else if let Some(wb) = self.wb.get_mut(&block.as_u64()) {
            dirty = matches!(*wb, WbState::EvictOwned { dirty: true });
            *wb = WbState::Defunct;
            self.stats.bump("l1.recalls_in_wb");
        } else {
            dirty = false;
            self.stats.bump("l1.stale_recall");
        }
        fabric.send(
            now,
            self.node,
            self.home_node(block),
            Msg::RecallAck { block, dirty },
        );
    }

    fn handle_downgrade(&mut self, now: Cycle, block: BlockAddr, fabric: &mut Fabric<Msg>) {
        let dirty;
        if let Some(line) = self.cache.peek_mut(block) {
            let spec_write = line.spec_write;
            dirty = line.dirty;
            line.state = L1State::Shared;
            line.dirty = false;
            if spec_write {
                self.note_violation(now, block, ViolationCause::RemoteDowngrade);
            }
            self.stats.bump("l1.downgrades");
        } else if let Some(wb) = self.wb.get_mut(&block.as_u64()) {
            dirty = matches!(*wb, WbState::EvictOwned { dirty: true });
            // We remain a (logical) sharer; our queued PutM will be treated
            // as a PutS by the directory.
            *wb = WbState::EvictShared;
            self.stats.bump("l1.downgrades_in_wb");
        } else {
            dirty = false;
            self.stats.bump("l1.stale_downgrade");
        }
        fabric.send(
            now,
            self.node,
            self.home_node(block),
            Msg::DowngradeAck { block, dirty },
        );
    }

    /// Drains finished requests (sorted by completion time).
    pub fn take_completions(&mut self) -> Vec<Completion> {
        let mut out = std::mem::take(&mut self.completions);
        out.sort_by_key(|c| (c.at, c.req));
        out
    }

    /// Drains speculation violations observed since the last call.
    pub fn take_violations(&mut self) -> Vec<SpecViolation> {
        std::mem::take(&mut self.violations)
    }

    /// Whether any miss, eviction or retry is still in flight.
    pub fn is_quiescent(&self) -> bool {
        self.mshrs.is_empty()
            && self.wb.is_empty()
            && self.hit_q.is_empty()
            && self.retry_q.is_empty()
    }

    /// Whether `block` is resident in any valid state.
    pub fn holds(&self, block: BlockAddr) -> bool {
        self.cache.peek(block).is_some()
    }

    /// Whether `block` is resident in M.
    pub fn holds_modified(&self, block: BlockAddr) -> bool {
        self.cache
            .peek(block)
            .is_some_and(|l| l.state == L1State::Modified)
    }

    /// The stable coherence state of `block`, if resident.
    pub fn state_of(&self, block: BlockAddr) -> Option<L1State> {
        self.cache.peek(block).map(|l| l.state)
    }

    /// Whether `block` carries a speculation mark.
    pub fn is_spec_marked(&self, block: BlockAddr) -> bool {
        self.cache.peek(block).is_some_and(L1Line::is_spec)
    }

    /// Controller statistics.
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// Storage devoted to speculation bookkeeping, in bits: two bits per L1
    /// line. (The register checkpoint is counted by the speculation engine.)
    pub fn spec_state_bits(&self) -> usize {
        self.cache.params().blocks() * 2
    }
}
