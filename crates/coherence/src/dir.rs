//! One bank of the blocking, full-map directory: [`DirectoryBank`].
//!
//! Each bank is the *home* and ordering point for an address-interleaved
//! slice of the block space. It keeps a precise full-map entry per cached
//! block, fronts an L2 slice (a latency filter over DRAM) and a set of DRAM
//! banks, and enforces the protocol's single-transaction-per-block rule by
//! FIFO-deferring requests to busy blocks.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use tenways_mem::{CacheArray, CacheParams, DramBanks, DramParams, Replacement};
use tenways_noc::Fabric;
use tenways_sim::trace::{TraceCategory, Tracer, DIR_TID_BASE};
use tenways_sim::{BlockAddr, CoreId, Cycle, MachineConfig, NodeId, StatSet};

use crate::l1::ProtocolConfig;
use crate::msg::{FillClass, Msg};

/// Stable directory state for one block (absent = uncached).
#[derive(Debug, Clone, PartialEq, Eq)]
enum DirState {
    /// Read-only copies at these cores.
    Shared(BTreeSet<u16>),
    /// Sole (possibly dirty) copy at this core.
    Exclusive(u16),
}

/// The in-flight transaction on a block.
#[derive(Debug, Clone)]
struct Txn {
    requester: CoreId,
    want_m: bool,
    /// InvAcks still outstanding.
    pending_acks: usize,
}

/// A message whose transmission is scheduled for a future cycle.
#[derive(Debug, Clone)]
struct Scheduled {
    at: Cycle,
    dst: NodeId,
    msg: Msg,
    /// Firing this send ends the transaction on `msg.block()`.
    completes_txn: bool,
}

/// One directory bank (home node for `block % banks == index`).
#[derive(Debug)]
pub struct DirectoryBank {
    node: NodeId,
    latency: u64,
    protocol: ProtocolConfig,
    entries: BTreeMap<u64, DirState>,
    busy: BTreeMap<u64, Txn>,
    deferred: BTreeMap<u64, VecDeque<(CoreId, Msg)>>,
    /// Messages awaiting their directory-latency processing slot.
    pending: VecDeque<(Cycle, CoreId, Msg)>,
    sends: Vec<Scheduled>,
    l2: CacheArray<()>,
    /// Blocks ever fetched from DRAM (cold/capacity classification).
    seen: BTreeSet<u64>,
    dram: DramBanks,
    stats: StatSet,
    tracer: Tracer,
    /// Trace timeline row for this bank.
    tid: u32,
}

/// Default L2 slice organization: 4096 sets × 8 ways = 2 MiB of 64 B blocks
/// per bank.
const L2_SETS: usize = 4096;
const L2_WAYS: usize = 8;

impl DirectoryBank {
    /// Creates bank `index` of the machine `cfg` with default (MESI)
    /// protocol options.
    pub fn new(index: usize, cfg: &MachineConfig) -> Self {
        Self::with_protocol(index, cfg, ProtocolConfig::default())
    }

    /// Creates bank `index` with explicit protocol options.
    pub fn with_protocol(index: usize, cfg: &MachineConfig, protocol: ProtocolConfig) -> Self {
        let node = cfg.node_ids().dir_node(index);
        DirectoryBank {
            node,
            latency: cfg.dir_latency,
            protocol,
            entries: BTreeMap::new(),
            busy: BTreeMap::new(),
            deferred: BTreeMap::new(),
            pending: VecDeque::new(),
            sends: Vec::new(),
            l2: CacheArray::with_seed(
                CacheParams::new(L2_SETS, L2_WAYS, Replacement::Lru).expect("static geometry"),
                0xd1e5 + index as u64,
            ),
            seen: BTreeSet::new(),
            dram: DramBanks::new(
                DramParams::new(cfg.dram_banks, cfg.dram_latency, cfg.dram_occupancy)
                    .expect("MachineConfig validated DRAM geometry"),
            ),
            stats: StatSet::new(),
            tracer: Tracer::disabled(),
            tid: DIR_TID_BASE + index as u32,
        }
    }

    /// This bank's fabric node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Attaches an event tracer; protocol transitions are recorded as
    /// instants on this bank's timeline row.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Advances the bank one cycle: accept arrivals, process matured
    /// messages, fire scheduled sends (possibly unblocking deferred work).
    ///
    /// Returns `true` if the bank did anything (accepted, processed or sent
    /// a message) this cycle.
    pub fn tick(&mut self, now: Cycle, fabric: &mut Fabric<Msg>) -> bool {
        let mut progress = false;
        let arrivals: Vec<_> = fabric.take_inbox(self.node).collect();
        for env in arrivals {
            progress = true;
            let core = CoreId(env.src.0);
            self.pending
                .push_back((now.after(self.latency), core, env.payload));
        }

        // Process matured messages. The queue is FIFO by arrival and the
        // latency is constant, so matured items form a prefix.
        while let Some(&(at, _, _)) = self.pending.front() {
            if at > now {
                break;
            }
            let (_, core, msg) = self.pending.pop_front().expect("peeked");
            progress = true;
            self.dispatch(now, core, msg);
        }

        // Fire matured sends; a completing send unblocks its block's queue.
        let mut fired_blocks: Vec<BlockAddr> = Vec::new();
        let mut i = 0;
        while i < self.sends.len() {
            if self.sends[i].at <= now {
                let s = self.sends.remove(i);
                progress = true;
                fabric.send(now, self.node, s.dst, s.msg);
                if s.completes_txn {
                    let block = s.msg.block();
                    self.busy.remove(&block.as_u64());
                    fired_blocks.push(block);
                }
            } else {
                i += 1;
            }
        }
        for block in fired_blocks {
            self.pump_deferred(now, block);
        }
        progress
    }

    /// Earliest future cycle at which this bank will act on its own: the
    /// next pending-message maturity or scheduled-send time. Work the bank
    /// is waiting on from elsewhere (acks, deferred requests behind a busy
    /// block) surfaces through the fabric's horizon instead. `None` when
    /// nothing is queued.
    ///
    /// An idle bank tick (no arrivals, nothing matured, nothing fired)
    /// mutates no state at all, so skipped cycles need no replay here.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut horizon: Option<Cycle> = None;
        // FIFO arrival order + constant latency keep `pending` sorted.
        if let Some(&(at, _, _)) = self.pending.front() {
            let at = at.max(now.after(1));
            horizon = Some(at);
        }
        for s in &self.sends {
            let at = s.at.max(now.after(1));
            horizon = Some(horizon.map_or(at, |h| h.min(at)));
        }
        horizon
    }

    /// Processes queued requests for `block` until one makes it busy again
    /// (or the queue empties).
    fn pump_deferred(&mut self, now: Cycle, block: BlockAddr) {
        while !self.busy.contains_key(&block.as_u64()) {
            let Some(q) = self.deferred.get_mut(&block.as_u64()) else {
                return;
            };
            let Some((core, msg)) = q.pop_front() else {
                self.deferred.remove(&block.as_u64());
                return;
            };
            self.handle_request(now, core, msg);
        }
    }

    fn dispatch(&mut self, now: Cycle, core: CoreId, msg: Msg) {
        if msg.is_txn_reply() {
            self.handle_reply(now, core, msg);
            return;
        }
        let block = msg.block().as_u64();
        if self.busy.contains_key(&block) {
            self.stats.bump("dir.deferred");
            self.deferred
                .entry(block)
                .or_default()
                .push_back((core, msg));
            return;
        }
        self.handle_request(now, core, msg);
    }

    /// Looks up the L2 slice; on miss, schedules a DRAM access. Returns the
    /// cycle data is available and the fill classification.
    fn fetch_data(&mut self, now: Cycle, block: BlockAddr) -> (Cycle, FillClass) {
        if self.l2.get(block).is_some() {
            self.stats.bump("dir.l2_hits");
            return (now, FillClass::L2Hit);
        }
        let class = if self.seen.insert(block.as_u64()) {
            self.stats.bump("dir.fills_cold");
            FillClass::DramCold
        } else {
            self.stats.bump("dir.fills_capacity");
            FillClass::DramCapacity
        };
        let ready = self.dram.access(now, block);
        self.l2.insert(block, ());
        (ready, class)
    }

    fn core_node(core: CoreId) -> NodeId {
        NodeId::from(core)
    }

    fn schedule(&mut self, at: Cycle, dst: NodeId, msg: Msg, completes_txn: bool) {
        self.sends.push(Scheduled {
            at,
            dst,
            msg,
            completes_txn,
        });
    }

    fn handle_request(&mut self, now: Cycle, core: CoreId, msg: Msg) {
        self.stats.bump("dir.requests");
        if self.tracer.is_enabled() {
            let name = match msg {
                Msg::GetS(_) => Some("dir.get_s"),
                Msg::GetM(_) => Some("dir.get_m"),
                _ => None,
            };
            if let Some(name) = name {
                self.tracer.instant(
                    now,
                    self.tid,
                    TraceCategory::Coherence,
                    name,
                    msg.block().as_u64(),
                );
            }
        }
        match msg {
            Msg::GetS(block) => self.handle_get_s(now, core, block),
            Msg::GetM(block) => self.handle_get_m(now, core, block),
            Msg::PutS(block) => self.handle_put_s(now, core, block),
            Msg::PutM { block, dirty } => self.handle_put_m(now, core, block, dirty),
            Msg::CleanWb(block) => self.handle_clean_wb(core, block),
            other => {
                debug_assert!(false, "directory received unexpected message {other:?}");
                self.stats.bump("dir.unexpected_msgs");
            }
        }
    }

    fn handle_get_s(&mut self, now: Cycle, core: CoreId, block: BlockAddr) {
        let key = block.as_u64();
        match self.entries.get_mut(&key) {
            None => {
                let (ready, class) = self.fetch_data(now, block);
                // Sole cacher: grant E in MESI mode, plain S in MSI mode
                // (the directory's view must match what the L1 will hold).
                let exclusive = self.protocol.grant_exclusive;
                if exclusive {
                    self.entries.insert(key, DirState::Exclusive(core.0));
                } else {
                    let mut s = BTreeSet::new();
                    s.insert(core.0);
                    self.entries.insert(key, DirState::Shared(s));
                }
                self.busy.insert(
                    key,
                    Txn {
                        requester: core,
                        want_m: false,
                        pending_acks: 0,
                    },
                );
                self.schedule(
                    ready,
                    Self::core_node(core),
                    Msg::DataS {
                        block,
                        exclusive,
                        class,
                    },
                    true,
                );
            }
            Some(DirState::Shared(sharers)) => {
                sharers.insert(core.0);
                let (ready, class) = self.fetch_data(now, block);
                self.busy.insert(
                    key,
                    Txn {
                        requester: core,
                        want_m: false,
                        pending_acks: 0,
                    },
                );
                self.schedule(
                    ready,
                    Self::core_node(core),
                    Msg::DataS {
                        block,
                        exclusive: false,
                        class,
                    },
                    true,
                );
            }
            Some(DirState::Exclusive(owner)) => {
                let owner = *owner;
                if owner == core.0 {
                    // Stale refetch (owner lost the line to its own rollback
                    // writeback that we have not yet processed; defensive).
                    self.stats.bump("dir.gets_from_owner");
                    let (ready, class) = self.fetch_data(now, block);
                    self.busy.insert(
                        key,
                        Txn {
                            requester: core,
                            want_m: false,
                            pending_acks: 0,
                        },
                    );
                    self.schedule(
                        ready,
                        Self::core_node(core),
                        Msg::DataS {
                            block,
                            exclusive: true,
                            class,
                        },
                        true,
                    );
                    return;
                }
                self.stats.bump("dir.downgrades_sent");
                self.tracer.instant(
                    now,
                    self.tid,
                    TraceCategory::Coherence,
                    "dir.downgrade",
                    block.as_u64(),
                );
                self.busy.insert(
                    key,
                    Txn {
                        requester: core,
                        want_m: false,
                        pending_acks: 1,
                    },
                );
                self.schedule(
                    now,
                    Self::core_node(CoreId(owner)),
                    Msg::Downgrade(block),
                    false,
                );
            }
        }
    }

    fn handle_get_m(&mut self, now: Cycle, core: CoreId, block: BlockAddr) {
        let key = block.as_u64();
        match self.entries.get(&key).cloned() {
            None => {
                let (ready, class) = self.fetch_data(now, block);
                self.entries.insert(key, DirState::Exclusive(core.0));
                self.busy.insert(
                    key,
                    Txn {
                        requester: core,
                        want_m: true,
                        pending_acks: 0,
                    },
                );
                self.schedule(
                    ready,
                    Self::core_node(core),
                    Msg::DataM { block, class },
                    true,
                );
            }
            Some(DirState::Shared(sharers)) => {
                let upgrade = sharers.contains(&core.0);
                let invs: Vec<u16> = sharers.iter().copied().filter(|&s| s != core.0).collect();
                if invs.is_empty() {
                    // Requester is the only sharer (or set somehow empty):
                    // grant immediately.
                    self.entries.insert(key, DirState::Exclusive(core.0));
                    let (ready, class) = if upgrade {
                        (now, FillClass::L2Hit)
                    } else {
                        self.fetch_data(now, block)
                    };
                    self.busy.insert(
                        key,
                        Txn {
                            requester: core,
                            want_m: true,
                            pending_acks: 0,
                        },
                    );
                    self.schedule(
                        ready,
                        Self::core_node(core),
                        Msg::DataM { block, class },
                        true,
                    );
                } else {
                    self.stats.bump_by("dir.invs_sent", invs.len() as u64);
                    self.tracer.instant(
                        now,
                        self.tid,
                        TraceCategory::Coherence,
                        "dir.inv",
                        invs.len() as u64,
                    );
                    self.busy.insert(
                        key,
                        Txn {
                            requester: core,
                            want_m: true,
                            pending_acks: invs.len(),
                        },
                    );
                    for s in invs {
                        self.schedule(now, Self::core_node(CoreId(s)), Msg::Inv(block), false);
                    }
                }
            }
            Some(DirState::Exclusive(owner)) => {
                if owner == core.0 {
                    self.stats.bump("dir.getm_from_owner");
                    self.busy.insert(
                        key,
                        Txn {
                            requester: core,
                            want_m: true,
                            pending_acks: 0,
                        },
                    );
                    self.schedule(
                        now,
                        Self::core_node(core),
                        Msg::DataM {
                            block,
                            class: FillClass::L2Hit,
                        },
                        true,
                    );
                    return;
                }
                self.stats.bump("dir.recalls_sent");
                self.tracer.instant(
                    now,
                    self.tid,
                    TraceCategory::Coherence,
                    "dir.recall",
                    block.as_u64(),
                );
                self.busy.insert(
                    key,
                    Txn {
                        requester: core,
                        want_m: true,
                        pending_acks: 1,
                    },
                );
                self.schedule(
                    now,
                    Self::core_node(CoreId(owner)),
                    Msg::Recall(block),
                    false,
                );
            }
        }
    }

    fn handle_put_s(&mut self, now: Cycle, core: CoreId, block: BlockAddr) {
        let key = block.as_u64();
        match self.entries.get_mut(&key) {
            Some(DirState::Shared(sharers)) => {
                sharers.remove(&core.0);
                if sharers.is_empty() {
                    self.entries.remove(&key);
                }
            }
            // Stale PutS from a core the protocol already moved past
            // (e.g. it upgraded to M while the PutS was queued): ignore.
            Some(DirState::Exclusive(_)) | None => {
                self.stats.bump("dir.stale_puts");
            }
        }
        // A Put is a mini-transaction: the PutAck must precede any
        // subsequent response for the block on the same channel.
        self.busy.insert(
            key,
            Txn {
                requester: core,
                want_m: false,
                pending_acks: 0,
            },
        );
        self.schedule(now, Self::core_node(core), Msg::PutAck(block), true);
    }

    fn handle_put_m(&mut self, now: Cycle, core: CoreId, block: BlockAddr, dirty: bool) {
        let key = block.as_u64();
        match self.entries.get_mut(&key) {
            Some(DirState::Exclusive(owner)) if *owner == core.0 => {
                if dirty {
                    self.l2.insert(block, ());
                    self.stats.bump("dir.writebacks");
                }
                self.entries.remove(&key);
            }
            Some(DirState::Shared(sharers)) if sharers.contains(&core.0) => {
                // The owner was downgraded while its PutM was queued: the
                // data already arrived with the DowngradeAck; treat as PutS.
                sharers.remove(&core.0);
                if sharers.is_empty() {
                    self.entries.remove(&key);
                }
                self.stats.bump("dir.putm_as_puts");
            }
            _ => {
                self.stats.bump("dir.stale_putm");
            }
        }
        self.busy.insert(
            key,
            Txn {
                requester: core,
                want_m: false,
                pending_acks: 0,
            },
        );
        self.schedule(now, Self::core_node(core), Msg::PutAck(block), true);
    }

    fn handle_clean_wb(&mut self, core: CoreId, block: BlockAddr) {
        let key = block.as_u64();
        if matches!(self.entries.get(&key), Some(DirState::Exclusive(o)) if *o == core.0) {
            self.l2.insert(block, ());
            self.stats.bump("dir.clean_writebacks");
        } else {
            self.stats.bump("dir.stale_clean_wb");
        }
    }

    fn handle_reply(&mut self, now: Cycle, _core: CoreId, msg: Msg) {
        let block = msg.block();
        let key = block.as_u64();
        let Some(txn) = self.busy.get_mut(&key) else {
            self.stats.bump("dir.stale_replies");
            return;
        };
        match msg {
            Msg::InvAck(_) => {
                debug_assert!(txn.pending_acks > 0, "unexpected InvAck for {block}");
                txn.pending_acks = txn.pending_acks.saturating_sub(1);
            }
            Msg::RecallAck { dirty, .. } => {
                debug_assert!(txn.pending_acks == 1);
                txn.pending_acks = 0;
                if dirty {
                    self.l2.insert(block, ());
                    self.stats.bump("dir.writebacks");
                }
            }
            Msg::DowngradeAck { dirty, .. } => {
                debug_assert!(txn.pending_acks == 1);
                txn.pending_acks = 0;
                if dirty {
                    self.l2.insert(block, ());
                    self.stats.bump("dir.writebacks");
                }
                // The old owner stays on as a sharer.
                if let Some(DirState::Exclusive(owner)) = self.entries.get(&key).cloned() {
                    let mut sharers = BTreeSet::new();
                    sharers.insert(owner);
                    self.entries.insert(key, DirState::Shared(sharers));
                }
            }
            _ => unreachable!("is_txn_reply() gated"),
        }

        let txn = self.busy.get(&key).expect("still busy");
        if txn.pending_acks == 0 {
            let requester = txn.requester;
            let want_m = txn.want_m;
            // Data came from the former owner/sharers: coherence fill, and
            // it is available now (it travelled with the ack).
            let class = FillClass::Coherence;
            if want_m {
                self.entries.insert(key, DirState::Exclusive(requester.0));
                self.schedule(
                    now,
                    Self::core_node(requester),
                    Msg::DataM { block, class },
                    true,
                );
            } else {
                match self.entries.get_mut(&key) {
                    Some(DirState::Shared(sharers)) => {
                        sharers.insert(requester.0);
                    }
                    _ => {
                        let mut s = BTreeSet::new();
                        s.insert(requester.0);
                        self.entries.insert(key, DirState::Shared(s));
                    }
                }
                self.schedule(
                    now,
                    Self::core_node(requester),
                    Msg::DataS {
                        block,
                        exclusive: false,
                        class,
                    },
                    true,
                );
            }
        }
    }

    /// Whether this bank has no in-flight work.
    pub fn is_quiescent(&self) -> bool {
        self.busy.is_empty()
            && self.pending.is_empty()
            && self.sends.is_empty()
            && self.deferred.values().all(VecDeque::is_empty)
    }

    /// Bank statistics.
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// DRAM statistics for this bank's channel.
    pub fn dram_stats(&self) -> &StatSet {
        self.dram.stats()
    }

    /// Number of blocks with directory entries (cached somewhere).
    pub fn tracked_blocks(&self) -> usize {
        self.entries.len()
    }

    /// Test/debug view: who shares `block`, if anyone.
    pub fn sharers_of(&self, block: BlockAddr) -> Vec<CoreId> {
        match self.entries.get(&block.as_u64()) {
            None => Vec::new(),
            Some(DirState::Shared(s)) => s.iter().map(|&c| CoreId(c)).collect(),
            Some(DirState::Exclusive(o)) => vec![CoreId(*o)],
        }
    }

    /// Test/debug view: whether the directory believes `core` owns `block`.
    pub fn is_owner(&self, block: BlockAddr, core: CoreId) -> bool {
        matches!(self.entries.get(&block.as_u64()), Some(DirState::Exclusive(o)) if *o == core.0)
    }
}
