//! Protocol message vocabulary: [`Msg`].

use tenways_sim::BlockAddr;

/// Where a fill's data came from — attached to data responses so the core
/// can attribute the resulting stall cycles to the right waste category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FillClass {
    /// Satisfied in the local L1 (never crosses the fabric).
    L1Hit,
    /// Directory's L2 slice had the data (capacity miss at L1 only).
    L2Hit,
    /// First-ever touch of the block: compulsory (cold) DRAM access.
    DramCold,
    /// Block was seen before but fell out of the L2: capacity DRAM access.
    DramCapacity,
    /// Data had to be pried out of another core (invalidation, recall or
    /// downgrade) — a communication / coherence miss.
    Coherence,
}

impl FillClass {
    /// Stable label used in stats and reports.
    pub fn label(self) -> &'static str {
        match self {
            FillClass::L1Hit => "l1_hit",
            FillClass::L2Hit => "l2_hit",
            FillClass::DramCold => "dram_cold",
            FillClass::DramCapacity => "dram_capacity",
            FillClass::Coherence => "coherence",
        }
    }
}

/// A coherence protocol message (the fabric payload).
///
/// Directions are fixed by the variant: requests travel L1 → directory,
/// probes directory → L1, and responses back the other way. `data` payloads
/// are abstract — tenways keeps values in a functional layer, so messages
/// carry only addresses and flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Msg {
    // ----- L1 → directory requests -----
    /// Read permission request (allocate in S, or E if granted).
    GetS(BlockAddr),
    /// Write permission request (allocate/upgrade to M).
    GetM(BlockAddr),
    /// Eviction notice for a clean shared block.
    PutS(BlockAddr),
    /// Eviction writeback of an owned block. `dirty == false` means the
    /// memory copy is already current (used when speculation rolled back
    /// after the pre-speculation contents were flushed).
    PutM {
        /// The evicted block.
        block: BlockAddr,
        /// Whether the message carries data the L2 must absorb.
        dirty: bool,
    },
    /// Flush current data to the L2 while *keeping* M ownership. Issued
    /// before the first speculative write to a dirty block so rollback can
    /// simply drop the line.
    CleanWb(BlockAddr),

    // ----- directory → L1 probes -----
    /// Invalidate your shared copy and ack.
    Inv(BlockAddr),
    /// Give up ownership entirely (remote write wants M).
    Recall(BlockAddr),
    /// Demote ownership to shared (remote read wants S).
    Downgrade(BlockAddr),

    // ----- L1 → directory probe responses -----
    /// Shared copy invalidated.
    InvAck(BlockAddr),
    /// Ownership surrendered; `dirty` says whether data rode along.
    RecallAck {
        /// The recalled block.
        block: BlockAddr,
        /// Whether the responder still had (dirty) data to supply.
        dirty: bool,
    },
    /// Ownership demoted to S; `dirty` as in [`Msg::RecallAck`].
    DowngradeAck {
        /// The downgraded block.
        block: BlockAddr,
        /// Whether the responder supplied data.
        dirty: bool,
    },

    // ----- directory → L1 responses -----
    /// Data with read permission; `exclusive` upgrades the grant to E.
    DataS {
        /// The filled block.
        block: BlockAddr,
        /// Whether the requester is the sole cacher (E grant).
        exclusive: bool,
        /// Where the data came from.
        class: FillClass,
    },
    /// Data with write permission (M).
    DataM {
        /// The filled block.
        block: BlockAddr,
        /// Where the data came from.
        class: FillClass,
    },
    /// Eviction acknowledged; the writeback-buffer entry may retire.
    PutAck(BlockAddr),
}

impl Msg {
    /// The block this message concerns.
    pub fn block(&self) -> BlockAddr {
        match *self {
            Msg::GetS(b)
            | Msg::GetM(b)
            | Msg::PutS(b)
            | Msg::CleanWb(b)
            | Msg::Inv(b)
            | Msg::Recall(b)
            | Msg::Downgrade(b)
            | Msg::InvAck(b)
            | Msg::PutAck(b) => b,
            Msg::PutM { block, .. }
            | Msg::RecallAck { block, .. }
            | Msg::DowngradeAck { block, .. }
            | Msg::DataS { block, .. }
            | Msg::DataM { block, .. } => block,
        }
    }

    /// True for messages that resolve an in-flight directory transaction
    /// (they bypass the per-block request queue).
    pub fn is_txn_reply(&self) -> bool {
        matches!(
            self,
            Msg::InvAck(_) | Msg::RecallAck { .. } | Msg::DowngradeAck { .. }
        )
    }

    /// Short mnemonic for traces and stats.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Msg::GetS(_) => "GetS",
            Msg::GetM(_) => "GetM",
            Msg::PutS(_) => "PutS",
            Msg::PutM { .. } => "PutM",
            Msg::CleanWb(_) => "CleanWb",
            Msg::Inv(_) => "Inv",
            Msg::Recall(_) => "Recall",
            Msg::Downgrade(_) => "Downgrade",
            Msg::InvAck(_) => "InvAck",
            Msg::RecallAck { .. } => "RecallAck",
            Msg::DowngradeAck { .. } => "DowngradeAck",
            Msg::DataS { .. } => "DataS",
            Msg::DataM { .. } => "DataM",
            Msg::PutAck(_) => "PutAck",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_extraction_covers_all_variants() {
        let b = BlockAddr(42);
        let msgs = [
            Msg::GetS(b),
            Msg::GetM(b),
            Msg::PutS(b),
            Msg::PutM {
                block: b,
                dirty: true,
            },
            Msg::CleanWb(b),
            Msg::Inv(b),
            Msg::Recall(b),
            Msg::Downgrade(b),
            Msg::InvAck(b),
            Msg::RecallAck {
                block: b,
                dirty: false,
            },
            Msg::DowngradeAck {
                block: b,
                dirty: true,
            },
            Msg::DataS {
                block: b,
                exclusive: false,
                class: FillClass::L2Hit,
            },
            Msg::DataM {
                block: b,
                class: FillClass::DramCold,
            },
            Msg::PutAck(b),
        ];
        for m in msgs {
            assert_eq!(m.block(), b, "{}", m.mnemonic());
        }
    }

    #[test]
    fn txn_reply_classification() {
        let b = BlockAddr(1);
        assert!(Msg::InvAck(b).is_txn_reply());
        assert!(Msg::RecallAck {
            block: b,
            dirty: true
        }
        .is_txn_reply());
        assert!(Msg::DowngradeAck {
            block: b,
            dirty: false
        }
        .is_txn_reply());
        assert!(!Msg::GetS(b).is_txn_reply());
        assert!(!Msg::PutM {
            block: b,
            dirty: true
        }
        .is_txn_reply());
        assert!(!Msg::DataM {
            block: b,
            class: FillClass::L2Hit
        }
        .is_txn_reply());
    }

    #[test]
    fn mnemonics_are_distinct() {
        let b = BlockAddr(0);
        let names = [
            Msg::GetS(b).mnemonic(),
            Msg::GetM(b).mnemonic(),
            Msg::PutS(b).mnemonic(),
            Msg::PutM {
                block: b,
                dirty: true,
            }
            .mnemonic(),
            Msg::CleanWb(b).mnemonic(),
            Msg::Inv(b).mnemonic(),
            Msg::Recall(b).mnemonic(),
            Msg::Downgrade(b).mnemonic(),
            Msg::InvAck(b).mnemonic(),
            Msg::RecallAck {
                block: b,
                dirty: true,
            }
            .mnemonic(),
            Msg::DowngradeAck {
                block: b,
                dirty: true,
            }
            .mnemonic(),
            Msg::DataS {
                block: b,
                exclusive: true,
                class: FillClass::L2Hit,
            }
            .mnemonic(),
            Msg::DataM {
                block: b,
                class: FillClass::L2Hit,
            }
            .mnemonic(),
            Msg::PutAck(b).mnemonic(),
        ];
        let mut dedup = names.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
