//! Invalidation-based directory cache coherence for `tenways`.
//!
//! This crate implements the protocol substrate the fence-speculation
//! mechanism rides on: private L1 caches kept coherent by a blocking,
//! full-map directory, exchanging messages over the [`tenways_noc::Fabric`].
//!
//! # Protocol summary
//!
//! * **States:** MSI at the L1 (`I`, `S`, `M`), with an optional `E` state
//!   granted on a read miss when no other cache holds the block (MESI mode,
//!   [`ProtocolConfig::grant_exclusive`]). Stores to `E` upgrade silently.
//! * **Directory:** one full-map entry per cached block (`Shared(sharers)` /
//!   `Exclusive(owner)`), embedded in address-interleaved banks. Each bank
//!   fronts an L2 slice (a latency filter) and a set of DRAM banks.
//! * **Blocking:** at most one transaction per block is in flight; all other
//!   requests for that block FIFO-queue at its home bank. Together with the
//!   fabric's point-to-point ordering this eliminates most protocol races by
//!   construction.
//! * **Transactional evictions:** an L1 never silently drops a block. PutS /
//!   PutM move the line into a writeback buffer until the directory's PutAck
//!   arrives, and the buffer keeps answering invalidations and recalls in
//!   the meantime.
//! * **Data sourcing:** data always flows through the directory (owners are
//!   recalled or downgraded, then the directory responds). This sacrifices
//!   the latency of cache-to-cache forwarding for a drastically simpler
//!   transient-state space; DESIGN.md records the substitution.
//!
//! # Speculation hooks
//!
//! The L1 carries two extra bits per line — *speculatively read* and
//! *speculatively written* — maintained through [`L1Controller::mark_spec`].
//! Whenever an external invalidation, a downgrade, or an eviction touches a
//! marked line, the controller emits a [`SpecViolation`] that the
//! fence-speculation engine (crate `tenways-core`) turns into a rollback.
//! Commit is [`L1Controller::commit_spec`] (flash-clear); rollback is
//! [`L1Controller::rollback_spec`] (invalidate speculatively-written lines,
//! whose pre-speculation contents were written back at first mark).
//!
//! # Example
//!
//! Drive a two-core system through a read-share / write-invalidate cycle
//! with the test sandbox:
//!
//! ```rust
//! use tenways_coherence::{sandbox::ProtocolSandbox, AccessKind};
//! use tenways_sim::{Addr, CoreId, MachineConfig};
//!
//! let cfg = MachineConfig::builder().cores(2).build().unwrap();
//! let mut sb = ProtocolSandbox::new(&cfg);
//! let a = Addr(0x1000);
//! sb.access_and_wait(CoreId(0), AccessKind::Read, a);
//! sb.access_and_wait(CoreId(1), AccessKind::Read, a);   // both sharers
//! sb.access_and_wait(CoreId(0), AccessKind::Write, a);  // invalidates core 1
//! assert!(sb.l1(CoreId(0)).holds_modified(sb.block(a)));
//! assert!(!sb.l1(CoreId(1)).holds(sb.block(a)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dir;
mod l1;
mod line;
mod msg;
pub mod sandbox;

pub use dir::DirectoryBank;
pub use l1::{
    AccessKind, Completion, L1Controller, ProtocolConfig, ReqId, RequestError, SpecViolation,
    ViolationCause,
};
pub use line::{L1State, SpecMark};
pub use msg::{FillClass, Msg};
