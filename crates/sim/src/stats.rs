//! Cheap named event counters: [`Counter`] and [`StatSet`].
//!
//! Components bump counters on every event of interest (hits, misses,
//! invalidations, rollbacks, ...). A [`StatSet`] is an ordered bag of named
//! counters that can be merged across components and rendered as a report
//! row. Counters are plain `u64`s — no atomics; the simulator is
//! single-threaded per run and sweeps parallelize across *runs*.

use std::collections::BTreeMap;
use std::fmt;

/// A single monotonically increasing event counter.
///
/// # Example
///
/// ```rust
/// use tenways_sim::Counter;
///
/// let mut hits = Counter::default();
/// hits.incr();
/// hits.add(3);
/// assert_eq!(hits.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl From<u64> for Counter {
    fn from(v: u64) -> Self {
        Counter(v)
    }
}

/// An ordered collection of named counters.
///
/// Keys are `&'static str` event names; ordering is lexicographic so report
/// rows are stable across runs.
///
/// # Example
///
/// ```rust
/// use tenways_sim::StatSet;
///
/// let mut a = StatSet::new();
/// a.bump("l1.hit");
/// a.bump_by("l1.miss", 2);
///
/// let mut b = StatSet::new();
/// b.bump("l1.hit");
/// a.merge(&b);
/// assert_eq!(a.get("l1.hit"), 2);
/// assert_eq!(a.get("l1.miss"), 2);
/// assert_eq!(a.get("unknown"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatSet {
    counters: BTreeMap<&'static str, u64>,
}

impl StatSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        StatSet::default()
    }

    /// Adds one to `name`, creating it at zero first if absent.
    pub fn bump(&mut self, name: &'static str) {
        *self.counters.entry(name).or_insert(0) += 1;
    }

    /// Adds `n` to `name`.
    pub fn bump_by(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Sets `name` to an absolute value (for gauges sampled at end of run).
    pub fn set(&mut self, name: &'static str, v: u64) {
        self.counters.insert(name, v);
    }

    /// Reads a counter; absent counters read as zero.
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &StatSet) {
        for (name, v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
    }

    /// Iterates `(name, value)` in stable (lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Ratio of two counters, or `None` if the denominator is zero.
    pub fn ratio(&self, num: &str, den: &str) -> Option<f64> {
        let d = self.get(den);
        (d != 0).then(|| self.get(num) as f64 / d as f64)
    }
}

impl fmt::Display for StatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.counters.is_empty() {
            return write!(f, "(no stats)");
        }
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{k:<40} {v:>16}")?;
        }
        Ok(())
    }
}

impl Extend<(&'static str, u64)> for StatSet {
    fn extend<T: IntoIterator<Item = (&'static str, u64)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.bump_by(k, v);
        }
    }
}

impl FromIterator<(&'static str, u64)> for StatSet {
    fn from_iter<T: IntoIterator<Item = (&'static str, u64)>>(iter: T) -> Self {
        let mut s = StatSet::new();
        s.extend(iter);
        s
    }
}

impl crate::json::ToJson for StatSet {
    /// Counters as an object in stable (lexicographic) key order.
    fn to_json(&self) -> crate::json::Json {
        crate::json::Json::obj(self.iter().map(|(k, v)| (k, crate::json::Json::U64(v))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(Counter::from(5).get(), 5);
    }

    #[test]
    fn statset_bump_get_merge() {
        let mut s = StatSet::new();
        s.bump("a");
        s.bump_by("a", 4);
        s.bump("b");
        let mut t = StatSet::new();
        t.bump_by("a", 10);
        t.bump("c");
        s.merge(&t);
        assert_eq!(s.get("a"), 15);
        assert_eq!(s.get("b"), 1);
        assert_eq!(s.get("c"), 1);
        assert_eq!(s.get("nope"), 0);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn statset_iteration_is_sorted() {
        let s: StatSet = [("z", 1), ("a", 2), ("m", 3)].into_iter().collect();
        let keys: Vec<_> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "m", "z"]);
    }

    #[test]
    fn statset_ratio() {
        let s: StatSet = [("hit", 3), ("access", 4)].into_iter().collect();
        assert_eq!(s.ratio("hit", "access"), Some(0.75));
        assert_eq!(s.ratio("hit", "absent"), None);
    }

    #[test]
    fn statset_set_overwrites() {
        let mut s = StatSet::new();
        s.bump_by("g", 7);
        s.set("g", 2);
        assert_eq!(s.get("g"), 2);
    }

    #[test]
    fn statset_display_nonempty() {
        let s = StatSet::new();
        assert_eq!(s.to_string(), "(no stats)");
        let s: StatSet = [("x", 1)].into_iter().collect();
        assert!(s.to_string().contains('x'));
    }
}
