//! Cheap named event counters: [`Counter`] and [`StatSet`].
//!
//! Components bump counters on every event of interest (hits, misses,
//! invalidations, rollbacks, ...). A [`StatSet`] is an ordered bag of named
//! counters that can be merged across components and rendered as a report
//! row. Counters are plain `u64`s — no atomics; the simulator is
//! single-threaded per run and sweeps parallelize across *runs*.
//!
//! Two kinds of entry live in a [`StatSet`]:
//!
//! * **counters** — written with [`StatSet::bump`]/[`StatSet::bump_by`];
//!   [`StatSet::merge`] *sums* them across components.
//! * **gauges** — absolute values sampled at end of run, written with
//!   [`StatSet::set`]; [`StatSet::merge`] *overwrites* them (the incoming
//!   value wins), so merging component sets into a run record never
//!   double-counts a sampled value.
//!
//! All accumulation saturates at [`u64::MAX`] rather than wrapping (or
//! panicking under debug assertions) on long-horizon runs.

use std::collections::BTreeMap;
use std::fmt;

/// A single monotonically increasing event counter.
///
/// Accumulation saturates at [`u64::MAX`].
///
/// # Example
///
/// ```rust
/// use tenways_sim::Counter;
///
/// let mut hits = Counter::default();
/// hits.incr();
/// hits.add(3);
/// assert_eq!(hits.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one (saturating).
    pub fn incr(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n` (saturating).
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl From<u64> for Counter {
    fn from(v: u64) -> Self {
        Counter(v)
    }
}

/// One named entry: its value plus whether it is a gauge (see the
/// [module docs](self) for the counter/gauge distinction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Stat {
    value: u64,
    gauge: bool,
}

/// A cached handle to one counter inside a specific [`StatSet`].
///
/// Obtained from [`StatSet::id`] and used with [`StatSet::bump_id`] /
/// [`StatSet::add_id`] to make hot per-event bumps a plain array index
/// instead of a string-keyed map lookup. A handle is only meaningful for
/// the set that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatId(u32);

/// An ordered collection of named counters and gauges.
///
/// Keys are `&'static str` event names; ordering is lexicographic so report
/// rows are stable across runs. Values live in a flat slot vector; a name →
/// slot map provides the ordered view and lets hot paths cache a [`StatId`]
/// once and bump the slot directly thereafter.
///
/// # Example
///
/// ```rust
/// use tenways_sim::StatSet;
///
/// let mut a = StatSet::new();
/// a.bump("l1.hit");
/// a.bump_by("l1.miss", 2);
///
/// let mut b = StatSet::new();
/// b.bump("l1.hit");
/// a.merge(&b);
/// assert_eq!(a.get("l1.hit"), 2);
/// assert_eq!(a.get("l1.miss"), 2);
/// assert_eq!(a.get("unknown"), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StatSet {
    slots: Vec<Stat>,
    index: BTreeMap<&'static str, u32>,
}

impl StatSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        StatSet::default()
    }

    fn slot(&mut self, name: &'static str) -> usize {
        match self.index.get(name) {
            Some(&i) => i as usize,
            None => {
                let i = self.slots.len();
                self.slots.push(Stat {
                    value: 0,
                    gauge: false,
                });
                self.index.insert(name, i as u32);
                i
            }
        }
    }

    /// Interns `name` (creating it at zero if absent) and returns a handle
    /// for slot-indexed bumps on the per-event hot path.
    pub fn id(&mut self, name: &'static str) -> StatId {
        StatId(self.slot(name) as u32)
    }

    /// Adds one to the counter behind `id` (saturating).
    #[inline]
    pub fn bump_id(&mut self, id: StatId) {
        self.add_id(id, 1);
    }

    /// Adds `n` to the counter behind `id` (saturating).
    #[inline]
    pub fn add_id(&mut self, id: StatId, n: u64) {
        let e = &mut self.slots[id.0 as usize];
        e.value = e.value.saturating_add(n);
    }

    /// Adds one to `name`, creating it at zero first if absent.
    pub fn bump(&mut self, name: &'static str) {
        self.bump_by(name, 1);
    }

    /// Adds `n` to `name` (saturating at [`u64::MAX`]).
    pub fn bump_by(&mut self, name: &'static str, n: u64) {
        let i = self.slot(name);
        let e = &mut self.slots[i];
        e.value = e.value.saturating_add(n);
    }

    /// Sets `name` to an absolute value (for gauges sampled at end of run).
    /// The key is marked as a gauge: [`StatSet::merge`] overwrites it
    /// instead of summing.
    pub fn set(&mut self, name: &'static str, v: u64) {
        let i = self.slot(name);
        self.slots[i] = Stat {
            value: v,
            gauge: true,
        };
    }

    /// Reads a counter; absent counters read as zero.
    pub fn get(&self, name: &str) -> u64 {
        self.index
            .get(name)
            .map(|&i| self.slots[i as usize].value)
            .unwrap_or(0)
    }

    /// Whether `name` holds a gauge (last written via [`StatSet::set`]).
    pub fn is_gauge(&self, name: &str) -> bool {
        self.index
            .get(name)
            .map(|&i| self.slots[i as usize].gauge)
            .unwrap_or(false)
    }

    /// Folds every entry of `other` into `self`: counters are summed
    /// (saturating), gauges overwrite — the incoming absolute value wins,
    /// so a gauge sampled by a component is never double-counted when
    /// component sets are merged into a run record.
    pub fn merge(&mut self, other: &StatSet) {
        for (name, &j) in &other.index {
            let s = other.slots[j as usize];
            let i = self.slot(name);
            let e = &mut self.slots[i];
            if s.gauge {
                *e = s;
            } else {
                e.value = e.value.saturating_add(s.value);
            }
        }
    }

    /// Iterates `(name, value)` in stable (lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.index
            .iter()
            .map(|(k, &i)| (*k, self.slots[i as usize].value))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Ratio of two counters, or `None` if the denominator is zero.
    pub fn ratio(&self, num: &str, den: &str) -> Option<f64> {
        let d = self.get(den);
        (d != 0).then(|| self.get(num) as f64 / d as f64)
    }
}

impl PartialEq for StatSet {
    /// Equality over logical content (name → value/kind), independent of
    /// the order in which counters were first touched.
    fn eq(&self, other: &Self) -> bool {
        self.index.len() == other.index.len()
            && self.index.iter().all(|(k, &i)| {
                other
                    .index
                    .get(k)
                    .is_some_and(|&j| self.slots[i as usize] == other.slots[j as usize])
            })
    }
}

impl Eq for StatSet {}

impl fmt::Display for StatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.index.is_empty() {
            return write!(f, "(no stats)");
        }
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{k:<40} {v:>16}")?;
        }
        Ok(())
    }
}

impl Extend<(&'static str, u64)> for StatSet {
    fn extend<T: IntoIterator<Item = (&'static str, u64)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.bump_by(k, v);
        }
    }
}

impl FromIterator<(&'static str, u64)> for StatSet {
    fn from_iter<T: IntoIterator<Item = (&'static str, u64)>>(iter: T) -> Self {
        let mut s = StatSet::new();
        s.extend(iter);
        s
    }
}

impl crate::json::ToJson for StatSet {
    /// Counters as an object in stable (lexicographic) key order.
    fn to_json(&self) -> crate::json::Json {
        crate::json::Json::obj(self.iter().map(|(k, v)| (k, crate::json::Json::U64(v))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(Counter::from(5).get(), 5);
    }

    #[test]
    fn counter_saturates_at_max() {
        let mut c = Counter::from(u64::MAX - 1);
        c.add(7);
        assert_eq!(c.get(), u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX, "incr at the ceiling must not wrap");
    }

    #[test]
    fn statset_bump_get_merge() {
        let mut s = StatSet::new();
        s.bump("a");
        s.bump_by("a", 4);
        s.bump("b");
        let mut t = StatSet::new();
        t.bump_by("a", 10);
        t.bump("c");
        s.merge(&t);
        assert_eq!(s.get("a"), 15);
        assert_eq!(s.get("b"), 1);
        assert_eq!(s.get("c"), 1);
        assert_eq!(s.get("nope"), 0);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn statset_bump_saturates_at_max() {
        let mut s = StatSet::new();
        s.bump_by("big", u64::MAX);
        s.bump("big");
        s.bump_by("big", u64::MAX);
        assert_eq!(s.get("big"), u64::MAX, "bump_by must saturate, not wrap");
        let t: StatSet = [("big", u64::MAX)].into_iter().collect();
        s.merge(&t);
        assert_eq!(s.get("big"), u64::MAX, "merge must saturate, not wrap");
    }

    #[test]
    fn statset_iteration_is_sorted() {
        let s: StatSet = [("z", 1), ("a", 2), ("m", 3)].into_iter().collect();
        let keys: Vec<_> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "m", "z"]);
    }

    #[test]
    fn statset_ratio() {
        let s: StatSet = [("hit", 3), ("access", 4)].into_iter().collect();
        assert_eq!(s.ratio("hit", "access"), Some(0.75));
        assert_eq!(s.ratio("hit", "absent"), None);
    }

    #[test]
    fn statset_set_overwrites() {
        let mut s = StatSet::new();
        s.bump_by("g", 7);
        s.set("g", 2);
        assert_eq!(s.get("g"), 2);
        assert!(s.is_gauge("g"));
        assert!(!s.is_gauge("absent"));
    }

    #[test]
    fn merge_overwrites_gauges_instead_of_summing() {
        // A gauge written with `set` is an absolute sample: merging two
        // sets that both carry it must not double-count.
        let mut run = StatSet::new();
        run.set("sb.occupancy_max", 5);
        run.bump_by("l1.hits", 10);
        let mut component = StatSet::new();
        component.set("sb.occupancy_max", 7);
        component.bump_by("l1.hits", 3);
        run.merge(&component);
        assert_eq!(
            run.get("sb.occupancy_max"),
            7,
            "gauge must overwrite on merge, not sum to 12"
        );
        assert!(run.is_gauge("sb.occupancy_max"));
        assert_eq!(run.get("l1.hits"), 13, "counters still sum");
    }

    #[test]
    fn merge_after_set_into_fresh_set_keeps_gauge_kind() {
        let mut component = StatSet::new();
        component.set("gauge", 4);
        let mut run = StatSet::new();
        run.merge(&component);
        assert_eq!(run.get("gauge"), 4);
        assert!(run.is_gauge("gauge"), "gauge kind survives the merge");
        // A second merge of the same component still yields the sample.
        run.merge(&component);
        assert_eq!(run.get("gauge"), 4);
    }

    #[test]
    fn cached_ids_alias_named_counters() {
        let mut s = StatSet::new();
        let hit = s.id("l1.hit");
        s.bump("l1.hit");
        s.bump_id(hit);
        s.add_id(hit, 3);
        assert_eq!(s.get("l1.hit"), 5);
        // Interning alone leaves the counter at zero but visible.
        let miss = s.id("l1.miss");
        assert_eq!(s.get("l1.miss"), 0);
        assert_eq!(s.len(), 2);
        s.add_id(miss, u64::MAX);
        s.bump_id(miss);
        assert_eq!(s.get("l1.miss"), u64::MAX, "id bumps must saturate");
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a: StatSet = [("x", 1), ("y", 2)].into_iter().collect();
        let b: StatSet = [("y", 2), ("x", 1)].into_iter().collect();
        assert_eq!(a, b);
        let c: StatSet = [("x", 1)].into_iter().collect();
        assert_ne!(a, c);
        let mut d = c.clone();
        d.set("y", 2); // gauge, not counter
        assert_ne!(a, d);
    }

    #[test]
    fn statset_display_nonempty() {
        let s = StatSet::new();
        assert_eq!(s.to_string(), "(no stats)");
        let s: StatSet = [("x", 1)].into_iter().collect();
        assert!(s.to_string().contains('x'));
    }
}
