//! The machine description shared by every subsystem: [`MachineConfig`].
//!
//! A `MachineConfig` is validated at construction (via [`MachineConfigBuilder`])
//! so downstream components can rely on its invariants — non-zero core counts,
//! power-of-two cache organizations, and a consistent interconnect topology.

use crate::ids::{BlockGeometry, CoreId, NodeId};
use crate::json::{Json, ToJson};

/// Errors produced when building an invalid [`MachineConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A field that must be non-zero was zero.
    Zero(&'static str),
    /// A field that must be a power of two was not.
    NotPowerOfTwo(&'static str),
    /// Core count exceeds what a `u16` node id can address.
    TooManyCores(usize),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Zero(field) => write!(f, "{field} must be non-zero"),
            ConfigError::NotPowerOfTwo(field) => write!(f, "{field} must be a power of two"),
            ConfigError::TooManyCores(n) => write!(f, "core count {n} exceeds addressable limit"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Complete description of the simulated machine.
///
/// Construct via [`MachineConfig::builder`]; the defaults describe a
/// contemporary small CMP (8 cores, 32 KB 4-way L1s, 4 directory banks, 4
/// DRAM banks) and are the configuration printed as Table 1 of the
/// evaluation.
///
/// # Example
///
/// ```rust
/// use tenways_sim::MachineConfig;
///
/// let cfg = MachineConfig::builder()
///     .cores(4)
///     .l1_kib(16)
///     .build()?;
/// assert_eq!(cfg.l1_sets * cfg.l1_ways * cfg.block_geometry().block_bytes() as usize, 16 * 1024);
/// # Ok::<(), tenways_sim::config::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of cores (each with a private L1).
    pub cores: usize,
    /// Cache block size in bytes (power of two).
    pub block_bytes: u32,
    /// L1 sets (power of two).
    pub l1_sets: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L1 hit latency in cycles.
    pub l1_hit_latency: u64,
    /// Number of address-interleaved directory banks (power of two).
    pub dir_banks: usize,
    /// Directory/L2 tag access latency in cycles.
    pub dir_latency: u64,
    /// Number of DRAM banks behind each directory bank (power of two).
    pub dram_banks: usize,
    /// DRAM access latency in cycles (row activation + transfer, flattened).
    pub dram_latency: u64,
    /// DRAM bank busy time per access (limits bank throughput).
    pub dram_occupancy: u64,
    /// Interconnect one-way latency in cycles.
    pub noc_latency: u64,
    /// Messages one endpoint may inject per cycle.
    pub noc_inject_bw: usize,
    /// Messages one endpoint may accept per cycle.
    pub noc_accept_bw: usize,
    /// Use a 2-D mesh topology instead of the default crossbar.
    pub noc_mesh: bool,
    /// Reorder-buffer capacity per core.
    pub rob_entries: usize,
    /// Store-buffer capacity per core.
    pub sb_entries: usize,
    /// Instructions fetched / retired per cycle.
    pub width: usize,
    /// Maximum outstanding L1 misses per core (MSHRs).
    pub mshrs: usize,
}

impl MachineConfig {
    /// Starts a builder initialized with the default machine.
    pub fn builder() -> MachineConfigBuilder {
        MachineConfigBuilder {
            cfg: MachineConfig::default(),
        }
    }

    /// The block geometry implied by [`Self::block_bytes`].
    pub fn block_geometry(&self) -> BlockGeometry {
        BlockGeometry::new(self.block_bytes).expect("validated at build time")
    }

    /// L1 capacity in bytes.
    pub fn l1_bytes(&self) -> usize {
        self.l1_sets * self.l1_ways * self.block_bytes as usize
    }

    /// The interconnect topology implied by this machine.
    pub fn node_ids(&self) -> NodeLayout {
        NodeLayout {
            cores: self.cores,
            dir_banks: self.dir_banks,
        }
    }

    /// Total interconnect endpoints (cores + directory banks).
    pub fn node_count(&self) -> usize {
        self.cores + self.dir_banks
    }

    /// Iterator over all core ids.
    pub fn core_ids(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.cores as u16).map(CoreId)
    }

    /// Checks the configuration invariants (also enforced by
    /// [`MachineConfigBuilder::build`]). Useful after mutating a validated
    /// config, e.g. when a runner overrides the core count.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first offending field if any
    /// count is zero, any power-of-two field isn't, or the machine is too
    /// large to address.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let c = self;
        for (v, name) in [
            (c.cores, "cores"),
            (c.l1_sets, "l1_sets"),
            (c.l1_ways, "l1_ways"),
            (c.dir_banks, "dir_banks"),
            (c.dram_banks, "dram_banks"),
            (c.rob_entries, "rob_entries"),
            (c.sb_entries, "sb_entries"),
            (c.width, "width"),
            (c.mshrs, "mshrs"),
            (c.noc_inject_bw, "noc_inject_bw"),
            (c.noc_accept_bw, "noc_accept_bw"),
        ] {
            if v == 0 {
                return Err(ConfigError::Zero(name));
            }
        }
        if c.block_bytes == 0 || !c.block_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo("block_bytes"));
        }
        if !c.l1_sets.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo("l1_sets"));
        }
        if !c.dir_banks.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo("dir_banks"));
        }
        if !c.dram_banks.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo("dram_banks"));
        }
        if c.cores + c.dir_banks > u16::MAX as usize {
            return Err(ConfigError::TooManyCores(c.cores));
        }
        Ok(())
    }
}

impl ToJson for MachineConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cores", Json::from(self.cores)),
            ("block_bytes", Json::from(self.block_bytes)),
            ("l1_sets", Json::from(self.l1_sets)),
            ("l1_ways", Json::from(self.l1_ways)),
            ("l1_hit_latency", Json::from(self.l1_hit_latency)),
            ("dir_banks", Json::from(self.dir_banks)),
            ("dir_latency", Json::from(self.dir_latency)),
            ("dram_banks", Json::from(self.dram_banks)),
            ("dram_latency", Json::from(self.dram_latency)),
            ("dram_occupancy", Json::from(self.dram_occupancy)),
            ("noc_latency", Json::from(self.noc_latency)),
            ("noc_inject_bw", Json::from(self.noc_inject_bw)),
            ("noc_accept_bw", Json::from(self.noc_accept_bw)),
            ("noc_mesh", Json::from(self.noc_mesh)),
            ("rob_entries", Json::from(self.rob_entries)),
            ("sb_entries", Json::from(self.sb_entries)),
            ("width", Json::from(self.width)),
            ("mshrs", Json::from(self.mshrs)),
        ])
    }
}

impl MachineConfig {
    /// Overlays fields from a JSON object onto `self`. Unknown keys and
    /// mistyped values are errors; absent keys keep their current value.
    /// Invariants are *not* re-checked here — call [`Self::validate`] after
    /// the last overlay.
    pub fn apply_json(&mut self, doc: &Json) -> Result<(), String> {
        let pairs = doc
            .as_object()
            .ok_or_else(|| format!("machine section must be an object, got {}", doc.type_name()))?;
        for (key, value) in pairs {
            let uint = || {
                value
                    .as_u64()
                    .ok_or_else(|| format!("machine.{key} must be an integer"))
            };
            match key.as_str() {
                "cores" => self.cores = uint()? as usize,
                "block_bytes" => self.block_bytes = uint()? as u32,
                "l1_sets" => self.l1_sets = uint()? as usize,
                "l1_ways" => self.l1_ways = uint()? as usize,
                "l1_hit_latency" => self.l1_hit_latency = uint()?,
                "dir_banks" => self.dir_banks = uint()? as usize,
                "dir_latency" => self.dir_latency = uint()?,
                "dram_banks" => self.dram_banks = uint()? as usize,
                "dram_latency" => self.dram_latency = uint()?,
                "dram_occupancy" => self.dram_occupancy = uint()?,
                "noc_latency" => self.noc_latency = uint()?,
                "noc_inject_bw" => self.noc_inject_bw = uint()? as usize,
                "noc_accept_bw" => self.noc_accept_bw = uint()? as usize,
                "noc_mesh" => {
                    self.noc_mesh = value
                        .as_bool()
                        .ok_or_else(|| "machine.noc_mesh must be a bool".to_string())?
                }
                "rob_entries" => self.rob_entries = uint()? as usize,
                "sb_entries" => self.sb_entries = uint()? as usize,
                "width" => self.width = uint()? as usize,
                "mshrs" => self.mshrs = uint()? as usize,
                other => return Err(format!("unknown machine field `{other}`")),
            }
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cores: 8,
            block_bytes: 64,
            l1_sets: 128,
            l1_ways: 4,
            l1_hit_latency: 2,
            dir_banks: 4,
            dir_latency: 12,
            dram_banks: 4,
            dram_latency: 120,
            dram_occupancy: 24,
            noc_latency: 6,
            noc_inject_bw: 2,
            noc_accept_bw: 2,
            noc_mesh: false,
            rob_entries: 64,
            sb_entries: 16,
            width: 2,
            mshrs: 8,
        }
    }
}

/// Errors produced when validating an [`AtomicsConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtomicsError {
    /// RMW latencies must not shrink with distance: an atomic serviced
    /// from farther away cannot be cheaper than a closer one.
    NotMonotonic {
        /// The nearer tier.
        near: &'static str,
        /// The farther (but configured cheaper) tier.
        far: &'static str,
    },
    /// A latency exceeds [`AtomicsConfig::MAX_LATENCY`] (almost certainly
    /// a units mistake: these are cycles, not nanoseconds × 1000).
    TooLarge(&'static str),
}

impl std::fmt::Display for AtomicsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AtomicsError::NotMonotonic { near, far } => {
                write!(f, "atomics.{far} must be >= atomics.{near}")
            }
            AtomicsError::TooLarge(field) => write!(
                f,
                "atomics.{field} exceeds {} cycles",
                AtomicsConfig::MAX_LATENCY
            ),
        }
    }
}

impl std::error::Error for AtomicsError {}

/// Cost model for atomic read-modify-writes and fences, calibrated against
/// the measured same-socket / cross-socket atomics latencies of Schweizer,
/// Besta and Hoefler, *Evaluating the Cost of Atomic Operations on Modern
/// Architectures* (PACT 2015).
///
/// Each field is an *extra* completion latency in cycles, added on top of
/// the coherence fill the operation already paid. The default is all-zero
/// — atomics complete at fill time, byte-identical to the legacy
/// behavior — so the cost model is strictly opt-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomicsConfig {
    /// Extra cycles for an RMW whose line was already in the local L1
    /// (lock-prefixed ALU + local serialization).
    pub rmw_l1: u64,
    /// Extra cycles for an RMW serviced same-socket (another L1 or the
    /// shared directory/L2 level).
    pub rmw_same_socket: u64,
    /// Extra cycles for an RMW serviced cross-socket / from memory.
    pub rmw_cross_socket: u64,
    /// Execution latency of an honored full fence (store-buffer drain
    /// serialization, MFENCE-style).
    pub fence_full: u64,
    /// Execution latency of an honored acquire or release fence.
    pub fence_oneway: u64,
}

impl Default for AtomicsConfig {
    fn default() -> Self {
        AtomicsConfig::off()
    }
}

impl AtomicsConfig {
    /// Upper bound accepted for any latency field.
    pub const MAX_LATENCY: u64 = 1_000_000;

    /// The zero cost model: atomics and fences complete at fill/issue
    /// time, exactly as before the model existed.
    pub fn off() -> Self {
        AtomicsConfig {
            rmw_l1: 0,
            rmw_same_socket: 0,
            rmw_cross_socket: 0,
            fence_full: 0,
            fence_oneway: 0,
        }
    }

    /// Haswell-era calibration from Schweizer et al.: an atomic on an
    /// L1-resident line costs ~15 cycles over a plain hit, a same-socket
    /// cache-to-cache atomic ~40, a cross-socket / in-memory atomic ~90,
    /// and MFENCE ~33 cycles; acquire/release fences are plain-op cheap
    /// on x86 and modeled free.
    pub fn schweizer() -> Self {
        AtomicsConfig {
            rmw_l1: 15,
            rmw_same_socket: 40,
            rmw_cross_socket: 90,
            fence_full: 33,
            fence_oneway: 0,
        }
    }

    /// Whether every latency is zero (the legacy fast path).
    pub fn is_free(&self) -> bool {
        *self == AtomicsConfig::off()
    }

    /// Checks the cost-model invariants: latencies bounded and
    /// monotonically non-decreasing with distance.
    ///
    /// # Errors
    ///
    /// Returns an [`AtomicsError`] naming the first offending field pair.
    pub fn validate(&self) -> Result<(), AtomicsError> {
        for (v, name) in [
            (self.rmw_l1, "rmw_l1"),
            (self.rmw_same_socket, "rmw_same_socket"),
            (self.rmw_cross_socket, "rmw_cross_socket"),
            (self.fence_full, "fence_full"),
            (self.fence_oneway, "fence_oneway"),
        ] {
            if v > Self::MAX_LATENCY {
                return Err(AtomicsError::TooLarge(name));
            }
        }
        if self.rmw_same_socket < self.rmw_l1 {
            return Err(AtomicsError::NotMonotonic {
                near: "rmw_l1",
                far: "rmw_same_socket",
            });
        }
        if self.rmw_cross_socket < self.rmw_same_socket {
            return Err(AtomicsError::NotMonotonic {
                near: "rmw_same_socket",
                far: "rmw_cross_socket",
            });
        }
        Ok(())
    }

    /// Overlays fields from a JSON object — or a preset name: the string
    /// `"off"` or `"schweizer"` replaces the whole config. Unknown keys
    /// and mistyped values are errors; absent keys keep their value.
    /// Invariants are *not* re-checked here — call [`Self::validate`]
    /// after the last overlay.
    pub fn apply_json(&mut self, doc: &Json) -> Result<(), String> {
        if let Some(name) = doc.as_str() {
            *self = match name {
                "off" => AtomicsConfig::off(),
                "schweizer" => AtomicsConfig::schweizer(),
                other => {
                    return Err(format!(
                        "unknown atomics preset `{other}` (expected `off` or `schweizer`)"
                    ))
                }
            };
            return Ok(());
        }
        let pairs = doc
            .as_object()
            .ok_or_else(|| format!("atomics section must be an object, got {}", doc.type_name()))?;
        for (key, value) in pairs {
            let uint = || {
                value
                    .as_u64()
                    .ok_or_else(|| format!("atomics.{key} must be an integer"))
            };
            match key.as_str() {
                "rmw_l1" => self.rmw_l1 = uint()?,
                "rmw_same_socket" => self.rmw_same_socket = uint()?,
                "rmw_cross_socket" => self.rmw_cross_socket = uint()?,
                "fence_full" => self.fence_full = uint()?,
                "fence_oneway" => self.fence_oneway = uint()?,
                other => return Err(format!("unknown atomics field `{other}`")),
            }
        }
        Ok(())
    }
}

impl ToJson for AtomicsConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rmw_l1", Json::from(self.rmw_l1)),
            ("rmw_same_socket", Json::from(self.rmw_same_socket)),
            ("rmw_cross_socket", Json::from(self.rmw_cross_socket)),
            ("fence_full", Json::from(self.fence_full)),
            ("fence_oneway", Json::from(self.fence_oneway)),
        ])
    }
}

/// Mapping from logical components to interconnect [`NodeId`]s.
///
/// Cores occupy nodes `0..cores`; directory banks follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeLayout {
    cores: usize,
    dir_banks: usize,
}

impl NodeLayout {
    /// Node id of a core's L1 controller.
    pub fn core_node(&self, core: CoreId) -> NodeId {
        debug_assert!(core.index() < self.cores);
        NodeId(core.0)
    }

    /// Node id of directory bank `bank`.
    ///
    /// # Panics
    ///
    /// Panics if `bank >= dir_banks`.
    pub fn dir_node(&self, bank: usize) -> NodeId {
        assert!(bank < self.dir_banks, "directory bank {bank} out of range");
        NodeId((self.cores + bank) as u16)
    }

    /// The directory bank owning a block (address-interleaved).
    pub fn bank_of(&self, block: crate::ids::BlockAddr) -> usize {
        (block.as_u64() % self.dir_banks as u64) as usize
    }

    /// Inverse of [`Self::core_node`] / [`Self::dir_node`].
    pub fn classify(&self, node: NodeId) -> NodeKind {
        let idx = node.index();
        if idx < self.cores {
            NodeKind::Core(CoreId(node.0))
        } else if idx < self.cores + self.dir_banks {
            NodeKind::Directory(idx - self.cores)
        } else {
            NodeKind::Unknown
        }
    }
}

/// What kind of component lives at a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A core / private-L1 controller.
    Core(CoreId),
    /// A directory bank (index within the directory).
    Directory(usize),
    /// Past the end of the topology.
    Unknown,
}

/// Builder for [`MachineConfig`]; see [`MachineConfig::builder`].
#[derive(Debug, Clone)]
pub struct MachineConfigBuilder {
    cfg: MachineConfig,
}

impl MachineConfigBuilder {
    /// Sets the core count.
    pub fn cores(mut self, cores: usize) -> Self {
        self.cfg.cores = cores;
        self
    }

    /// Sets the cache block size in bytes.
    pub fn block_bytes(mut self, bytes: u32) -> Self {
        self.cfg.block_bytes = bytes;
        self
    }

    /// Sets the L1 organization directly.
    pub fn l1(mut self, sets: usize, ways: usize) -> Self {
        self.cfg.l1_sets = sets;
        self.cfg.l1_ways = ways;
        self
    }

    /// Sets the L1 capacity in KiB, keeping the current associativity.
    pub fn l1_kib(mut self, kib: usize) -> Self {
        let blocks = kib * 1024 / self.cfg.block_bytes as usize;
        self.cfg.l1_sets = (blocks / self.cfg.l1_ways).max(1);
        self
    }

    /// Sets the L1 hit latency.
    pub fn l1_hit_latency(mut self, cycles: u64) -> Self {
        self.cfg.l1_hit_latency = cycles;
        self
    }

    /// Sets directory bank count and access latency.
    pub fn directory(mut self, banks: usize, latency: u64) -> Self {
        self.cfg.dir_banks = banks;
        self.cfg.dir_latency = latency;
        self
    }

    /// Sets DRAM bank count, latency and per-access occupancy.
    pub fn dram(mut self, banks: usize, latency: u64, occupancy: u64) -> Self {
        self.cfg.dram_banks = banks;
        self.cfg.dram_latency = latency;
        self.cfg.dram_occupancy = occupancy;
        self
    }

    /// Sets interconnect latency and per-endpoint bandwidths.
    pub fn noc(mut self, latency: u64, inject_bw: usize, accept_bw: usize) -> Self {
        self.cfg.noc_latency = latency;
        self.cfg.noc_inject_bw = inject_bw;
        self.cfg.noc_accept_bw = accept_bw;
        self
    }

    /// Selects a 2-D mesh interconnect instead of the crossbar.
    pub fn mesh(mut self, mesh: bool) -> Self {
        self.cfg.noc_mesh = mesh;
        self
    }

    /// Sets the ROB capacity.
    pub fn rob_entries(mut self, entries: usize) -> Self {
        self.cfg.rob_entries = entries;
        self
    }

    /// Sets the store buffer capacity.
    pub fn sb_entries(mut self, entries: usize) -> Self {
        self.cfg.sb_entries = entries;
        self
    }

    /// Sets fetch/retire width.
    pub fn width(mut self, width: usize) -> Self {
        self.cfg.width = width;
        self
    }

    /// Sets the per-core MSHR count.
    pub fn mshrs(mut self, mshrs: usize) -> Self {
        self.cfg.mshrs = mshrs;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first offending field if any
    /// count is zero, any power-of-two field isn't, or the machine is too
    /// large to address.
    pub fn build(self) -> Result<MachineConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::BlockAddr;

    #[test]
    fn default_config_is_valid() {
        let cfg = MachineConfig::builder().build().unwrap();
        assert_eq!(cfg, MachineConfig::default());
        assert_eq!(cfg.l1_bytes(), 32 * 1024);
    }

    #[test]
    fn zero_fields_are_rejected() {
        assert_eq!(
            MachineConfig::builder().cores(0).build(),
            Err(ConfigError::Zero("cores"))
        );
        assert_eq!(
            MachineConfig::builder().width(0).build(),
            Err(ConfigError::Zero("width"))
        );
    }

    #[test]
    fn non_power_of_two_rejected() {
        assert_eq!(
            MachineConfig::builder().l1(100, 4).build(),
            Err(ConfigError::NotPowerOfTwo("l1_sets"))
        );
        assert_eq!(
            MachineConfig::builder().block_bytes(48).build(),
            Err(ConfigError::NotPowerOfTwo("block_bytes"))
        );
    }

    #[test]
    fn l1_kib_recomputes_sets() {
        let cfg = MachineConfig::builder().l1_kib(8).build().unwrap();
        assert_eq!(cfg.l1_bytes(), 8 * 1024);
    }

    #[test]
    fn node_layout_roundtrips() {
        let cfg = MachineConfig::builder()
            .cores(4)
            .directory(2, 10)
            .build()
            .unwrap();
        let layout = cfg.node_ids();
        assert_eq!(layout.core_node(CoreId(3)), NodeId(3));
        assert_eq!(layout.dir_node(0), NodeId(4));
        assert_eq!(layout.dir_node(1), NodeId(5));
        assert_eq!(layout.classify(NodeId(2)), NodeKind::Core(CoreId(2)));
        assert_eq!(layout.classify(NodeId(5)), NodeKind::Directory(1));
        assert_eq!(layout.classify(NodeId(6)), NodeKind::Unknown);
    }

    #[test]
    fn banks_interleave_blocks() {
        let cfg = MachineConfig::builder().directory(4, 10).build().unwrap();
        let layout = cfg.node_ids();
        let banks: Vec<usize> = (0..8).map(|b| layout.bank_of(BlockAddr(b))).collect();
        assert_eq!(banks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dir_node_bounds_checked() {
        let cfg = MachineConfig::default();
        cfg.node_ids().dir_node(99);
    }

    #[test]
    fn config_clone_eq() {
        let cfg = MachineConfig::default();
        assert_eq!(cfg.clone(), cfg);
    }

    #[test]
    fn validate_matches_builder() {
        let mut cfg = MachineConfig::builder().cores(4).build().unwrap();
        assert_eq!(cfg.validate(), Ok(()));
        cfg.cores = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::Zero("cores")));
    }

    #[test]
    fn json_round_trip() {
        let cfg = MachineConfig::builder()
            .cores(16)
            .mesh(true)
            .build()
            .unwrap();
        let doc = cfg.to_json();
        let mut decoded = MachineConfig::default();
        decoded.apply_json(&doc).unwrap();
        assert_eq!(decoded, cfg);
        assert!(decoded
            .apply_json(&crate::json::Json::obj([("bogus", 1u64.into())]))
            .is_err());
    }

    #[test]
    fn atomics_default_is_free_and_valid() {
        let a = AtomicsConfig::default();
        assert!(a.is_free());
        assert_eq!(a.validate(), Ok(()));
        assert!(!AtomicsConfig::schweizer().is_free());
        assert_eq!(AtomicsConfig::schweizer().validate(), Ok(()));
    }

    #[test]
    fn atomics_monotonicity_enforced() {
        let a = AtomicsConfig {
            rmw_l1: 50,
            rmw_same_socket: 10,
            ..AtomicsConfig::off()
        };
        assert_eq!(
            a.validate(),
            Err(AtomicsError::NotMonotonic {
                near: "rmw_l1",
                far: "rmw_same_socket",
            })
        );
        let b = AtomicsConfig {
            rmw_same_socket: 40,
            rmw_cross_socket: 20,
            ..AtomicsConfig::off()
        };
        assert_eq!(
            b.validate(),
            Err(AtomicsError::NotMonotonic {
                near: "rmw_same_socket",
                far: "rmw_cross_socket",
            })
        );
        let c = AtomicsConfig {
            fence_full: AtomicsConfig::MAX_LATENCY + 1,
            ..AtomicsConfig::off()
        };
        assert_eq!(c.validate(), Err(AtomicsError::TooLarge("fence_full")));
    }

    #[test]
    fn atomics_json_round_trip_and_presets() {
        let a = AtomicsConfig::schweizer();
        let mut decoded = AtomicsConfig::off();
        decoded.apply_json(&a.to_json()).unwrap();
        assert_eq!(decoded, a);

        let mut preset = AtomicsConfig::off();
        preset.apply_json(&Json::from("schweizer")).unwrap();
        assert_eq!(preset, AtomicsConfig::schweizer());
        preset.apply_json(&Json::from("off")).unwrap();
        assert!(preset.is_free());
        assert!(preset.apply_json(&Json::from("fast")).is_err());
        assert!(preset
            .apply_json(&Json::obj([("bogus", 1u64.into())]))
            .is_err());
        assert!(preset
            .apply_json(&Json::obj([("rmw_l1", Json::from("x"))]))
            .is_err());
    }
}
