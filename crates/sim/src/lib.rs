//! Deterministic cycle-level simulation kernel for the `tenways` workspace.
//!
//! This crate is the substrate every other `tenways` crate is built on. It
//! deliberately contains no knowledge of caches, cores, or coherence; it only
//! provides the vocabulary a cycle-accurate simulator needs:
//!
//! * [`Cycle`] — a strongly-typed simulation timestamp, and [`Clock`], the
//!   monotonically advancing global time source.
//! * [`ids`] — newtypes for component identities ([`CoreId`], [`NodeId`]) and
//!   for the address space ([`Addr`], [`BlockAddr`], [`BlockGeometry`]).
//! * [`config`] — the machine description ([`MachineConfig`]) shared by all
//!   subsystems, with validated construction.
//! * [`stats`] — cheap named counters ([`Counter`], [`StatSet`]) that
//!   components bump on every event of interest.
//! * [`hist`] — fixed-bucket and log₂ histograms for latency / occupancy
//!   distributions with percentile queries.
//! * [`rng`] — a small, seedable, splittable PRNG ([`DetRng`]) so every run of
//!   a simulation is bit-for-bit reproducible from a single seed.
//! * [`hash`] — canonical-form JSON rendering and an in-tree SHA-256, the
//!   content-address layer under the `tenways serve` result cache.
//!
//! # Example
//!
//! ```rust
//! use tenways_sim::{Clock, Cycle, config::MachineConfig};
//!
//! let mut clock = Clock::new();
//! assert_eq!(clock.now(), Cycle::ZERO);
//! clock.advance();
//! assert_eq!(clock.now(), Cycle::new(1));
//!
//! let cfg = MachineConfig::builder().cores(8).build().expect("valid config");
//! assert_eq!(cfg.cores, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod hash;
pub mod hist;
pub mod ids;
pub mod json;
pub mod rng;
pub mod stats;
pub mod toml;
pub mod trace;

mod cycle;

pub use config::{AtomicsConfig, AtomicsError, MachineConfig};
pub use cycle::{Clock, Cycle};
pub use hash::{canonical, canonical_hash, sha256_hex, Sha256};
pub use hist::Histogram;
pub use ids::{Addr, BlockAddr, BlockGeometry, CoreId, NodeId};
pub use json::{validate_schema, Json, ToJson};
pub use rng::DetRng;
pub use stats::{Counter, StatId, StatSet};
pub use trace::{TraceCategory, TraceEvent, Tracer};
