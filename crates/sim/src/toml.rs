//! A minimal TOML reader, translating documents into [`Json`] trees.
//!
//! Config files for `tenways` may be written in TOML or JSON; this module
//! covers the TOML subset those configs need — top-level key/value pairs,
//! `[section]` tables (one level deep, nested via dotted headers), strings,
//! integers, floats, booleans, and flat arrays — without pulling in an
//! external crate (the build environment is offline). Everything parses
//! into the same [`Json`] value model the rest of the observability layer
//! uses, so `SimConfig::from_json` is the single decode path.
//!
//! ```rust
//! use tenways_sim::toml::parse_toml;
//!
//! let doc = parse_toml(r#"
//! workload = "oltp"
//! threads = 16
//!
//! [machine]
//! dram_latency = 200
//! "#).unwrap();
//! assert_eq!(doc.get("workload").and_then(|v| v.as_str()), Some("oltp"));
//! assert_eq!(
//!     doc.get("machine").and_then(|m| m.get("dram_latency")).and_then(|v| v.as_u64()),
//!     Some(200),
//! );
//! ```

use crate::json::Json;
use std::fmt;

/// A TOML parse error with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "toml error on line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TomlError {}

/// Parses a TOML document into a [`Json::Obj`] tree.
pub fn parse_toml(text: &str) -> Result<Json, TomlError> {
    let mut root: Vec<(String, Json)> = Vec::new();
    // Path of the currently open `[section]` (empty = top level).
    let mut section: Vec<String> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let err = |msg: &str| TomlError {
            line: lineno,
            msg: msg.to_string(),
        };
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| err("unterminated section header"))?
                .trim();
            if header.is_empty() || header.starts_with('[') {
                return Err(err("unsupported section header"));
            }
            section = header.split('.').map(|s| s.trim().to_string()).collect();
            if section.iter().any(|s| s.is_empty()) {
                return Err(err("empty section name component"));
            }
            // Materialize the table so empty sections still appear.
            table_at(&mut root, &section).map_err(|m| err(&m))?;
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err("expected `key = value`"))?;
        let key = unquote_key(key.trim()).ok_or_else(|| err("bad key"))?;
        let value = parse_value(value.trim()).map_err(|m| err(&m))?;
        let table = table_at(&mut root, &section).map_err(|m| err(&m))?;
        if table.iter().any(|(k, _)| *k == key) {
            return Err(err(&format!("duplicate key `{key}`")));
        }
        table.push((key, value));
    }
    Ok(Json::Obj(root))
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote_key(key: &str) -> Option<String> {
    if let Some(inner) = key.strip_prefix('"').and_then(|k| k.strip_suffix('"')) {
        return Some(inner.to_string());
    }
    if !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Some(key.to_string());
    }
    None
}

/// Walks (creating as needed) to the table named by `path`.
fn table_at<'a>(
    root: &'a mut Vec<(String, Json)>,
    path: &[String],
) -> Result<&'a mut Vec<(String, Json)>, String> {
    let mut cur = root;
    for name in path {
        if !cur.iter().any(|(k, _)| k == name) {
            cur.push((name.clone(), Json::Obj(Vec::new())));
        }
        let slot = cur
            .iter_mut()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .expect("just ensured present");
        match slot {
            Json::Obj(pairs) => cur = pairs,
            _ => return Err(format!("`{name}` is both a value and a table")),
        }
    }
    Ok(cur)
}

fn parse_value(text: &str) -> Result<Json, String> {
    if text.is_empty() {
        return Err("missing value".to_string());
    }
    if let Some(inner) = text.strip_prefix('"') {
        let inner = inner.strip_suffix('"').ok_or("unterminated string")?;
        return unescape(inner).map(Json::Str);
    }
    if text == "true" {
        return Ok(Json::Bool(true));
    }
    if text == "false" {
        return Ok(Json::Bool(false));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or("unterminated array")?.trim();
        if inner.is_empty() {
            return Ok(Json::Arr(Vec::new()));
        }
        return split_top_level(inner)?
            .into_iter()
            .map(|item| parse_value(item.trim()))
            .collect::<Result<Vec<_>, _>>()
            .map(Json::Arr);
    }
    // Numbers. TOML allows `_` separators.
    let num = text.replace('_', "");
    if let Some(hex) = num.strip_prefix("0x") {
        return u64::from_str_radix(hex, 16)
            .map(Json::U64)
            .map_err(|_| format!("bad hex integer `{text}`"));
    }
    if num.contains(['.', 'e', 'E']) {
        return num
            .parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad float `{text}`"));
    }
    if num.starts_with('-') {
        return num
            .parse::<i64>()
            .map(Json::I64)
            .map_err(|_| format!("bad integer `{text}`"));
    }
    num.parse::<u64>()
        .map(Json::U64)
        .map_err(|_| format!("bad value `{text}`"))
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            other => return Err(format!("bad escape `\\{}`", other.unwrap_or(' '))),
        }
    }
    Ok(out)
}

/// Splits `a, b, c` on commas that are not inside strings or nested arrays.
fn split_top_level(s: &str) -> Result<Vec<&str>, String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth = depth.checked_sub(1).ok_or("unbalanced array")?,
            ',' if !in_str && depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_str || depth != 0 {
        return Err("unbalanced array or string".to_string());
    }
    parts.push(&s[start..]);
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_document() {
        let doc = parse_toml("a = 1\nb = \"two\"\nc = true\nd = -3\ne = 2.5\n").unwrap();
        assert_eq!(doc.get("a"), Some(&Json::U64(1)));
        assert_eq!(doc.get("b"), Some(&Json::Str("two".into())));
        assert_eq!(doc.get("c"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("d"), Some(&Json::I64(-3)));
        assert_eq!(doc.get("e"), Some(&Json::F64(2.5)));
    }

    #[test]
    fn sections_and_comments() {
        let doc = parse_toml(
            "# top\nseed = 0x7ea5 # hex\n[machine]\ncores = 16\n[spec]\nmode = \"continuous\"\n",
        )
        .unwrap();
        assert_eq!(doc.get("seed"), Some(&Json::U64(0x7ea5)));
        assert_eq!(
            doc.get("machine").and_then(|m| m.get("cores")),
            Some(&Json::U64(16))
        );
        assert_eq!(
            doc.get("spec")
                .and_then(|m| m.get("mode"))
                .and_then(Json::as_str),
            Some("continuous")
        );
    }

    #[test]
    fn arrays_and_underscores() {
        let doc = parse_toml("xs = [1, 2, 3]\nbig = 1_000_000\n").unwrap();
        assert_eq!(
            doc.get("xs"),
            Some(&Json::arr([Json::U64(1), Json::U64(2), Json::U64(3)]))
        );
        assert_eq!(doc.get("big"), Some(&Json::U64(1_000_000)));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_toml("ok = 1\nnot a pair\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(
            parse_toml("a = 1\na = 2\n").is_err(),
            "duplicate keys rejected"
        );
        assert!(parse_toml("[bad\n").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = parse_toml("s = \"a#b\"\n").unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("a#b"));
    }
}
