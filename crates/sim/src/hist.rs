//! Distributions: the [`Histogram`] used for latency, occupancy and
//! speculation-depth measurements.
//!
//! The histogram is linear-bucketed up to a configurable cap with an overflow
//! bucket, which is sufficient for the bounded quantities we measure (store
//! buffer occupancy ≤ capacity, speculation depth ≤ ROB, latencies ≤ a few
//! hundred cycles when bucketed at the right width). Percentiles are computed
//! by inverse-CDF walk.

/// A linear histogram with `buckets` buckets of width `bucket_width` and an
/// overflow bucket.
///
/// # Example
///
/// ```rust
/// use tenways_sim::Histogram;
///
/// let mut h = Histogram::new(16, 1);
/// for v in [1, 1, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.percentile(50.0), 2);
/// assert!(h.mean() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bucket_width: u64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` linear buckets of width
    /// `bucket_width` (values `>= buckets * bucket_width` land in overflow).
    ///
    /// # Panics
    ///
    /// Panics if `buckets` or `bucket_width` is zero.
    pub fn new(buckets: usize, bucket_width: u64) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(bucket_width > 0, "bucket width must be non-zero");
        Histogram {
            bucket_width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples in one shot — equivalent to calling
    /// [`Histogram::record`] `n` times. Used by the fast-forward path to
    /// replay per-cycle samples over a skipped quiescent gap.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = (value / self.bucket_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += n;
        } else {
            self.overflow += n;
        }
        self.total += n;
        self.sum += u128::from(value) * u128::from(n);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean of all samples (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at percentile `p` (0–100), computed as the lower edge of the
    /// bucket containing the p-th sample; overflow reports the observed max.
    ///
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return i as u64 * self.bucket_width;
            }
        }
        self.max
    }

    /// Fraction of samples that exceeded the linear range.
    pub fn overflow_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.overflow as f64 / self.total as f64
        }
    }

    /// Iterates `(bucket_lower_edge, count)` over non-empty linear buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (i as u64 * self.bucket_width, c))
    }

    /// Merges another histogram with identical geometry into this one.
    ///
    /// # Panics
    ///
    /// Panics if bucket counts or widths differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bucket_width, other.bucket_width,
            "bucket width mismatch"
        );
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "bucket count mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Cumulative distribution: `(value, fraction <= value)` per non-empty
    /// bucket edge, ending with the overflow mass at the observed max.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        if self.total == 0 {
            return out;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            out.push((
                (i as u64 + 1) * self.bucket_width - 1,
                seen as f64 / self.total as f64,
            ));
        }
        if self.overflow > 0 {
            out.push((self.max, 1.0));
        }
        out
    }
}

impl Default for Histogram {
    /// 64 buckets of width 1 — suitable for small occupancies.
    fn default() -> Self {
        Histogram::new(64, 1)
    }
}

impl crate::json::ToJson for Histogram {
    /// Summary form: count/mean/max, key percentiles, and the non-empty
    /// buckets as `[edge, count]` pairs.
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("count", Json::U64(self.count())),
            ("mean", Json::F64(self.mean())),
            ("max", Json::U64(self.max())),
            ("p50", Json::U64(self.percentile(50.0))),
            ("p90", Json::U64(self.percentile(90.0))),
            ("p99", Json::U64(self.percentile(99.0))),
            (
                "buckets",
                Json::Arr(
                    self.iter()
                        .map(|(edge, c)| Json::arr([Json::U64(edge), Json::U64(c)]))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_benign() {
        let h = Histogram::new(8, 1);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn records_land_in_right_buckets() {
        let mut h = Histogram::new(4, 10);
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(39);
        h.record(40); // overflow
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets, vec![(0, 2), (10, 1), (30, 1)]);
        assert_eq!(h.overflow_fraction(), 0.2);
        assert_eq!(h.max(), 40);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = Histogram::new(128, 1);
        for v in 0..100 {
            h.record(v);
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p90 && p90 <= p99);
        assert_eq!(p50, 49);
        assert_eq!(h.percentile(100.0), 99);
        assert_eq!(h.percentile(0.0), 0);
    }

    #[test]
    fn percentile_of_overflow_reports_max() {
        let mut h = Histogram::new(2, 1);
        h.record(1000);
        assert_eq!(h.percentile(50.0), 1000);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = Histogram::new(4, 10);
        let mut loopy = Histogram::new(4, 10);
        for (v, n) in [(3, 5), (17, 2), (100, 3), (0, 1), (9, 0)] {
            bulk.record_n(v, n);
            for _ in 0..n {
                loopy.record(v);
            }
        }
        assert_eq!(bulk, loopy);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new(8, 1);
        for v in [2, 4, 6] {
            h.record(v);
        }
        assert_eq!(h.mean(), 4.0);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Histogram::new(8, 1);
        let mut b = Histogram::new(8, 1);
        a.record(1);
        b.record(3);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 100);
        assert!((a.mean() - (104.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(8, 1);
        let b = Histogram::new(8, 2);
        a.merge(&b);
    }

    #[test]
    fn cdf_ends_at_one() {
        let mut h = Histogram::new(4, 1);
        for v in [0, 1, 2, 99] {
            h.record(v);
        }
        let cdf = h.cdf();
        let (_, last) = *cdf.last().unwrap();
        assert!((last - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].1 <= w[1].1, "CDF must be nondecreasing");
        }
    }
}
