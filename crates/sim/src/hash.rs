//! Canonical JSON hashing: content addresses for deterministic results.
//!
//! Every simulation in this workspace is reproducible by construction, so a
//! run is fully identified by its configuration — if two configs serialize
//! to the same canonical document, their results are interchangeable. This
//! module provides the two pieces that turn that property into a cache key:
//!
//! * [`canonical`] — rewrites a [`Json`] tree into canonical form: object
//!   keys sorted bytewise (recursively), later duplicate keys winning over
//!   earlier ones. Arrays keep their order (array order is semantic).
//! * [`Sha256`] / [`sha256_hex`] — an in-tree SHA-256 (the build
//!   environment is offline, so no external digest crate), giving the
//!   canonical rendering a collision-resistant content address.
//! * [`canonical_hash`] — the composition: the hex digest of the compact
//!   canonical rendering.
//!
//! The cache-key contract built on top of this lives in
//! `tenways_waste::SimConfig::cache_key`; see DESIGN.md §12.

use crate::json::Json;

/// Rewrites `doc` into canonical form: object keys sorted bytewise at
/// every level, duplicate keys resolved last-wins (matching the overlay
/// semantics of the config decoder), arrays and scalars untouched.
///
/// Two documents that differ only in key order — or in which duplicate of
/// a repeated key carries the final value — canonicalize identically, so
/// their [`canonical_hash`]es collide.
pub fn canonical(doc: &Json) -> Json {
    match doc {
        Json::Arr(items) => Json::Arr(items.iter().map(canonical).collect()),
        Json::Obj(pairs) => {
            // Last duplicate wins: walk in reverse, keep the first sighting
            // of each key, then sort for a position-independent rendering.
            let mut kept: Vec<(String, Json)> = Vec::with_capacity(pairs.len());
            for (key, value) in pairs.iter().rev() {
                if !kept.iter().any(|(k, _)| k == key) {
                    kept.push((key.clone(), canonical(value)));
                }
            }
            kept.sort_by(|a, b| a.0.cmp(&b.0));
            Json::Obj(kept)
        }
        other => other.clone(),
    }
}

/// The SHA-256 hex digest of `doc`'s compact canonical rendering.
pub fn canonical_hash(doc: &Json) -> String {
    sha256_hex(canonical(doc).to_string().as_bytes())
}

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 (FIPS 180-4). Safe-code only, no lookup beyond [`K`].
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_bytes: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// A fresh hasher in the standard initial state.
    pub fn new() -> Sha256 {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_bytes: 0,
        }
    }

    /// Absorbs more input.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_bytes = self.total_bytes.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes the digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_bytes.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-256 as a lowercase hex string.
pub fn sha256_hex(data: &[u8]) -> String {
    let mut h = Sha256::new();
    h.update(data);
    let digest = h.finalize();
    let mut out = String::with_capacity(64);
    for byte in digest {
        use std::fmt::Write;
        let _ = write!(out, "{byte:02x}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_matches_fips_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_streams_across_block_boundaries() {
        // One-shot and chunked updates must agree for lengths around the
        // 64-byte block size (including the padding edge at 56 bytes).
        for len in [1usize, 55, 56, 57, 63, 64, 65, 127, 128, 1000] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let oneshot = sha256_hex(&data);
            let mut h = Sha256::new();
            for chunk in data.chunks(7) {
                h.update(chunk);
            }
            let digest = h.finalize();
            let chunked: String = digest.iter().map(|b| format!("{b:02x}")).collect();
            assert_eq!(oneshot, chunked, "len {len}");
        }
    }

    #[test]
    fn canonical_sorts_keys_recursively() {
        let shuffled = Json::parse(r#"{"z":1,"a":{"y":2,"b":[{"q":3,"p":4}]}}"#).unwrap();
        let sorted = Json::parse(r#"{"a":{"b":[{"p":4,"q":3}],"y":2},"z":1}"#).unwrap();
        assert_eq!(canonical(&shuffled), sorted);
        assert_eq!(canonical_hash(&shuffled), canonical_hash(&sorted));
    }

    #[test]
    fn canonical_keeps_array_order() {
        let a = Json::parse("[1,2,3]").unwrap();
        let b = Json::parse("[3,2,1]").unwrap();
        assert_ne!(canonical_hash(&a), canonical_hash(&b));
    }

    #[test]
    fn canonical_resolves_duplicate_keys_last_wins() {
        let dup = Json::Obj(vec![
            ("k".to_string(), Json::U64(1)),
            ("k".to_string(), Json::U64(2)),
        ]);
        assert_eq!(canonical(&dup), Json::obj([("k", Json::U64(2))]));
    }

    #[test]
    fn semantic_change_changes_the_hash() {
        let a = Json::parse(r#"{"threads":8}"#).unwrap();
        let b = Json::parse(r#"{"threads":9}"#).unwrap();
        assert_ne!(canonical_hash(&a), canonical_hash(&b));
    }
}
