//! Simulation time: the [`Cycle`] timestamp and the global [`Clock`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in clock cycles since reset.
///
/// `Cycle` is a newtype over `u64` so that timestamps cannot be confused with
/// other integer quantities (counts, addresses, latencies expressed as bare
/// numbers). Latencies are plain `u64`s; adding a latency to a `Cycle` yields
/// a `Cycle`, and subtracting two `Cycle`s yields a `u64` duration.
///
/// # Example
///
/// ```rust
/// use tenways_sim::Cycle;
///
/// let start = Cycle::new(100);
/// let end = start + 25;
/// assert_eq!(end, Cycle::new(125));
/// assert_eq!(end - start, 25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The zero timestamp (simulation reset).
    pub const ZERO: Cycle = Cycle(0);

    /// The maximum representable timestamp; used as an "never" sentinel for
    /// events that are not currently scheduled.
    pub const NEVER: Cycle = Cycle(u64::MAX);

    /// Creates a timestamp at an absolute cycle number.
    pub const fn new(cycle: u64) -> Self {
        Cycle(cycle)
    }

    /// Returns the raw cycle number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the timestamp `latency` cycles later, saturating at
    /// [`Cycle::NEVER`] on overflow.
    #[must_use]
    pub const fn after(self, latency: u64) -> Self {
        Cycle(self.0.saturating_add(latency))
    }

    /// Cycles elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    #[must_use]
    pub const fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cy{}", self.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    fn add(self, latency: u64) -> Cycle {
        self.after(latency)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, latency: u64) {
        *self = self.after(latency);
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    fn sub(self, earlier: Cycle) -> u64 {
        self.since(earlier)
    }
}

impl From<u64> for Cycle {
    fn from(cycle: u64) -> Self {
        Cycle(cycle)
    }
}

/// The monotonically advancing global time source.
///
/// A simulation owns exactly one `Clock`; each top-level tick advances it by
/// one cycle. Components receive the current [`Cycle`] by value when ticked,
/// so only the simulator itself can move time forward.
///
/// # Example
///
/// ```rust
/// use tenways_sim::{Clock, Cycle};
///
/// let mut clock = Clock::new();
/// for _ in 0..10 {
///     clock.advance();
/// }
/// assert_eq!(clock.now(), Cycle::new(10));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Clock {
    now: Cycle,
}

impl Clock {
    /// Creates a clock at [`Cycle::ZERO`].
    pub fn new() -> Self {
        Clock::default()
    }

    /// The current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advances time by one cycle and returns the new timestamp.
    pub fn advance(&mut self) -> Cycle {
        self.now += 1;
        self.now
    }

    /// Advances time by `cycles` at once (used by fast-forward paths that
    /// know no component has pending work).
    pub fn advance_by(&mut self, cycles: u64) -> Cycle {
        self.now += cycles;
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic_roundtrips() {
        let a = Cycle::new(7);
        assert_eq!(a + 3, Cycle::new(10));
        assert_eq!((a + 3) - a, 3);
        assert_eq!(
            a.since(Cycle::new(100)),
            0,
            "saturates instead of panicking"
        );
    }

    #[test]
    fn cycle_after_saturates_at_never() {
        assert_eq!(Cycle::new(u64::MAX - 1).after(5), Cycle::NEVER);
        assert_eq!(Cycle::NEVER.after(1), Cycle::NEVER);
    }

    #[test]
    fn cycle_ordering_matches_raw() {
        assert!(Cycle::new(1) < Cycle::new(2));
        assert!(Cycle::ZERO < Cycle::NEVER);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        let mut last = c.now();
        for _ in 0..100 {
            let now = c.advance();
            assert!(now > last);
            last = now;
        }
        assert_eq!(last, Cycle::new(100));
    }

    #[test]
    fn clock_advance_by_jumps() {
        let mut c = Clock::new();
        c.advance_by(1_000);
        assert_eq!(c.now(), Cycle::new(1_000));
    }

    #[test]
    fn cycle_display_is_compact() {
        assert_eq!(Cycle::new(42).to_string(), "cy42");
    }

    #[test]
    fn add_assign_accumulates() {
        let mut c = Cycle::ZERO;
        c += 5;
        c += 5;
        assert_eq!(c, Cycle::new(10));
    }
}
