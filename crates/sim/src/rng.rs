//! Deterministic, splittable randomness: [`DetRng`].
//!
//! Every stochastic decision in a tenways simulation (workload address
//! streams, replacement tie-breaks, contention kernels) draws from a
//! [`DetRng`] derived from the run's single seed, so runs are bit-for-bit
//! reproducible and sub-streams (one per thread, one per component) are
//! statistically independent of each other.
//!
//! The generator is SplitMix64 — tiny, fast, passes BigCrush for our purposes,
//! and trivially *splittable*: [`DetRng::split`] derives an independent child
//! stream from a label, so adding a new consumer never perturbs existing
//! streams (unlike handing out consecutive draws from one global RNG).

/// A deterministic 64-bit PRNG (SplitMix64) with labeled splitting.
///
/// # Example
///
/// ```rust
/// use tenways_sim::DetRng;
///
/// let mut root = DetRng::seed(42);
/// let mut a = root.split("thread-0");
/// let mut b = root.split("thread-1");
/// // Child streams are independent and reproducible:
/// assert_ne!(a.next_u64(), b.next_u64());
/// assert_eq!(DetRng::seed(42).split("thread-0").next_u64(),
///            DetRng::seed(42).split("thread-0").next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn seed(seed: u64) -> Self {
        DetRng {
            state: mix(seed ^ GOLDEN_GAMMA),
        }
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// Splitting does not consume randomness from `self`'s output sequence;
    /// it hashes the label into the child's seed, so the set of children is
    /// stable no matter the order they are created in.
    pub fn split(&self, label: &str) -> DetRng {
        let mut h = self.state;
        for &b in label.as_bytes() {
            h = mix(h ^ u64::from(b)).wrapping_add(GOLDEN_GAMMA);
        }
        DetRng { state: mix(h) }
    }

    /// Derives an independent child stream identified by an index.
    pub fn split_index(&self, index: u64) -> DetRng {
        DetRng {
            state: mix(self.state ^ mix(index.wrapping_add(GOLDEN_GAMMA))),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix(self.state)
    }

    /// Uniform value in `[0, bound)` using Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Widening multiply keeps the distribution unbiased enough for
        // simulation purposes (bias < 2^-64 * bound).
        let x = self.next_u64();
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }

    /// Samples a (truncated) geometric-ish burst length in `[1, max]` with
    /// mean roughly `mean` — used by workloads to model bursty access runs.
    pub fn burst(&mut self, mean: f64, max: u64) -> u64 {
        let mut n = 1u64;
        let continue_p = 1.0 - 1.0 / mean.max(1.0);
        while n < max && self.chance(continue_p) {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(DetRng::seed(1).next_u64(), DetRng::seed(2).next_u64());
    }

    #[test]
    fn split_is_order_independent() {
        let root = DetRng::seed(99);
        let a_then_b = (root.split("a").next_u64(), root.split("b").next_u64());
        let b_then_a = (root.split("b").next_u64(), root.split("a").next_u64());
        assert_eq!(a_then_b.0, b_then_a.1);
        assert_eq!(a_then_b.1, b_then_a.0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::seed(3);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut r = DetRng::seed(4);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn below_zero_panics() {
        DetRng::seed(0).below(0);
    }

    #[test]
    fn range_inclusive_exclusive() {
        let mut r = DetRng::seed(5);
        for _ in 0..1_000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed(6);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = DetRng::seed(8);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = DetRng::seed(9);
        for _ in 0..10_000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::seed(10);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements should not shuffle to identity");
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = DetRng::seed(11);
        assert_eq!(r.choose::<u8>(&[]), None);
        assert_eq!(r.choose(&[42]), Some(&42));
    }

    #[test]
    fn burst_bounds() {
        let mut r = DetRng::seed(12);
        for _ in 0..1_000 {
            let b = r.burst(4.0, 16);
            assert!((1..=16).contains(&b));
        }
    }

    #[test]
    fn burst_mean_is_close() {
        let mut r = DetRng::seed(13);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| r.burst(4.0, 1_000)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "got {mean}");
    }
}
