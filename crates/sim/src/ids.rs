//! Identity newtypes: components ([`CoreId`], [`NodeId`]) and the address
//! space ([`Addr`], [`BlockAddr`], [`BlockGeometry`]).
//!
//! All tenways crates agree on these types so that, e.g., a byte address can
//! never be accidentally used where a cache-block address is required — the
//! classic off-by-`log2(block)` family of simulator bugs becomes a type error.

use std::fmt;

/// Identifies one simulated core (and its private L1, which shares the id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u16);

impl CoreId {
    /// Returns the id as a `usize` index (for `Vec`-indexed component tables).
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Identifies any endpoint on the interconnect.
///
/// Cores/L1s occupy node ids `0..cores`; directory banks, DRAM channels and
/// any future endpoints are assigned ids above that by the machine topology
/// (see [`crate::config::MachineConfig::node_ids`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Returns the id as a `usize` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<CoreId> for NodeId {
    /// A core's L1 controller sits at the node with the same index.
    fn from(core: CoreId) -> NodeId {
        NodeId(core.0)
    }
}

/// A byte address in the simulated physical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u64);

impl Addr {
    /// Byte offset addition (e.g. walking an array).
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0.wrapping_add(bytes))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-block-aligned address: the byte address divided by the block size.
///
/// Produced only via [`BlockGeometry::block_of`], so a `BlockAddr` always
/// agrees with the machine's block size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// Returns the block number as a raw `u64` (used for bank hashing).
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk{:#x}", self.0)
    }
}

/// The machine-wide mapping between byte addresses and cache blocks.
///
/// # Example
///
/// ```rust
/// use tenways_sim::{Addr, BlockGeometry};
///
/// let geom = BlockGeometry::new(64).unwrap();
/// let a = Addr(0x1000 + 63);
/// let b = Addr(0x1000);
/// assert_eq!(geom.block_of(a), geom.block_of(b));
/// assert_ne!(geom.block_of(Addr(0x1040)), geom.block_of(b));
/// assert_eq!(geom.base_of(geom.block_of(a)), Addr(0x1000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockGeometry {
    block_bytes: u32,
    shift: u32,
}

impl BlockGeometry {
    /// Creates a geometry for `block_bytes`-sized blocks.
    ///
    /// # Errors
    ///
    /// Returns `None` if `block_bytes` is zero or not a power of two.
    pub fn new(block_bytes: u32) -> Option<Self> {
        if block_bytes == 0 || !block_bytes.is_power_of_two() {
            return None;
        }
        Some(BlockGeometry {
            block_bytes,
            shift: block_bytes.trailing_zeros(),
        })
    }

    /// The block size in bytes.
    pub const fn block_bytes(self) -> u32 {
        self.block_bytes
    }

    /// Maps a byte address to its containing block.
    pub const fn block_of(self, addr: Addr) -> BlockAddr {
        BlockAddr(addr.0 >> self.shift)
    }

    /// The first byte address of a block.
    pub const fn base_of(self, block: BlockAddr) -> Addr {
        Addr(block.0 << self.shift)
    }

    /// Whether two byte addresses fall in the same block (false sharing test).
    pub const fn same_block(self, a: Addr, b: Addr) -> bool {
        (a.0 >> self.shift) == (b.0 >> self.shift)
    }
}

impl Default for BlockGeometry {
    /// 64-byte blocks, the conventional size.
    fn default() -> Self {
        BlockGeometry::new(64).expect("64 is a power of two")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_rejects_bad_sizes() {
        assert!(BlockGeometry::new(0).is_none());
        assert!(BlockGeometry::new(48).is_none());
        assert!(BlockGeometry::new(64).is_some());
        assert!(BlockGeometry::new(1).is_some());
    }

    #[test]
    fn block_mapping_is_consistent() {
        let g = BlockGeometry::new(64).unwrap();
        for base in [0u64, 64, 0x1000, 0x00de_adc0] {
            let aligned = Addr(base & !63);
            for off in 0..64 {
                assert_eq!(g.block_of(aligned.offset(off)), g.block_of(aligned));
            }
            assert_eq!(g.base_of(g.block_of(aligned)), aligned);
        }
    }

    #[test]
    fn same_block_detects_false_sharing() {
        let g = BlockGeometry::default();
        assert!(g.same_block(Addr(0x100), Addr(0x13f)));
        assert!(!g.same_block(Addr(0x100), Addr(0x140)));
    }

    #[test]
    fn core_to_node_identity() {
        assert_eq!(NodeId::from(CoreId(3)), NodeId(3));
        assert_eq!(CoreId(5).index(), 5);
    }

    #[test]
    fn displays_are_informative() {
        assert_eq!(CoreId(2).to_string(), "core2");
        assert_eq!(NodeId(9).to_string(), "node9");
        assert_eq!(Addr(0xff).to_string(), "0xff");
        assert_eq!(BlockAddr(0x10).to_string(), "blk0x10");
    }

    #[test]
    fn addr_offset_wraps_rather_than_panics() {
        let a = Addr(u64::MAX);
        assert_eq!(a.offset(1), Addr(0));
    }
}
