//! Cycle-attributed event tracing.
//!
//! Components record [`TraceEvent`]s into a shared bounded [`TraceBuffer`]
//! through a cheap cloneable handle, [`Tracer`]. A disabled tracer (the
//! default) is a `None` and costs one branch per call site, so simulation
//! speed is unaffected unless a trace was requested.
//!
//! Events carry the simulated cycle, an optional duration (making them
//! spans rather than instants), the node they occurred on, a category, and
//! a static name. [`chrome_trace`] renders a buffer in the Chrome
//! `trace_event` JSON array format, loadable in `chrome://tracing` /
//! Perfetto, with one timeline row per simulated component ("tid") — cores
//! and directory banks get their own rows, cycle count is used as the
//! microsecond timestamp.
//!
//! ```rust
//! use tenways_sim::trace::{chrome_trace, TraceCategory, Tracer};
//! use tenways_sim::Cycle;
//!
//! let tracer = Tracer::enabled(1024);
//! tracer.span(Cycle::new(10), 5, 0, TraceCategory::Fence, "fence.stall", 0);
//! tracer.instant(Cycle::new(20), 0, TraceCategory::Spec, "rollback", 3);
//! let events = tracer.drain();
//! assert_eq!(events.len(), 2);
//! let json = chrome_trace(&events);
//! assert!(json.to_string().contains("fence.stall"));
//! ```

use crate::cycle::Cycle;
use crate::json::Json;
use std::sync::{Arc, Mutex};

/// What subsystem an event belongs to; becomes the Chrome `cat` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceCategory {
    /// Fence / consistency stalls in the core pipeline.
    Fence,
    /// Speculation lifecycle: epochs, rollbacks.
    Spec,
    /// Coherence directory activity: transitions, invalidations, recalls.
    Coherence,
    /// Interconnect queueing and backpressure.
    Noc,
    /// Run-level markers (start / finish).
    Run,
}

impl TraceCategory {
    /// The category label used in exported traces.
    pub fn label(self) -> &'static str {
        match self {
            TraceCategory::Fence => "fence",
            TraceCategory::Spec => "spec",
            TraceCategory::Coherence => "coherence",
            TraceCategory::Noc => "noc",
            TraceCategory::Run => "run",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle the event (or span) started.
    pub cycle: u64,
    /// Span length in cycles; 0 marks an instant event.
    pub dur: u64,
    /// Timeline row: core id, or `DIR_TID_BASE + bank` for directories.
    pub tid: u32,
    /// Subsystem.
    pub cat: TraceCategory,
    /// Event name (e.g. `"fence.stall"`, `"dir.inv"`).
    pub name: &'static str,
    /// One free-form numeric payload (address block, sharer count, …).
    pub arg: u64,
}

/// Timeline-row offset for directory banks in exported traces, so bank
/// rows sort after core rows.
pub const DIR_TID_BASE: u32 = 1000;
/// Timeline row for fabric-wide events.
pub const NOC_TID: u32 = 2000;
/// Timeline row for run-level markers.
pub const RUN_TID: u32 = 3000;

/// A bounded ring of trace events.
///
/// When full, the **oldest** events are overwritten: the tail of a run is
/// usually the interesting part, and a hard cap keeps long simulations from
/// exhausting memory. The number of events dropped this way is reported so
/// exports can say the trace is truncated.
#[derive(Debug)]
pub struct TraceBuffer {
    ring: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the logically-oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceBuffer {
            ring: Vec::with_capacity(capacity.min(4096)),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Records one event, evicting the oldest if the ring is full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// How many events were overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes and returns all events, oldest first.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        let head = std::mem::take(&mut self.head);
        let mut ring = std::mem::take(&mut self.ring);
        ring.rotate_left(head);
        ring
    }
}

/// A cheap, cloneable handle to an optional [`TraceBuffer`].
///
/// `Tracer::default()` is disabled — every record call is a single branch,
/// so the sharing container below is never touched on the hot path.
/// Handles are `Arc`-shared within one simulated machine; the lock only
/// matters to the epoch-parallel scheduler, which must be able to move
/// components (each holding a tracer clone) onto worker threads. Enabled
/// tracing forces the naive single-threaded scheduler anyway, so the
/// mutex is never contended.
#[derive(Debug, Clone, Default)]
pub struct Tracer(Option<Arc<Mutex<TraceBuffer>>>);

impl Tracer {
    /// A tracer recording into a fresh buffer of `capacity` events.
    pub fn enabled(capacity: usize) -> Self {
        Tracer(Some(Arc::new(Mutex::new(TraceBuffer::new(capacity)))))
    }

    /// A disabled tracer; all record calls are no-ops.
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// True when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records a span of `dur` cycles ending *at* `now` (i.e. it started at
    /// `now - dur`). Components usually detect span ends, not starts.
    pub fn span(
        &self,
        now: Cycle,
        dur: u64,
        tid: u32,
        cat: TraceCategory,
        name: &'static str,
        arg: u64,
    ) {
        if let Some(buf) = &self.0 {
            let start = now.as_u64().saturating_sub(dur);
            buf.lock().expect("tracer lock").push(TraceEvent {
                cycle: start,
                dur,
                tid,
                cat,
                name,
                arg,
            });
        }
    }

    /// Records an instant event at `now`.
    pub fn instant(&self, now: Cycle, tid: u32, cat: TraceCategory, name: &'static str, arg: u64) {
        if let Some(buf) = &self.0 {
            buf.lock().expect("tracer lock").push(TraceEvent {
                cycle: now.as_u64(),
                dur: 0,
                tid,
                cat,
                name,
                arg,
            });
        }
    }

    /// Takes all recorded events (oldest first). Empty for disabled tracers.
    pub fn drain(&self) -> Vec<TraceEvent> {
        match &self.0 {
            Some(buf) => buf.lock().expect("tracer lock").drain(),
            None => Vec::new(),
        }
    }

    /// Events overwritten due to the ring capacity.
    pub fn dropped(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |buf| buf.lock().expect("tracer lock").dropped())
    }
}

/// Renders events in Chrome `trace_event` JSON array format.
///
/// One simulated cycle maps to one microsecond of trace time. Spans become
/// `"ph":"X"` complete events, instants become `"ph":"i"`. The numeric
/// payload is exposed as `args.v`.
pub fn chrome_trace(events: &[TraceEvent]) -> Json {
    let mut out = Vec::with_capacity(events.len());
    for ev in events {
        let mut fields = vec![
            ("name".to_string(), Json::Str(ev.name.to_string())),
            ("cat".to_string(), Json::Str(ev.cat.label().to_string())),
            (
                "ph".to_string(),
                Json::Str(if ev.dur > 0 { "X" } else { "i" }.to_string()),
            ),
            ("ts".to_string(), Json::U64(ev.cycle)),
        ];
        if ev.dur > 0 {
            fields.push(("dur".to_string(), Json::U64(ev.dur)));
        } else {
            fields.push(("s".to_string(), Json::Str("t".to_string())));
        }
        fields.push(("pid".to_string(), Json::U64(1)));
        fields.push(("tid".to_string(), Json::U64(u64::from(ev.tid))));
        fields.push(("args".to_string(), Json::obj([("v", Json::U64(ev.arg))])));
        out.push(Json::Obj(fields));
    }
    Json::Arr(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, name: &'static str) -> TraceEvent {
        TraceEvent {
            cycle,
            dur: 0,
            tid: 0,
            cat: TraceCategory::Run,
            name,
            arg: 0,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.instant(Cycle::new(1), 0, TraceCategory::Fence, "x", 0);
        assert!(!t.is_enabled());
        assert!(t.drain().is_empty());
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut buf = TraceBuffer::new(3);
        for i in 0..5 {
            buf.push(ev(i, "e"));
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 2);
        let cycles: Vec<u64> = buf.drain().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn span_subtracts_duration() {
        let t = Tracer::enabled(8);
        t.span(
            Cycle::new(100),
            30,
            2,
            TraceCategory::Fence,
            "fence.stall",
            7,
        );
        let evs = t.drain();
        assert_eq!(evs[0].cycle, 70);
        assert_eq!(evs[0].dur, 30);
        assert_eq!(evs[0].tid, 2);
    }

    #[test]
    fn chrome_format_shape() {
        let t = Tracer::enabled(8);
        t.span(Cycle::new(10), 4, 1, TraceCategory::Coherence, "dir.inv", 2);
        t.instant(Cycle::new(12), 0, TraceCategory::Spec, "rollback", 0);
        let json = chrome_trace(&t.drain());
        let arr = json.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(arr[0].get("dur").and_then(Json::as_u64), Some(4));
        assert_eq!(arr[0].get("ts").and_then(Json::as_u64), Some(6));
        assert_eq!(arr[1].get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(
            arr[1]
                .get("args")
                .and_then(|a| a.get("v"))
                .and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn tracer_handles_share_one_buffer() {
        let a = Tracer::enabled(8);
        let b = a.clone();
        a.instant(Cycle::new(1), 0, TraceCategory::Noc, "q", 0);
        b.instant(Cycle::new(2), 0, TraceCategory::Noc, "q", 0);
        assert_eq!(a.drain().len(), 2);
    }
}
