//! A minimal, dependency-free JSON value model: [`Json`].
//!
//! The build environment for this workspace is fully offline, so instead of
//! `serde`/`serde_json` the observability layer serializes through this
//! small in-tree module. It provides:
//!
//! * [`Json`] — an ordered value tree (object keys keep insertion order, so
//!   emitted documents are byte-stable across runs — a requirement for the
//!   determinism guarantees of the results schema);
//! * a compact writer ([`std::fmt::Display`]) and a pretty writer
//!   ([`Json::pretty`]);
//! * a strict parser ([`Json::parse`]) sufficient for config files and
//!   round-trip tests;
//! * the [`ToJson`] conversion trait implemented by every reportable type
//!   in the workspace.
//!
//! Numbers are kept in three lanes (`U64`, `I64`, `F64`) so counters never
//! lose precision and floats render with a decimal point (via `{:?}`),
//! which keeps `parse(render(v)) == v` for every value this workspace
//! produces.
//!
//! # Example
//!
//! ```rust
//! use tenways_sim::json::Json;
//!
//! let doc = Json::obj([
//!     ("name", Json::from("tenways")),
//!     ("cycles", Json::from(1234u64)),
//!     ("useful", Json::from(0.75)),
//! ]);
//! let text = doc.to_string();
//! assert_eq!(text, r#"{"name":"tenways","cycles":1234,"useful":0.75}"#);
//! assert_eq!(Json::parse(&text).unwrap(), doc);
//! ```

use std::fmt;

/// A JSON value. Object keys preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (counters, cycles, ids).
    U64(u64),
    /// A negative-capable integer.
    I64(i64),
    /// A floating-point number (never NaN/inf; those render as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Looks up a key in an object (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::I64(v) => Some(v),
            Json::U64(v) => i64::try_from(v).ok(),
            Json::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// The value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::F64(v) => Some(v),
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// A short name for the value's type (for error messages and the
    /// results-schema validator).
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::U64(_) => "uint",
            Json::I64(_) => "int",
            Json::F64(_) => "float",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Renders with two-space indentation and a trailing newline-free body.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        const INDENT: &str = "  ";
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&INDENT.repeat(depth + 1));
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&INDENT.repeat(depth + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
                out.push('}');
            }
            other => {
                use fmt::Write;
                let _ = write!(out, "{other}");
            }
        }
    }

    /// Parses a JSON document. Strict: trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(v) => write!(f, "{v}"),
            Json::I64(v) => write!(f, "{v}"),
            Json::F64(v) if v.is_finite() => write!(f, "{v:?}"),
            Json::F64(_) => f.write_str("null"),
            Json::Str(s) => {
                let mut buf = String::new();
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::new();
                    write_escaped(&mut buf, k);
                    write!(f, "{buf}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("non-scalar \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|_| self.err("invalid float"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::I64)
                .map_err(|_| self.err("invalid integer"))
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|_| self.err("invalid integer"))
        }
    }
}

/// Conversion into a [`Json`] tree; the workspace-wide serialization trait.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

macro_rules! impl_to_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::U64(u64::from(*self))
            }
        }
        impl From<$t> for Json {
            fn from(v: $t) -> Json {
                Json::U64(u64::from(v))
            }
        }
    )*};
}
impl_to_json_uint!(u8, u16, u32, u64);

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::U64(*self as u64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::I64(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

/// Validates `doc` against a minimal JSON-Schema-style `schema`.
///
/// Supported keywords (a deliberate subset, enough for the
/// `results/schema/*.v1.json` contracts):
///
/// * `type` — one of `"object"`, `"array"`, `"string"`, `"number"`
///   (accepts any numeric lane), `"integer"`, `"boolean"`, `"null"`.
/// * `required` — array of keys an object must contain.
/// * `properties` — per-key subschemas for object members (keys absent
///   from `properties` are allowed and unchecked).
/// * `items` — subschema every array element must satisfy.
/// * `const` — the value must equal this literal exactly.
///
/// Returns the first violation as `Err(path: message)`.
pub fn validate_schema(doc: &Json, schema: &Json) -> Result<(), String> {
    fn check(doc: &Json, schema: &Json, path: &str) -> Result<(), String> {
        if let Some(expected) = schema.get("const") {
            if doc != expected {
                return Err(format!("{path}: expected constant {expected}, got {doc}"));
            }
        }
        if let Some(ty) = schema.get("type").and_then(Json::as_str) {
            let ok = match ty {
                "object" => matches!(doc, Json::Obj(_)),
                "array" => matches!(doc, Json::Arr(_)),
                "string" => matches!(doc, Json::Str(_)),
                "number" => matches!(doc, Json::U64(_) | Json::I64(_) | Json::F64(_)),
                "integer" => matches!(doc, Json::U64(_) | Json::I64(_)),
                "boolean" => matches!(doc, Json::Bool(_)),
                "null" => matches!(doc, Json::Null),
                other => return Err(format!("{path}: schema names unknown type `{other}`")),
            };
            if !ok {
                return Err(format!("{path}: expected {ty}, got {}", doc.type_name()));
            }
        }
        if let Some(required) = schema.get("required").and_then(Json::as_array) {
            for key in required {
                let key = key
                    .as_str()
                    .ok_or_else(|| format!("{path}: `required` entries must be strings"))?;
                if doc.get(key).is_none() {
                    return Err(format!("{path}: missing required key `{key}`"));
                }
            }
        }
        if let Some(props) = schema.get("properties").and_then(Json::as_object) {
            for (key, sub) in props {
                if let Some(value) = doc.get(key) {
                    check(value, sub, &format!("{path}.{key}"))?;
                }
            }
        }
        if let Some(items) = schema.get("items") {
            if let Some(elems) = doc.as_array() {
                for (i, elem) in elems.iter().enumerate() {
                    check(elem, items, &format!("{path}[{i}]"))?;
                }
            }
        }
        Ok(())
    }
    check(doc, schema, "$")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_validation_accepts_and_rejects() {
        let schema = Json::parse(
            r#"{
                "type": "object",
                "required": ["version", "rows"],
                "properties": {
                    "version": {"type": "integer", "const": 1},
                    "rows": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["label"],
                            "properties": {"label": {"type": "string"}}
                        }
                    }
                }
            }"#,
        )
        .unwrap();
        let good = Json::parse(r#"{"version":1,"rows":[{"label":"a","extra":true}]}"#).unwrap();
        assert_eq!(validate_schema(&good, &schema), Ok(()));
        let missing = Json::parse(r#"{"version":1}"#).unwrap();
        assert!(validate_schema(&missing, &schema)
            .unwrap_err()
            .contains("rows"));
        let mistyped = Json::parse(r#"{"version":1,"rows":[{"label":7}]}"#).unwrap();
        assert!(validate_schema(&mistyped, &schema)
            .unwrap_err()
            .contains("$.rows[0].label"));
        let wrong_const = Json::parse(r#"{"version":2,"rows":[]}"#).unwrap();
        assert!(validate_schema(&wrong_const, &schema)
            .unwrap_err()
            .contains("constant"));
    }

    #[test]
    fn scalars_render_and_parse() {
        for (v, s) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::U64(42), "42"),
            (Json::I64(-7), "-7"),
            (Json::F64(0.5), "0.5"),
            (Json::Str("hi \"there\"\n".into()), r#""hi \"there\"\n""#),
        ] {
            assert_eq!(v.to_string(), s);
            assert_eq!(Json::parse(s).unwrap(), v);
        }
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        // `1.0` must not collapse to the integer `1` — round-trip typing.
        assert_eq!(Json::F64(1.0).to_string(), "1.0");
        assert_eq!(Json::parse("1.0").unwrap(), Json::F64(1.0));
        assert_eq!(Json::parse("1").unwrap(), Json::U64(1));
    }

    #[test]
    fn object_round_trip_preserves_order() {
        let doc = Json::obj([
            ("z", Json::U64(1)),
            ("a", Json::arr([Json::Null, Json::Bool(false)])),
            ("m", Json::obj([("inner", Json::Str("x".into()))])),
        ]);
        let text = doc.to_string();
        assert!(text.starts_with(r#"{"z":"#), "{text}");
        assert_eq!(Json::parse(&text).unwrap(), doc);
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let doc = Json::obj([("n", Json::U64(3)), ("f", Json::F64(2.5))]);
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("f").and_then(Json::as_f64), Some(2.5));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::U64(5).get("x"), None);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::Str("A".into()));
        let ctrl = Json::Str("\u{1}".into());
        assert_eq!(Json::parse(&ctrl.to_string()).unwrap(), ctrl);
    }

    #[test]
    fn nonfinite_floats_render_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
    }
}
