//! Lock-design microbenchmark: threads fight over one lock and a shared
//! counter, using a selectable lock implementation — the input to the lock
//! ablation (Figure 12).

use tenways_cpu::{Op, ThreadProgram};
use tenways_sim::Addr;

use crate::kernels::{impl_kernel_logic, KernelProgram, KernelStep};
use crate::layout::AddressSpace;
use crate::sync::SyncFrag;

/// Which lock algorithm the benchmark uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockKind {
    /// Test-and-test-and-set with CAS.
    Ttas,
    /// FIFO ticket lock.
    Ticket,
    /// MCS queue lock: local spinning on a per-thread node.
    Mcs,
    /// CLH queue lock: spinning on the predecessor's node.
    Clh,
}

impl LockKind {
    /// Every lock design, in canonical report order.
    pub fn all() -> [LockKind; 4] {
        [
            LockKind::Ttas,
            LockKind::Ticket,
            LockKind::Mcs,
            LockKind::Clh,
        ]
    }

    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            LockKind::Ttas => "ttas",
            LockKind::Ticket => "ticket",
            LockKind::Mcs => "mcs",
            LockKind::Clh => "clh",
        }
    }
}

/// Parameters of the lock benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockBenchParams {
    /// Number of threads contending.
    pub threads: usize,
    /// Critical sections per thread.
    pub rounds: u64,
    /// Compute cycles inside each critical section.
    pub cs_compute: u64,
    /// Compute cycles between critical sections (contention knob: 0 =
    /// maximal contention).
    pub think_compute: u64,
    /// Lock algorithm.
    pub kind: LockKind,
}

impl Default for LockBenchParams {
    fn default() -> Self {
        LockBenchParams {
            threads: 8,
            rounds: 50,
            cs_compute: 10,
            think_compute: 20,
            kind: LockKind::Ttas,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct LockAddrs {
    /// TTAS word / ticket `next_ticket` / MCS & CLH tail.
    a: Addr,
    /// Ticket `now_serving` (unused by the others).
    b: Addr,
}

/// Per-thread queue-lock state (none for the centralized locks).
#[derive(Debug, Clone, Copy)]
enum QNodes {
    /// TTAS / ticket: no per-thread node.
    None,
    /// MCS: one two-word node (successor link, locked flag).
    Mcs { node: Addr },
    /// CLH: two nodes used in alternation, since a released node may
    /// still be observed by the successor while the releaser re-enters.
    Clh { nodes: [Addr; 2], parity: bool },
}

#[derive(Debug, Clone)]
struct LockFighter {
    kind: LockKind,
    lock: LockAddrs,
    qnodes: QNodes,
    counter: Addr,
    rounds_left: u64,
    cs_compute: u64,
    think_compute: u64,
    counter_val: u64,
    /// 0 = acquire, 1 = cs load, 2 = cs store, 3 = cs compute,
    /// 4 = release, 5 = think.
    phase: u8,
}

impl LockFighter {
    fn acquire(&mut self) -> SyncFrag {
        match (self.kind, &mut self.qnodes) {
            (LockKind::Ttas, _) => SyncFrag::acquire(self.lock.a),
            (LockKind::Ticket, _) => SyncFrag::ticket_acquire(self.lock.a, self.lock.b),
            (LockKind::Mcs, QNodes::Mcs { node }) => SyncFrag::mcs_acquire(self.lock.a, *node),
            (LockKind::Clh, QNodes::Clh { nodes, parity }) => {
                *parity = !*parity;
                SyncFrag::clh_acquire(self.lock.a, nodes[*parity as usize])
            }
            (kind, nodes) => unreachable!("{kind:?} with {nodes:?}"),
        }
    }

    fn release(&self) -> SyncFrag {
        match (self.kind, &self.qnodes) {
            (LockKind::Ttas, _) => SyncFrag::release(self.lock.a),
            (LockKind::Ticket, _) => SyncFrag::ticket_release(self.lock.b),
            (LockKind::Mcs, QNodes::Mcs { node }) => SyncFrag::mcs_release(self.lock.a, *node),
            (LockKind::Clh, QNodes::Clh { nodes, parity }) => {
                SyncFrag::release(nodes[*parity as usize])
            }
            (kind, nodes) => unreachable!("{kind:?} with {nodes:?}"),
        }
    }

    fn step(&mut self, last: Option<u64>) -> KernelStep {
        match self.phase {
            0 => {
                if self.rounds_left == 0 {
                    return KernelStep::Done;
                }
                self.rounds_left -= 1;
                self.phase = 1;
                KernelStep::Sync(self.acquire())
            }
            1 => {
                self.phase = 2;
                KernelStep::Op(Op::Load {
                    addr: self.counter,
                    tag: tenways_cpu::MemTag::Data,
                    consume: true,
                })
            }
            2 => {
                self.counter_val = last.expect("counter value");
                self.phase = 3;
                KernelStep::Op(Op::store(self.counter, self.counter_val + 1))
            }
            3 => {
                self.phase = 4;
                KernelStep::Op(Op::Compute(self.cs_compute.max(1)))
            }
            4 => {
                self.phase = 5;
                KernelStep::Sync(self.release())
            }
            _ => {
                self.phase = 0;
                KernelStep::Op(Op::Compute(self.think_compute.max(1)))
            }
        }
    }
}

impl_kernel_logic!(LockFighter, "lockbench");

/// The shared addresses a lock benchmark run uses (for result inspection).
#[derive(Debug, Clone, Copy)]
pub struct LockBenchLayout {
    /// The protected counter; must equal `threads * rounds` after the run.
    pub counter: Addr,
}

/// Builds the lock benchmark programs and returns the layout for checking.
pub fn lock_bench_programs(
    params: &LockBenchParams,
) -> (Vec<Box<dyn ThreadProgram>>, LockBenchLayout) {
    let mut space = AddressSpace::new();
    let lock = LockAddrs {
        a: space.alloc_line(),
        b: space.alloc_line(),
    };
    let counter = space.alloc_line();
    let programs = (0..params.threads)
        .map(|_| {
            let qnodes = match params.kind {
                LockKind::Ttas | LockKind::Ticket => QNodes::None,
                LockKind::Mcs => QNodes::Mcs {
                    node: space.alloc_words(2).base(),
                },
                LockKind::Clh => QNodes::Clh {
                    nodes: [space.alloc_line(), space.alloc_line()],
                    parity: false,
                },
            };
            KernelProgram::boxed(Box::new(LockFighter {
                kind: params.kind,
                lock,
                qnodes,
                counter,
                rounds_left: params.rounds,
                cs_compute: params.cs_compute,
                think_compute: params.think_compute,
                counter_val: 0,
                phase: 0,
            }))
        })
        .collect();
    (programs, LockBenchLayout { counter })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenways_cpu::{ConsistencyModel, Machine, MachineSpec};
    use tenways_sim::MachineConfig;

    fn run(kind: LockKind, model: ConsistencyModel) -> (u64, u64) {
        let params = LockBenchParams {
            threads: 4,
            rounds: 10,
            kind,
            ..Default::default()
        };
        let (programs, layout) = lock_bench_programs(&params);
        let cfg = MachineConfig::builder().cores(4).build().unwrap();
        let spec = MachineSpec::baseline(model).with_machine(cfg);
        let mut m = Machine::new(&spec, programs);
        let s = m.run(10_000_000);
        assert!(s.finished, "{kind:?} under {model} hung");
        (m.mem().read(layout.counter), s.cycles)
    }

    #[test]
    fn ttas_counter_is_exact_under_all_models() {
        for model in ConsistencyModel::all() {
            let (counter, _) = run(LockKind::Ttas, model);
            assert_eq!(counter, 40, "lost increments under {model}");
        }
    }

    #[test]
    fn ticket_counter_is_exact_under_all_models() {
        for model in ConsistencyModel::all() {
            let (counter, _) = run(LockKind::Ticket, model);
            assert_eq!(counter, 40, "lost increments under {model}");
        }
    }

    #[test]
    fn mcs_counter_is_exact_under_all_models() {
        for model in ConsistencyModel::all() {
            let (counter, _) = run(LockKind::Mcs, model);
            assert_eq!(counter, 40, "lost increments under {model}");
        }
    }

    #[test]
    fn clh_counter_is_exact_under_all_models() {
        for model in ConsistencyModel::all() {
            let (counter, _) = run(LockKind::Clh, model);
            assert_eq!(counter, 40, "lost increments under {model}");
        }
    }

    #[test]
    fn queue_locks_hold_up_with_zero_think_time() {
        // Maximal contention: handoff follows handoff with no gaps, the
        // regime where a stale queue node or a missed publication fence
        // would deadlock or lose increments.
        for kind in [LockKind::Mcs, LockKind::Clh] {
            for model in ConsistencyModel::all() {
                let params = LockBenchParams {
                    threads: 4,
                    rounds: 10,
                    think_compute: 0,
                    kind,
                    ..Default::default()
                };
                let (programs, layout) = lock_bench_programs(&params);
                let cfg = MachineConfig::builder().cores(4).build().unwrap();
                let spec = MachineSpec::baseline(model).with_machine(cfg);
                let mut m = Machine::new(&spec, programs);
                let s = m.run(10_000_000);
                assert!(s.finished, "{kind:?} under {model} hung");
                assert_eq!(m.mem().read(layout.counter), 40, "{kind:?}/{model}");
            }
        }
    }
}
