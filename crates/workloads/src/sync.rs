//! Synchronization primitives built from atomics: [`SyncFrag`].
//!
//! Locks and barriers here are *program fragments* — miniature state
//! machines a workload delegates its `next_op` to while a synchronization
//! operation is in progress. They are built exclusively from the core's
//! primitive operations, so their cost (spinning, coherence ping-pong,
//! fence stalls) is simulated, not assumed:
//!
//! * **TTAS lock** — test-and-test-and-set: spin on a plain load until the
//!   lock reads free, CAS to claim, acquire fence on success.
//! * **Release** — release fence then a plain store of 0.
//! * **Sense-reversing barrier** — read the generation, fetch-add the
//!   arrival counter; the last arriver resets the counter and bumps the
//!   generation, everyone else spins on the generation word.

use tenways_cpu::{FenceKind, MemTag, Op, RmwOp};
use tenways_sim::Addr;

/// What a fragment produced this step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragStep {
    /// Feed this op to the core.
    Emit(Op),
    /// The fragment has finished.
    Done,
}

/// A synchronization fragment in progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncFrag {
    /// Acquiring a TTAS lock.
    Acquire(AcquireState),
    /// Releasing a lock.
    Release(ReleaseState),
    /// Waiting at a barrier.
    Barrier(BarrierState),
    /// Acquiring a ticket lock.
    TicketAcquire(TicketAcquireState),
    /// Releasing a ticket lock.
    TicketRelease(TicketReleaseState),
}

impl SyncFrag {
    /// Starts acquiring `lock`.
    pub fn acquire(lock: Addr) -> Self {
        SyncFrag::Acquire(AcquireState {
            lock,
            phase: AcquirePhase::TestRead,
        })
    }

    /// Starts releasing `lock`.
    pub fn release(lock: Addr) -> Self {
        SyncFrag::Release(ReleaseState {
            lock,
            fenced: false,
        })
    }

    /// Starts waiting at the barrier described by (`counter`, `generation`)
    /// with `parties` participants.
    pub fn barrier(counter: Addr, generation: Addr, parties: u64) -> Self {
        SyncFrag::Barrier(BarrierState {
            counter,
            generation,
            parties,
            my_gen: 0,
            phase: BarrierPhase::ReadGen,
        })
    }

    /// Starts acquiring a ticket lock described by its `next_ticket` and
    /// `now_serving` words.
    pub fn ticket_acquire(next_ticket: Addr, now_serving: Addr) -> Self {
        SyncFrag::TicketAcquire(TicketAcquireState {
            next_ticket,
            now_serving,
            my_ticket: 0,
            phase: TicketPhase::Draw,
        })
    }

    /// Starts releasing a ticket lock (bumps `now_serving`).
    pub fn ticket_release(now_serving: Addr) -> Self {
        SyncFrag::TicketRelease(TicketReleaseState {
            now_serving,
            fenced: false,
            bumped: false,
        })
    }

    /// Advances the fragment. `last` must be the consumed value if the
    /// previously emitted op was consume-marked, else `None`.
    pub fn next(&mut self, last: Option<u64>) -> FragStep {
        match self {
            SyncFrag::Acquire(s) => s.next(last),
            SyncFrag::Release(s) => s.next(),
            SyncFrag::Barrier(s) => s.next(last),
            SyncFrag::TicketAcquire(s) => s.next(last),
            SyncFrag::TicketRelease(s) => s.next(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TicketPhase {
    /// Fetch-add the ticket counter.
    Draw,
    /// Awaiting my ticket number, then spin on now_serving.
    Spin,
    /// Acquired: acquire fence, then done.
    Fence,
}

/// Ticket-lock acquisition: FIFO-fair, one atomic per acquisition, spins
/// on a read-shared word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TicketAcquireState {
    next_ticket: Addr,
    now_serving: Addr,
    my_ticket: u64,
    phase: TicketPhase,
}

impl TicketAcquireState {
    fn next(&mut self, last: Option<u64>) -> FragStep {
        match self.phase {
            TicketPhase::Draw => {
                self.phase = TicketPhase::Spin;
                FragStep::Emit(Op::Rmw {
                    addr: self.next_ticket,
                    rmw: RmwOp::FetchAdd(1),
                    tag: MemTag::Lock,
                    consume: true,
                })
            }
            TicketPhase::Spin => {
                match last {
                    Some(v) if self.my_ticket == 0 && v != u64::MAX => {
                        // First spin entry: `v` is my drawn ticket. Encode
                        // "drawn" by offsetting tickets by 1 internally.
                        self.my_ticket = v + 1;
                        FragStep::Emit(Op::Load {
                            addr: self.now_serving,
                            tag: MemTag::Lock,
                            consume: true,
                        })
                    }
                    Some(serving) if serving + 1 == self.my_ticket => {
                        self.phase = TicketPhase::Fence;
                        FragStep::Emit(Op::Fence(FenceKind::Acquire))
                    }
                    _ => FragStep::Emit(Op::Load {
                        addr: self.now_serving,
                        tag: MemTag::Lock,
                        consume: true,
                    }),
                }
            }
            TicketPhase::Fence => FragStep::Done,
        }
    }
}

/// Ticket-lock release: release fence, then bump `now_serving`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TicketReleaseState {
    now_serving: Addr,
    fenced: bool,
    bumped: bool,
}

impl TicketReleaseState {
    fn next(&mut self) -> FragStep {
        if !self.fenced {
            self.fenced = true;
            FragStep::Emit(Op::Fence(FenceKind::Release))
        } else if !self.bumped {
            self.bumped = true;
            FragStep::Emit(Op::Rmw {
                addr: self.now_serving,
                rmw: RmwOp::FetchAdd(1),
                tag: MemTag::Lock,
                consume: false,
            })
        } else {
            FragStep::Done
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AcquirePhase {
    /// Spin-reading the lock word.
    TestRead,
    /// Saw it free; CAS issued, awaiting the old value.
    CasIssued,
    /// CAS won; emit the acquire fence and finish.
    Fence,
}

/// TTAS lock acquisition state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcquireState {
    lock: Addr,
    phase: AcquirePhase,
}

impl AcquireState {
    fn next(&mut self, last: Option<u64>) -> FragStep {
        match self.phase {
            AcquirePhase::TestRead => match last {
                // First step, or the lock read busy: (re)read it.
                None | Some(1..) => FragStep::Emit(Op::Load {
                    addr: self.lock,
                    tag: MemTag::Lock,
                    consume: true,
                }),
                Some(0) => {
                    self.phase = AcquirePhase::CasIssued;
                    FragStep::Emit(Op::Rmw {
                        addr: self.lock,
                        rmw: RmwOp::Cas {
                            expected: 0,
                            desired: 1,
                        },
                        tag: MemTag::Lock,
                        consume: true,
                    })
                }
            },
            AcquirePhase::CasIssued => {
                if last == Some(0) {
                    self.phase = AcquirePhase::Fence;
                    FragStep::Emit(Op::Fence(FenceKind::Acquire))
                } else {
                    // Lost the race: back to spinning.
                    self.phase = AcquirePhase::TestRead;
                    FragStep::Emit(Op::Load {
                        addr: self.lock,
                        tag: MemTag::Lock,
                        consume: true,
                    })
                }
            }
            AcquirePhase::Fence => FragStep::Done,
        }
    }
}

/// Lock release state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReleaseState {
    lock: Addr,
    fenced: bool,
}

impl ReleaseState {
    fn next(&mut self) -> FragStep {
        if !self.fenced {
            self.fenced = true;
            FragStep::Emit(Op::Fence(FenceKind::Release))
        } else if self.lock.0 != u64::MAX {
            let lock = self.lock;
            self.lock = Addr(u64::MAX); // consumed
            FragStep::Emit(Op::Store {
                addr: lock,
                value: 0,
                tag: MemTag::Lock,
            })
        } else {
            FragStep::Done
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BarrierPhase {
    ReadGen,
    Arrive,
    LastResetCounter,
    LastFence,
    LastBumpGen,
    Spin,
    Finished,
}

/// Sense-reversing barrier state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierState {
    counter: Addr,
    generation: Addr,
    parties: u64,
    my_gen: u64,
    phase: BarrierPhase,
}

impl BarrierState {
    fn next(&mut self, last: Option<u64>) -> FragStep {
        match self.phase {
            BarrierPhase::ReadGen => {
                self.phase = BarrierPhase::Arrive;
                FragStep::Emit(Op::Load {
                    addr: self.generation,
                    tag: MemTag::Barrier,
                    consume: true,
                })
            }
            BarrierPhase::Arrive => {
                self.my_gen = last.expect("generation value consumed");
                self.phase = BarrierPhase::LastResetCounter;
                FragStep::Emit(Op::Rmw {
                    addr: self.counter,
                    rmw: RmwOp::FetchAdd(1),
                    tag: MemTag::Barrier,
                    consume: true,
                })
            }
            BarrierPhase::LastResetCounter => {
                let arrivals_before_me = last.expect("counter value consumed");
                if arrivals_before_me + 1 == self.parties {
                    // Last arriver: reset the counter, then bump the
                    // generation to wake everyone.
                    self.phase = BarrierPhase::LastFence;
                    FragStep::Emit(Op::Store {
                        addr: self.counter,
                        value: 0,
                        tag: MemTag::Barrier,
                    })
                } else {
                    self.phase = BarrierPhase::Spin;
                    FragStep::Emit(Op::Load {
                        addr: self.generation,
                        tag: MemTag::Barrier,
                        consume: true,
                    })
                }
            }
            BarrierPhase::LastFence => {
                // The counter reset must be globally visible before the
                // generation bump releases the spinners — under RMO the
                // store would otherwise still be in the store buffer when
                // re-arrivals read the counter (a real weak-ordering bug
                // this simulator reproduces).
                self.phase = BarrierPhase::LastBumpGen;
                FragStep::Emit(Op::Fence(FenceKind::Full))
            }
            BarrierPhase::LastBumpGen => {
                self.phase = BarrierPhase::Finished;
                FragStep::Emit(Op::Rmw {
                    addr: self.generation,
                    rmw: RmwOp::FetchAdd(1),
                    tag: MemTag::Barrier,
                    consume: false,
                })
            }
            BarrierPhase::Spin => {
                if last.expect("generation value consumed") != self.my_gen {
                    self.phase = BarrierPhase::Finished;
                    FragStep::Emit(Op::Fence(FenceKind::Acquire))
                } else {
                    FragStep::Emit(Op::Load {
                        addr: self.generation,
                        tag: MemTag::Barrier,
                        consume: true,
                    })
                }
            }
            BarrierPhase::Finished => FragStep::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Steps a fragment against a fake functional memory, emulating what
    /// the core+memory would do, and returns the ops emitted.
    fn run_frag(frag: &mut SyncFrag, mem: &mut std::collections::BTreeMap<u64, u64>) -> Vec<Op> {
        let mut ops = Vec::new();
        let mut last = None;
        for _ in 0..100 {
            match frag.next(last) {
                FragStep::Done => return ops,
                FragStep::Emit(op) => {
                    last = match op {
                        Op::Load { addr, consume, .. } => {
                            consume.then(|| mem.get(&addr.0).copied().unwrap_or(0))
                        }
                        Op::Rmw {
                            addr, rmw, consume, ..
                        } => {
                            let old = mem.get(&addr.0).copied().unwrap_or(0);
                            mem.insert(addr.0, rmw.apply(old));
                            consume.then_some(old)
                        }
                        Op::Store { addr, value, .. } => {
                            mem.insert(addr.0, value);
                            None
                        }
                        _ => None,
                    };
                    ops.push(op);
                }
            }
        }
        panic!("fragment did not finish: {frag:?}");
    }

    #[test]
    fn acquire_free_lock_is_three_ops() {
        let mut mem = std::collections::BTreeMap::new();
        let mut f = SyncFrag::acquire(Addr(0x40));
        let ops = run_frag(&mut f, &mut mem);
        assert_eq!(ops.len(), 3, "load, cas, fence: {ops:?}");
        assert!(matches!(ops[0], Op::Load { .. }));
        assert!(matches!(ops[1], Op::Rmw { .. }));
        assert_eq!(ops[2], Op::Fence(FenceKind::Acquire));
        assert_eq!(mem.get(&0x40), Some(&1), "lock taken");
    }

    #[test]
    fn acquire_busy_lock_spins() {
        let mut mem = std::collections::BTreeMap::new();
        mem.insert(0x40, 1);
        let mut f = SyncFrag::acquire(Addr(0x40));
        // Drive 10 steps: all should be spin loads.
        let mut last = None;
        for _ in 0..10 {
            let FragStep::Emit(op) = f.next(last) else {
                panic!("finished on busy lock")
            };
            assert!(
                matches!(
                    op,
                    Op::Load {
                        tag: MemTag::Lock,
                        consume: true,
                        ..
                    }
                ),
                "{op:?}"
            );
            last = Some(1);
        }
        // Lock freed: next read sees 0 and the CAS follows.
        let FragStep::Emit(op) = f.next(Some(0)) else {
            panic!()
        };
        assert!(matches!(op, Op::Rmw { .. }));
    }

    #[test]
    fn lost_cas_race_returns_to_spinning() {
        let mut f = SyncFrag::acquire(Addr(0x40));
        let _ = f.next(None); // load
        let _ = f.next(Some(0)); // cas issued
                                 // CAS returned old value 1: someone else won.
        let FragStep::Emit(op) = f.next(Some(1)) else {
            panic!()
        };
        assert!(matches!(op, Op::Load { .. }), "back to spinning: {op:?}");
    }

    #[test]
    fn release_is_fence_then_store() {
        let mut mem = std::collections::BTreeMap::new();
        mem.insert(0x40, 1);
        let mut f = SyncFrag::release(Addr(0x40));
        let ops = run_frag(&mut f, &mut mem);
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0], Op::Fence(FenceKind::Release));
        assert!(matches!(ops[1], Op::Store { value: 0, .. }));
        assert_eq!(mem.get(&0x40), Some(&0));
    }

    #[test]
    fn barrier_last_arriver_bumps_generation() {
        let mut mem = std::collections::BTreeMap::new();
        mem.insert(0x80, 1); // counter: one of two already arrived
        let mut f = SyncFrag::barrier(Addr(0x80), Addr(0xc0), 2);
        let ops = run_frag(&mut f, &mut mem);
        // read gen, fetch-add counter, reset counter, full fence, bump gen.
        assert_eq!(ops.len(), 5, "{ops:?}");
        assert_eq!(ops[3], Op::Fence(FenceKind::Full));
        assert_eq!(mem.get(&0x80), Some(&0), "counter reset");
        assert_eq!(mem.get(&0xc0), Some(&1), "generation bumped");
    }

    #[test]
    fn barrier_early_arriver_spins_until_generation_changes() {
        let mut f = SyncFrag::barrier(Addr(0x80), Addr(0xc0), 2);
        let FragStep::Emit(_) = f.next(None) else {
            panic!()
        }; // read gen
        let FragStep::Emit(_) = f.next(Some(0)) else {
            panic!()
        }; // arrive (gen 0)
           // We are arrival 0 of 2: spin on generation.
        let FragStep::Emit(op) = f.next(Some(0)) else {
            panic!()
        };
        assert!(matches!(
            op,
            Op::Load {
                tag: MemTag::Barrier,
                consume: true,
                ..
            }
        ));
        // Generation still 0: keep spinning.
        let FragStep::Emit(_) = f.next(Some(0)) else {
            panic!()
        };
        // Generation advanced: acquire fence, then done.
        let FragStep::Emit(op) = f.next(Some(1)) else {
            panic!()
        };
        assert_eq!(op, Op::Fence(FenceKind::Acquire));
        assert_eq!(f.next(None), FragStep::Done);
    }

    #[test]
    fn two_party_barrier_full_protocol() {
        // Interleave two barrier fragments against one memory to check the
        // protocol end to end.
        let mut mem = std::collections::BTreeMap::new();
        let mut a = SyncFrag::barrier(Addr(0x80), Addr(0xc0), 2);
        // A arrives first and spins.
        let mut last_a = None;
        for _ in 0..3 {
            if let FragStep::Emit(op) = a.next(last_a) {
                last_a = apply(&mut mem, op);
            }
        }
        // B arrives and releases.
        let mut b = SyncFrag::barrier(Addr(0x80), Addr(0xc0), 2);
        let mut last_b = None;
        loop {
            match b.next(last_b) {
                FragStep::Done => break,
                FragStep::Emit(op) => last_b = apply(&mut mem, op),
            }
        }
        // A now observes the new generation and finishes.
        let mut done = false;
        for _ in 0..5 {
            match a.next(last_a) {
                FragStep::Done => {
                    done = true;
                    break;
                }
                FragStep::Emit(op) => last_a = apply(&mut mem, op),
            }
        }
        assert!(done, "first arriver must be released");
    }

    fn apply(mem: &mut std::collections::BTreeMap<u64, u64>, op: Op) -> Option<u64> {
        match op {
            Op::Load { addr, consume, .. } => {
                consume.then(|| mem.get(&addr.0).copied().unwrap_or(0))
            }
            Op::Rmw {
                addr, rmw, consume, ..
            } => {
                let old = mem.get(&addr.0).copied().unwrap_or(0);
                mem.insert(addr.0, rmw.apply(old));
                consume.then_some(old)
            }
            Op::Store { addr, value, .. } => {
                mem.insert(addr.0, value);
                None
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod ticket_tests {
    use super::*;
    use std::collections::BTreeMap;

    fn apply(mem: &mut BTreeMap<u64, u64>, op: Op) -> Option<u64> {
        match op {
            Op::Load { addr, consume, .. } => {
                consume.then(|| mem.get(&addr.0).copied().unwrap_or(0))
            }
            Op::Rmw {
                addr, rmw, consume, ..
            } => {
                let old = mem.get(&addr.0).copied().unwrap_or(0);
                mem.insert(addr.0, rmw.apply(old));
                consume.then_some(old)
            }
            Op::Store { addr, value, .. } => {
                mem.insert(addr.0, value);
                None
            }
            _ => None,
        }
    }

    #[test]
    fn ticket_uncontended_acquire_release() {
        let mut mem = BTreeMap::new();
        let (next, serving) = (Addr(0x40), Addr(0x80));
        let mut f = SyncFrag::ticket_acquire(next, serving);
        let mut last = None;
        let mut steps = 0;
        loop {
            match f.next(last) {
                FragStep::Done => break,
                FragStep::Emit(op) => last = apply(&mut mem, op),
            }
            steps += 1;
            assert!(steps < 20, "uncontended acquire must be quick");
        }
        assert_eq!(mem.get(&0x40), Some(&1), "ticket drawn");
        let mut r = SyncFrag::ticket_release(serving);
        let mut last = None;
        loop {
            match r.next(last) {
                FragStep::Done => break,
                FragStep::Emit(op) => last = apply(&mut mem, op),
            }
        }
        assert_eq!(mem.get(&0x80), Some(&1), "now_serving bumped");
    }

    #[test]
    fn ticket_queues_fairly() {
        let mut mem = BTreeMap::new();
        let (next, serving) = (Addr(0x40), Addr(0x80));
        // A draws ticket 0, B draws ticket 1.
        let mut a = SyncFrag::ticket_acquire(next, serving);
        let mut b = SyncFrag::ticket_acquire(next, serving);
        let mut la = None;
        let mut lb = None;
        // A: draw + first spin -> acquires (serving == 0).
        for _ in 0..4 {
            if let FragStep::Emit(op) = a.next(la) {
                la = apply(&mut mem, op);
            }
        }
        // B: draw + spins (serving == 0, ticket 1): must NOT acquire.
        let mut b_done = false;
        for _ in 0..6 {
            match b.next(lb) {
                FragStep::Done => b_done = true,
                FragStep::Emit(op) => lb = apply(&mut mem, op),
            }
        }
        assert!(!b_done, "B must wait for A's release");
        // A releases.
        let mut r = SyncFrag::ticket_release(serving);
        let mut lr = None;
        loop {
            match r.next(lr) {
                FragStep::Done => break,
                FragStep::Emit(op) => lr = apply(&mut mem, op),
            }
        }
        // B now gets in.
        for _ in 0..4 {
            match b.next(lb) {
                FragStep::Done => {
                    b_done = true;
                    break;
                }
                FragStep::Emit(op) => lb = apply(&mut mem, op),
            }
        }
        assert!(b_done, "B must acquire after release");
    }
}
