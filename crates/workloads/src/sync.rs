//! Synchronization primitives built from atomics: [`SyncFrag`].
//!
//! Locks and barriers here are *program fragments* — miniature state
//! machines a workload delegates its `next_op` to while a synchronization
//! operation is in progress. They are built exclusively from the core's
//! primitive operations, so their cost (spinning, coherence ping-pong,
//! fence stalls) is simulated, not assumed:
//!
//! * **TTAS lock** — test-and-test-and-set: spin on a plain load until the
//!   lock reads free, CAS to claim, acquire fence on success.
//! * **Release** — release fence then a plain store of 0.
//! * **Sense-reversing barrier** — read the generation, fetch-add the
//!   arrival counter; the last arriver resets the counter and bumps the
//!   generation, everyone else spins on the generation word.
//! * **Ticket lock** — FIFO-fair: fetch-add a ticket, spin on `now_serving`.
//! * **MCS queue lock** — swap a per-thread queue node into the tail, link
//!   behind the predecessor, spin on the *local* node flag; release hands
//!   off by storing into the successor's node.
//! * **CLH queue lock** — swap into the tail and spin on the
//!   *predecessor's* node; release is a plain store to one's own node.
//! * **RCU grace period** — bump the global generation, then wait until
//!   every online reader has passed a quiescent state at or after it.
//! * **Hazard-pointer protect** — read, publish the hazard, fence,
//!   re-validate; the result is the safely protected pointer.
//! * **Work-stealing deque** — Chase-Lev push/take/steal over `top` /
//!   `bottom` words, with take/steal racing through CAS on `top`.
//!
//! Queue-node words, tickets and generations are carried in explicit
//! phase/field state — no in-band sentinel values (a lesson learned:
//! earlier revisions encoded "store consumed" as `Addr(u64::MAX)` and
//! offset tickets by one, which silently broke at the numeric boundary).

use tenways_cpu::{FenceKind, MemTag, Op, RmwOp};
use tenways_sim::Addr;

use crate::layout::WORD;

/// A tagged store (the [`Op::store`] convenience is Data-tagged only).
fn store(addr: Addr, value: u64, tag: MemTag) -> Op {
    Op::Store { addr, value, tag }
}

/// What a fragment produced this step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragStep {
    /// Feed this op to the core.
    Emit(Op),
    /// The fragment has finished.
    Done,
}

/// A synchronization fragment in progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncFrag {
    /// Acquiring a TTAS lock.
    Acquire(AcquireState),
    /// Releasing a lock.
    Release(ReleaseState),
    /// Waiting at a barrier.
    Barrier(BarrierState),
    /// Acquiring a ticket lock.
    TicketAcquire(TicketAcquireState),
    /// Releasing a ticket lock.
    TicketRelease(TicketReleaseState),
    /// Acquiring an MCS queue lock.
    McsAcquire(McsAcquireState),
    /// Releasing an MCS queue lock.
    McsRelease(McsReleaseState),
    /// Acquiring a CLH queue lock (release reuses [`SyncFrag::release`]
    /// on the node the acquire spun into).
    ClhAcquire(ClhAcquireState),
    /// An RCU-style `synchronize_rcu()`: grace-period wait.
    RcuSync(RcuSyncState),
    /// Hazard-pointer protect: publish, fence, re-validate.
    HazardProtect(HazardProtectState),
    /// Chase-Lev deque: owner push.
    DequePush(DequePushState),
    /// Chase-Lev deque: owner take (LIFO end).
    DequeTake(DequeTakeState),
    /// Chase-Lev deque: thief steal (FIFO end).
    DequeSteal(DequeStealState),
}

impl SyncFrag {
    /// Starts acquiring `lock`.
    pub fn acquire(lock: Addr) -> Self {
        SyncFrag::Acquire(AcquireState {
            lock,
            phase: AcquirePhase::TestRead,
        })
    }

    /// Starts releasing `lock`.
    pub fn release(lock: Addr) -> Self {
        SyncFrag::Release(ReleaseState {
            lock,
            fenced: false,
            stored: false,
        })
    }

    /// Starts waiting at the barrier described by (`counter`, `generation`)
    /// with `parties` participants.
    pub fn barrier(counter: Addr, generation: Addr, parties: u64) -> Self {
        SyncFrag::Barrier(BarrierState {
            counter,
            generation,
            parties,
            my_gen: 0,
            phase: BarrierPhase::ReadGen,
        })
    }

    /// Starts acquiring a ticket lock described by its `next_ticket` and
    /// `now_serving` words.
    pub fn ticket_acquire(next_ticket: Addr, now_serving: Addr) -> Self {
        SyncFrag::TicketAcquire(TicketAcquireState {
            next_ticket,
            now_serving,
            my_ticket: 0,
            phase: TicketPhase::Draw,
        })
    }

    /// Starts releasing a ticket lock (bumps `now_serving`).
    pub fn ticket_release(now_serving: Addr) -> Self {
        SyncFrag::TicketRelease(TicketReleaseState {
            now_serving,
            fenced: false,
            bumped: false,
        })
    }

    /// Starts acquiring an MCS lock whose tail word is `tail`, queueing
    /// this thread's two-word `node` (word 0: successor link, word 1:
    /// locked flag).
    pub fn mcs_acquire(tail: Addr, node: Addr) -> Self {
        SyncFrag::McsAcquire(McsAcquireState {
            tail,
            node,
            phase: McsAcquirePhase::InitNext,
        })
    }

    /// Starts releasing an MCS lock previously acquired through `node`.
    pub fn mcs_release(tail: Addr, node: Addr) -> Self {
        SyncFrag::McsRelease(McsReleaseState {
            tail,
            node,
            phase: McsReleasePhase::FenceRel,
        })
    }

    /// Starts acquiring a CLH lock whose tail word is `tail`, publishing
    /// this thread's one-word `node`. Release the lock by running
    /// [`SyncFrag::release`] on the same node.
    pub fn clh_acquire(tail: Addr, node: Addr) -> Self {
        SyncFrag::ClhAcquire(ClhAcquireState {
            tail,
            node,
            pred: 0,
            phase: ClhAcquirePhase::InitLocked,
        })
    }

    /// Starts an RCU grace-period wait. `slots` is the base of a
    /// per-thread reader-slot array with `stride` bytes per thread (word
    /// 0: online flag, word 1: last quiescent generation); `me` is this
    /// thread's own slot index, which the scan skips.
    pub fn rcu_sync(gen: Addr, slots: Addr, stride: u64, threads: u64, me: u64) -> Self {
        SyncFrag::RcuSync(RcuSyncState {
            gen,
            slots,
            stride,
            threads,
            me,
            target: 0,
            idx: 0,
            phase: RcuSyncPhase::Fence,
        })
    }

    /// Starts a hazard-pointer protect of whatever `ptr` points at,
    /// publishing the hazard in `slot`. The fragment's [`result`] is the
    /// safely pinned pointer value.
    ///
    /// [`result`]: SyncFrag::result
    pub fn hazard_protect(ptr: Addr, slot: Addr) -> Self {
        SyncFrag::HazardProtect(HazardProtectState {
            ptr,
            slot,
            candidate: 0,
            phase: HazardPhase::ReadPtr,
        })
    }

    /// Starts an owner-side push of `task` onto a Chase-Lev deque.
    pub fn deque_push(deque: DequeAddrs, task: u64) -> Self {
        SyncFrag::DequePush(DequePushState {
            deque,
            task,
            bottom: 0,
            phase: DequePushPhase::ReadBottom,
        })
    }

    /// Starts an owner-side take from the LIFO end of a Chase-Lev deque.
    /// On success the claimed task is executed in place: its `claimed`
    /// word and the global `executed` counter are bumped. [`result`] is 1
    /// if a task was taken, 0 if the deque was empty.
    ///
    /// [`result`]: SyncFrag::result
    pub fn deque_take(deque: DequeAddrs, claimed: Addr, executed: Addr) -> Self {
        SyncFrag::DequeTake(DequeTakeState {
            deque,
            claimed,
            executed,
            b: 0,
            t: 0,
            task: 0,
            took: false,
            phase: DequeTakePhase::ReadBottom,
        })
    }

    /// Starts a thief-side steal from the FIFO end of a Chase-Lev deque.
    /// Same execution/result convention as [`SyncFrag::deque_take`].
    pub fn deque_steal(deque: DequeAddrs, claimed: Addr, executed: Addr) -> Self {
        SyncFrag::DequeSteal(DequeStealState {
            deque,
            claimed,
            executed,
            t: 0,
            task: 0,
            took: false,
            phase: DequeStealPhase::ReadTop,
        })
    }

    /// Advances the fragment. `last` must be the consumed value if the
    /// previously emitted op was consume-marked, else `None`.
    pub fn next(&mut self, last: Option<u64>) -> FragStep {
        match self {
            SyncFrag::Acquire(s) => s.next(last),
            SyncFrag::Release(s) => s.next(),
            SyncFrag::Barrier(s) => s.next(last),
            SyncFrag::TicketAcquire(s) => s.next(last),
            SyncFrag::TicketRelease(s) => s.next(),
            SyncFrag::McsAcquire(s) => s.next(last),
            SyncFrag::McsRelease(s) => s.next(last),
            SyncFrag::ClhAcquire(s) => s.next(last),
            SyncFrag::RcuSync(s) => s.next(last),
            SyncFrag::HazardProtect(s) => s.next(last),
            SyncFrag::DequePush(s) => s.next(last),
            SyncFrag::DequeTake(s) => s.next(last),
            SyncFrag::DequeSteal(s) => s.next(last),
        }
    }

    /// The value a finished fragment hands back to its kernel: the pinned
    /// pointer for [`SyncFrag::hazard_protect`], 1/0 took-a-task for the
    /// deque take/steal fragments, `None` for everything else. Only
    /// meaningful after [`SyncFrag::next`] returned [`FragStep::Done`].
    pub fn result(&self) -> Option<u64> {
        match self {
            SyncFrag::HazardProtect(s) => Some(s.candidate),
            SyncFrag::DequeTake(s) => Some(s.took as u64),
            SyncFrag::DequeSteal(s) => Some(s.took as u64),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TicketPhase {
    /// Fetch-add the ticket counter.
    Draw,
    /// The drawn ticket arrives; record it and start spinning.
    TakeTicket,
    /// Spinning on now_serving with my recorded ticket.
    Spin,
    /// Acquired: acquire fence, then done.
    Fence,
}

/// Ticket-lock acquisition: FIFO-fair, one atomic per acquisition, spins
/// on a read-shared word.
///
/// The drawn ticket is held verbatim in `my_ticket` once the
/// `TakeTicket` phase consumes it — every ticket value, including 0 and
/// `u64::MAX`, is valid, and the spin test is exact equality (an earlier
/// revision offset tickets by one to reserve 0 as "not yet drawn", which
/// livelocked on ticket `u64::MAX` and overflowed on `serving + 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TicketAcquireState {
    next_ticket: Addr,
    now_serving: Addr,
    my_ticket: u64,
    phase: TicketPhase,
}

impl TicketAcquireState {
    fn next(&mut self, last: Option<u64>) -> FragStep {
        match self.phase {
            TicketPhase::Draw => {
                self.phase = TicketPhase::TakeTicket;
                FragStep::Emit(Op::Rmw {
                    addr: self.next_ticket,
                    rmw: RmwOp::FetchAdd(1),
                    tag: MemTag::Lock,
                    consume: true,
                })
            }
            TicketPhase::TakeTicket => {
                self.my_ticket = last.expect("drawn ticket consumed");
                self.phase = TicketPhase::Spin;
                FragStep::Emit(Op::Load {
                    addr: self.now_serving,
                    tag: MemTag::Lock,
                    consume: true,
                })
            }
            TicketPhase::Spin => {
                if last.expect("now_serving consumed") == self.my_ticket {
                    self.phase = TicketPhase::Fence;
                    FragStep::Emit(Op::Fence(FenceKind::Acquire))
                } else {
                    FragStep::Emit(Op::Load {
                        addr: self.now_serving,
                        tag: MemTag::Lock,
                        consume: true,
                    })
                }
            }
            TicketPhase::Fence => FragStep::Done,
        }
    }
}

/// Ticket-lock release: release fence, then bump `now_serving`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TicketReleaseState {
    now_serving: Addr,
    fenced: bool,
    bumped: bool,
}

impl TicketReleaseState {
    fn next(&mut self) -> FragStep {
        if !self.fenced {
            self.fenced = true;
            FragStep::Emit(Op::Fence(FenceKind::Release))
        } else if !self.bumped {
            self.bumped = true;
            FragStep::Emit(Op::Rmw {
                addr: self.now_serving,
                rmw: RmwOp::FetchAdd(1),
                tag: MemTag::Lock,
                consume: false,
            })
        } else {
            FragStep::Done
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AcquirePhase {
    /// Spin-reading the lock word.
    TestRead,
    /// Saw it free; CAS issued, awaiting the old value.
    CasIssued,
    /// CAS won; emit the acquire fence and finish.
    Fence,
}

/// TTAS lock acquisition state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcquireState {
    lock: Addr,
    phase: AcquirePhase,
}

impl AcquireState {
    fn next(&mut self, last: Option<u64>) -> FragStep {
        match self.phase {
            AcquirePhase::TestRead => match last {
                // First step, or the lock read busy: (re)read it.
                None | Some(1..) => FragStep::Emit(Op::Load {
                    addr: self.lock,
                    tag: MemTag::Lock,
                    consume: true,
                }),
                Some(0) => {
                    self.phase = AcquirePhase::CasIssued;
                    FragStep::Emit(Op::Rmw {
                        addr: self.lock,
                        rmw: RmwOp::Cas {
                            expected: 0,
                            desired: 1,
                        },
                        tag: MemTag::Lock,
                        consume: true,
                    })
                }
            },
            AcquirePhase::CasIssued => {
                if last == Some(0) {
                    self.phase = AcquirePhase::Fence;
                    FragStep::Emit(Op::Fence(FenceKind::Acquire))
                } else {
                    // Lost the race: back to spinning.
                    self.phase = AcquirePhase::TestRead;
                    FragStep::Emit(Op::Load {
                        addr: self.lock,
                        tag: MemTag::Lock,
                        consume: true,
                    })
                }
            }
            AcquirePhase::Fence => FragStep::Done,
        }
    }
}

/// Lock release state.
///
/// Progress is tracked by explicit flags; the lock address stays intact
/// for the fragment's whole life (an earlier revision overwrote it with
/// `Addr(u64::MAX)` as a "consumed" marker, which made a lock legitimately
/// placed at that address release twice and never finish).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReleaseState {
    lock: Addr,
    fenced: bool,
    stored: bool,
}

impl ReleaseState {
    fn next(&mut self) -> FragStep {
        if !self.fenced {
            self.fenced = true;
            FragStep::Emit(Op::Fence(FenceKind::Release))
        } else if !self.stored {
            self.stored = true;
            FragStep::Emit(Op::Store {
                addr: self.lock,
                value: 0,
                tag: MemTag::Lock,
            })
        } else {
            FragStep::Done
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BarrierPhase {
    ReadGen,
    Arrive,
    LastResetCounter,
    LastFence,
    LastBumpGen,
    Spin,
    Finished,
}

/// Sense-reversing barrier state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierState {
    counter: Addr,
    generation: Addr,
    parties: u64,
    my_gen: u64,
    phase: BarrierPhase,
}

impl BarrierState {
    fn next(&mut self, last: Option<u64>) -> FragStep {
        match self.phase {
            BarrierPhase::ReadGen => {
                self.phase = BarrierPhase::Arrive;
                FragStep::Emit(Op::Load {
                    addr: self.generation,
                    tag: MemTag::Barrier,
                    consume: true,
                })
            }
            BarrierPhase::Arrive => {
                self.my_gen = last.expect("generation value consumed");
                self.phase = BarrierPhase::LastResetCounter;
                FragStep::Emit(Op::Rmw {
                    addr: self.counter,
                    rmw: RmwOp::FetchAdd(1),
                    tag: MemTag::Barrier,
                    consume: true,
                })
            }
            BarrierPhase::LastResetCounter => {
                let arrivals_before_me = last.expect("counter value consumed");
                // Wrapping add: the barrier must keep working even when
                // the arrival counter sits at the numeric boundary (the
                // non-wrapping `+ 1` here used to abort in debug builds).
                if arrivals_before_me.wrapping_add(1) == self.parties {
                    // Last arriver: reset the counter, then bump the
                    // generation to wake everyone.
                    self.phase = BarrierPhase::LastFence;
                    FragStep::Emit(Op::Store {
                        addr: self.counter,
                        value: 0,
                        tag: MemTag::Barrier,
                    })
                } else {
                    self.phase = BarrierPhase::Spin;
                    FragStep::Emit(Op::Load {
                        addr: self.generation,
                        tag: MemTag::Barrier,
                        consume: true,
                    })
                }
            }
            BarrierPhase::LastFence => {
                // The counter reset must be globally visible before the
                // generation bump releases the spinners — under RMO the
                // store would otherwise still be in the store buffer when
                // re-arrivals read the counter (a real weak-ordering bug
                // this simulator reproduces).
                self.phase = BarrierPhase::LastBumpGen;
                FragStep::Emit(Op::Fence(FenceKind::Full))
            }
            BarrierPhase::LastBumpGen => {
                self.phase = BarrierPhase::Finished;
                FragStep::Emit(Op::Rmw {
                    addr: self.generation,
                    rmw: RmwOp::FetchAdd(1),
                    tag: MemTag::Barrier,
                    consume: false,
                })
            }
            BarrierPhase::Spin => {
                if last.expect("generation value consumed") != self.my_gen {
                    self.phase = BarrierPhase::Finished;
                    FragStep::Emit(Op::Fence(FenceKind::Acquire))
                } else {
                    FragStep::Emit(Op::Load {
                        addr: self.generation,
                        tag: MemTag::Barrier,
                        consume: true,
                    })
                }
            }
            BarrierPhase::Finished => FragStep::Done,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum McsAcquirePhase {
    InitNext,
    InitLocked,
    PubFence,
    SwapTail,
    Link,
    Spin,
    Finished,
}

/// MCS queue-lock acquisition.
///
/// The node is two words on the thread's own cache line: word 0 is the
/// successor link (0 = none; queue-node addresses are never 0 because the
/// address space starts above the null page), word 1 the locked flag the
/// thread spins on locally. A release fence publishes the node-init
/// stores before the tail swap: the swap executes against memory directly
/// (it does not queue behind the store buffer), so without the fence a
/// successor could learn this node's address from the swapped tail and
/// link into it — and the releaser could hand off through that link —
/// all before the init stores drain, letting a stale `next = 0` or
/// `locked = 1` land on top of them (the `lock_litmus` interleaving
/// suite exhibits exactly this under store-order relaxation). The fence
/// is one-way (no store-buffer drain in-simulator, zero cost under the
/// Schweizer calibration) but makes the emitted stream a portable MCS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McsAcquireState {
    tail: Addr,
    node: Addr,
    phase: McsAcquirePhase,
}

impl McsAcquireState {
    fn next(&mut self, last: Option<u64>) -> FragStep {
        match self.phase {
            McsAcquirePhase::InitNext => {
                self.phase = McsAcquirePhase::InitLocked;
                FragStep::Emit(store(self.node, 0, MemTag::Lock))
            }
            McsAcquirePhase::InitLocked => {
                self.phase = McsAcquirePhase::PubFence;
                FragStep::Emit(store(self.node.offset(WORD), 1, MemTag::Lock))
            }
            McsAcquirePhase::PubFence => {
                self.phase = McsAcquirePhase::SwapTail;
                FragStep::Emit(Op::Fence(FenceKind::Release))
            }
            McsAcquirePhase::SwapTail => {
                self.phase = McsAcquirePhase::Link;
                FragStep::Emit(Op::Rmw {
                    addr: self.tail,
                    rmw: RmwOp::Swap(self.node.0),
                    tag: MemTag::Lock,
                    consume: true,
                })
            }
            McsAcquirePhase::Link => {
                let pred = last.expect("old tail consumed");
                if pred == 0 {
                    // Queue was empty: the lock is ours immediately.
                    self.phase = McsAcquirePhase::Finished;
                    FragStep::Emit(Op::Fence(FenceKind::Acquire))
                } else {
                    self.phase = McsAcquirePhase::Spin;
                    FragStep::Emit(store(Addr(pred), self.node.0, MemTag::Lock))
                }
            }
            McsAcquirePhase::Spin => match last {
                Some(0) => {
                    self.phase = McsAcquirePhase::Finished;
                    FragStep::Emit(Op::Fence(FenceKind::Acquire))
                }
                // First spin entry (after the link store) or still locked.
                _ => FragStep::Emit(Op::Load {
                    addr: self.node.offset(WORD),
                    tag: MemTag::Lock,
                    consume: true,
                }),
            },
            McsAcquirePhase::Finished => FragStep::Done,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum McsReleasePhase {
    FenceRel,
    ReadNext,
    CheckNext,
    CheckCas,
    SpinNext,
    Finished,
}

/// MCS queue-lock release: hand off to the linked successor, or CAS the
/// tail back to empty; if the CAS loses, a successor is mid-link — wait
/// for the link to appear, then hand off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McsReleaseState {
    tail: Addr,
    node: Addr,
    phase: McsReleasePhase,
}

impl McsReleaseState {
    fn next(&mut self, last: Option<u64>) -> FragStep {
        match self.phase {
            McsReleasePhase::FenceRel => {
                self.phase = McsReleasePhase::ReadNext;
                FragStep::Emit(Op::Fence(FenceKind::Release))
            }
            McsReleasePhase::ReadNext => {
                self.phase = McsReleasePhase::CheckNext;
                FragStep::Emit(Op::Load {
                    addr: self.node,
                    tag: MemTag::Lock,
                    consume: true,
                })
            }
            McsReleasePhase::CheckNext => {
                let succ = last.expect("successor link consumed");
                if succ != 0 {
                    self.phase = McsReleasePhase::Finished;
                    FragStep::Emit(store(Addr(succ).offset(WORD), 0, MemTag::Lock))
                } else {
                    self.phase = McsReleasePhase::CheckCas;
                    FragStep::Emit(Op::Rmw {
                        addr: self.tail,
                        rmw: RmwOp::Cas {
                            expected: self.node.0,
                            desired: 0,
                        },
                        tag: MemTag::Lock,
                        consume: true,
                    })
                }
            }
            McsReleasePhase::CheckCas => {
                if last == Some(self.node.0) {
                    // CAS won: the queue is empty again.
                    self.phase = McsReleasePhase::Finished;
                    FragStep::Done
                } else {
                    // A successor swapped the tail but has not linked in
                    // yet; its link store is coming.
                    self.phase = McsReleasePhase::SpinNext;
                    FragStep::Emit(Op::Load {
                        addr: self.node,
                        tag: MemTag::Lock,
                        consume: true,
                    })
                }
            }
            McsReleasePhase::SpinNext => {
                let succ = last.expect("successor link consumed");
                if succ != 0 {
                    self.phase = McsReleasePhase::Finished;
                    FragStep::Emit(store(Addr(succ).offset(WORD), 0, MemTag::Lock))
                } else {
                    FragStep::Emit(Op::Load {
                        addr: self.node,
                        tag: MemTag::Lock,
                        consume: true,
                    })
                }
            }
            McsReleasePhase::Finished => FragStep::Done,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClhAcquirePhase {
    InitLocked,
    PubFence,
    SwapTail,
    ExaminePred,
    Spin,
    Finished,
}

/// CLH queue-lock acquisition: swap one's own node into the tail and spin
/// on the *predecessor's* node until it reads 0.
///
/// Unlike MCS, CLH *does* need a full publication fence between the
/// `node = 1` init store and the tail swap: the swap bypasses the store
/// buffer, so without the fence a successor could swap the tail, read
/// this node before the init store drains, see the stale 0 and enter the
/// critical section while the lock is held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClhAcquireState {
    tail: Addr,
    node: Addr,
    pred: u64,
    phase: ClhAcquirePhase,
}

impl ClhAcquireState {
    fn next(&mut self, last: Option<u64>) -> FragStep {
        match self.phase {
            ClhAcquirePhase::InitLocked => {
                self.phase = ClhAcquirePhase::PubFence;
                FragStep::Emit(store(self.node, 1, MemTag::Lock))
            }
            ClhAcquirePhase::PubFence => {
                self.phase = ClhAcquirePhase::SwapTail;
                FragStep::Emit(Op::Fence(FenceKind::Full))
            }
            ClhAcquirePhase::SwapTail => {
                self.phase = ClhAcquirePhase::ExaminePred;
                FragStep::Emit(Op::Rmw {
                    addr: self.tail,
                    rmw: RmwOp::Swap(self.node.0),
                    tag: MemTag::Lock,
                    consume: true,
                })
            }
            ClhAcquirePhase::ExaminePred => {
                self.pred = last.expect("old tail consumed");
                if self.pred == 0 {
                    // No predecessor: the lock is free.
                    self.phase = ClhAcquirePhase::Finished;
                    FragStep::Emit(Op::Fence(FenceKind::Acquire))
                } else {
                    self.phase = ClhAcquirePhase::Spin;
                    FragStep::Emit(Op::Load {
                        addr: Addr(self.pred),
                        tag: MemTag::Lock,
                        consume: true,
                    })
                }
            }
            ClhAcquirePhase::Spin => {
                if last.expect("predecessor node consumed") == 0 {
                    self.phase = ClhAcquirePhase::Finished;
                    FragStep::Emit(Op::Fence(FenceKind::Acquire))
                } else {
                    FragStep::Emit(Op::Load {
                        addr: Addr(self.pred),
                        tag: MemTag::Lock,
                        consume: true,
                    })
                }
            }
            ClhAcquirePhase::Finished => FragStep::Done,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RcuSyncPhase {
    Fence,
    BumpGen,
    TakeTarget,
    ExamineOnline,
    ExamineQuies,
    Finished,
}

/// RCU-style grace-period wait (QSBR flavor): fence, bump the global
/// generation, then scan every *other* thread's reader slot until it is
/// either offline or has recorded a quiescent generation at or past the
/// bump. Generation comparisons are wrapping, so the scheme survives the
/// counter rolling over `u64::MAX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RcuSyncState {
    gen: Addr,
    slots: Addr,
    stride: u64,
    threads: u64,
    me: u64,
    target: u64,
    idx: u64,
    phase: RcuSyncPhase,
}

impl RcuSyncState {
    fn online(&self, i: u64) -> Addr {
        self.slots.offset(i * self.stride)
    }

    fn quies(&self, i: u64) -> Addr {
        self.slots.offset(i * self.stride + WORD)
    }

    /// Moves the scan to the next reader (skipping our own slot), or
    /// finishes when every reader has been cleared.
    fn next_reader(&mut self) -> FragStep {
        while self.idx < self.threads {
            if self.idx == self.me {
                self.idx += 1;
                continue;
            }
            self.phase = RcuSyncPhase::ExamineOnline;
            return FragStep::Emit(Op::Load {
                addr: self.online(self.idx),
                tag: MemTag::Barrier,
                consume: true,
            });
        }
        self.phase = RcuSyncPhase::Finished;
        FragStep::Done
    }

    fn next(&mut self, last: Option<u64>) -> FragStep {
        match self.phase {
            RcuSyncPhase::Fence => {
                // Updater stores must be globally visible before readers
                // can observe the new generation.
                self.phase = RcuSyncPhase::BumpGen;
                FragStep::Emit(Op::Fence(FenceKind::Full))
            }
            RcuSyncPhase::BumpGen => {
                self.phase = RcuSyncPhase::TakeTarget;
                FragStep::Emit(Op::Rmw {
                    addr: self.gen,
                    rmw: RmwOp::FetchAdd(1),
                    tag: MemTag::Barrier,
                    consume: true,
                })
            }
            RcuSyncPhase::TakeTarget => {
                self.target = last.expect("old generation consumed").wrapping_add(1);
                self.idx = 0;
                self.next_reader()
            }
            RcuSyncPhase::ExamineOnline => {
                if last.expect("online flag consumed") == 0 {
                    self.idx += 1;
                    self.next_reader()
                } else {
                    self.phase = RcuSyncPhase::ExamineQuies;
                    FragStep::Emit(Op::Load {
                        addr: self.quies(self.idx),
                        tag: MemTag::Barrier,
                        consume: true,
                    })
                }
            }
            RcuSyncPhase::ExamineQuies => {
                let quies = last.expect("quiescent generation consumed");
                if (quies.wrapping_sub(self.target) as i64) >= 0 {
                    self.idx += 1;
                    self.next_reader()
                } else {
                    // Not there yet: the reader may also have gone
                    // offline since we looked — re-check the flag.
                    self.phase = RcuSyncPhase::ExamineOnline;
                    FragStep::Emit(Op::Load {
                        addr: self.online(self.idx),
                        tag: MemTag::Barrier,
                        consume: true,
                    })
                }
            }
            RcuSyncPhase::Finished => FragStep::Done,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HazardPhase {
    ReadPtr,
    Publish,
    Fence,
    Validate,
    Check,
    Finished,
}

/// Hazard-pointer protect: read the shared pointer, publish it in this
/// thread's hazard slot, full-fence (the store-load ordering SMR needs),
/// then re-read the pointer; a mismatch means the object may already be
/// retired, so re-publish and try again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HazardProtectState {
    ptr: Addr,
    slot: Addr,
    candidate: u64,
    phase: HazardPhase,
}

impl HazardProtectState {
    fn next(&mut self, last: Option<u64>) -> FragStep {
        match self.phase {
            HazardPhase::ReadPtr => {
                self.phase = HazardPhase::Publish;
                FragStep::Emit(Op::Load {
                    addr: self.ptr,
                    tag: MemTag::Data,
                    consume: true,
                })
            }
            HazardPhase::Publish => {
                self.candidate = last.expect("pointer value consumed");
                self.phase = HazardPhase::Fence;
                FragStep::Emit(store(self.slot, self.candidate, MemTag::Lock))
            }
            HazardPhase::Fence => {
                self.phase = HazardPhase::Validate;
                FragStep::Emit(Op::Fence(FenceKind::Full))
            }
            HazardPhase::Validate => {
                self.phase = HazardPhase::Check;
                FragStep::Emit(Op::Load {
                    addr: self.ptr,
                    tag: MemTag::Data,
                    consume: true,
                })
            }
            HazardPhase::Check => {
                let now = last.expect("pointer value consumed");
                if now == self.candidate {
                    self.phase = HazardPhase::Finished;
                    FragStep::Done
                } else {
                    self.candidate = now;
                    self.phase = HazardPhase::Fence;
                    FragStep::Emit(store(self.slot, self.candidate, MemTag::Lock))
                }
            }
            HazardPhase::Finished => FragStep::Done,
        }
    }
}

/// The shared words of one Chase-Lev work-stealing deque.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DequeAddrs {
    /// Thieves' end index (only ever incremented, via CAS).
    pub top: Addr,
    /// Owner's end index (owner-only plain stores).
    pub bottom: Addr,
    /// Base of the circular task buffer.
    pub buf: Addr,
    /// Buffer capacity minus one; capacity must be a power of two.
    pub mask: u64,
}

impl DequeAddrs {
    /// The buffer word holding index `i`.
    pub fn slot(&self, i: u64) -> Addr {
        self.buf.offset((i & self.mask) * WORD)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DequePushPhase {
    ReadBottom,
    StoreTask,
    PubFence,
    Publish,
    Finished,
}

/// Owner-side Chase-Lev push: write the task into `buf[bottom]`, release
/// fence, publish `bottom + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DequePushState {
    deque: DequeAddrs,
    task: u64,
    bottom: u64,
    phase: DequePushPhase,
}

impl DequePushState {
    fn next(&mut self, last: Option<u64>) -> FragStep {
        match self.phase {
            DequePushPhase::ReadBottom => {
                self.phase = DequePushPhase::StoreTask;
                FragStep::Emit(Op::Load {
                    addr: self.deque.bottom,
                    tag: MemTag::Lock,
                    consume: true,
                })
            }
            DequePushPhase::StoreTask => {
                self.bottom = last.expect("bottom consumed");
                self.phase = DequePushPhase::PubFence;
                FragStep::Emit(store(self.deque.slot(self.bottom), self.task, MemTag::Data))
            }
            DequePushPhase::PubFence => {
                self.phase = DequePushPhase::Publish;
                FragStep::Emit(Op::Fence(FenceKind::Release))
            }
            DequePushPhase::Publish => {
                self.phase = DequePushPhase::Finished;
                FragStep::Emit(store(
                    self.deque.bottom,
                    self.bottom.wrapping_add(1),
                    MemTag::Lock,
                ))
            }
            DequePushPhase::Finished => FragStep::Done,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DequeTakePhase {
    ReadBottom,
    Shrink,
    Fence,
    ReadTop,
    Compare,
    TakeEasy,
    TakeRace,
    RaceResult,
    BumpClaimed,
    BumpExecuted,
    Finished,
}

/// Owner-side Chase-Lev take: tentatively shrink `bottom`, full-fence
/// (the store must be visible before `top` is read — the classic
/// Chase-Lev store-load fence), then either take locally, race a thief
/// with CAS on `top` for the last element, or restore `bottom` on empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DequeTakeState {
    deque: DequeAddrs,
    claimed: Addr,
    executed: Addr,
    b: u64,
    t: u64,
    task: u64,
    took: bool,
    phase: DequeTakePhase,
}

impl DequeTakeState {
    fn next(&mut self, last: Option<u64>) -> FragStep {
        match self.phase {
            DequeTakePhase::ReadBottom => {
                self.phase = DequeTakePhase::Shrink;
                FragStep::Emit(Op::Load {
                    addr: self.deque.bottom,
                    tag: MemTag::Lock,
                    consume: true,
                })
            }
            DequeTakePhase::Shrink => {
                self.b = last.expect("bottom consumed").wrapping_sub(1);
                self.phase = DequeTakePhase::Fence;
                FragStep::Emit(store(self.deque.bottom, self.b, MemTag::Lock))
            }
            DequeTakePhase::Fence => {
                self.phase = DequeTakePhase::ReadTop;
                FragStep::Emit(Op::Fence(FenceKind::Full))
            }
            DequeTakePhase::ReadTop => {
                self.phase = DequeTakePhase::Compare;
                FragStep::Emit(Op::Load {
                    addr: self.deque.top,
                    tag: MemTag::Lock,
                    consume: true,
                })
            }
            DequeTakePhase::Compare => {
                self.t = last.expect("top consumed");
                let len = self.b.wrapping_sub(self.t) as i64;
                if len > 0 {
                    // More than one element: take without racing.
                    self.phase = DequeTakePhase::TakeEasy;
                    FragStep::Emit(Op::Load {
                        addr: self.deque.slot(self.b),
                        tag: MemTag::Data,
                        consume: true,
                    })
                } else if len == 0 {
                    // Last element: race thieves via CAS on top.
                    self.phase = DequeTakePhase::TakeRace;
                    FragStep::Emit(Op::Load {
                        addr: self.deque.slot(self.b),
                        tag: MemTag::Data,
                        consume: true,
                    })
                } else {
                    // Empty: restore bottom and give up.
                    self.took = false;
                    self.phase = DequeTakePhase::Finished;
                    FragStep::Emit(store(
                        self.deque.bottom,
                        self.b.wrapping_add(1),
                        MemTag::Lock,
                    ))
                }
            }
            DequeTakePhase::TakeEasy => {
                self.task = last.expect("task consumed");
                self.took = true;
                self.phase = DequeTakePhase::BumpExecuted;
                FragStep::Emit(Op::Rmw {
                    addr: self.claimed.offset(self.task * WORD),
                    rmw: RmwOp::FetchAdd(1),
                    tag: MemTag::Data,
                    consume: false,
                })
            }
            DequeTakePhase::TakeRace => {
                self.task = last.expect("task consumed");
                self.phase = DequeTakePhase::RaceResult;
                FragStep::Emit(Op::Rmw {
                    addr: self.deque.top,
                    rmw: RmwOp::Cas {
                        expected: self.t,
                        desired: self.t.wrapping_add(1),
                    },
                    tag: MemTag::Lock,
                    consume: true,
                })
            }
            DequeTakePhase::RaceResult => {
                self.took = last == Some(self.t);
                // Win or lose, the deque is now empty: restore bottom.
                self.phase = if self.took {
                    DequeTakePhase::BumpClaimed
                } else {
                    DequeTakePhase::Finished
                };
                FragStep::Emit(store(
                    self.deque.bottom,
                    self.b.wrapping_add(1),
                    MemTag::Lock,
                ))
            }
            DequeTakePhase::BumpClaimed => {
                self.phase = DequeTakePhase::BumpExecuted;
                FragStep::Emit(Op::Rmw {
                    addr: self.claimed.offset(self.task * WORD),
                    rmw: RmwOp::FetchAdd(1),
                    tag: MemTag::Data,
                    consume: false,
                })
            }
            DequeTakePhase::BumpExecuted => {
                self.phase = DequeTakePhase::Finished;
                FragStep::Emit(Op::Rmw {
                    addr: self.executed,
                    rmw: RmwOp::FetchAdd(1),
                    tag: MemTag::Barrier,
                    consume: false,
                })
            }
            DequeTakePhase::Finished => FragStep::Done,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DequeStealPhase {
    ReadTop,
    AcqFence,
    ReadBottom,
    Compare,
    Cas,
    CasResult,
    BumpExecuted,
    Finished,
}

/// Thief-side Chase-Lev steal: read `top`, acquire-fence, read `bottom`;
/// if non-empty, read the task then CAS `top` forward to claim it. A lost
/// CAS means another thief (or the owner's last-element take) won.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DequeStealState {
    deque: DequeAddrs,
    claimed: Addr,
    executed: Addr,
    t: u64,
    task: u64,
    took: bool,
    phase: DequeStealPhase,
}

impl DequeStealState {
    fn next(&mut self, last: Option<u64>) -> FragStep {
        match self.phase {
            DequeStealPhase::ReadTop => {
                self.phase = DequeStealPhase::AcqFence;
                FragStep::Emit(Op::Load {
                    addr: self.deque.top,
                    tag: MemTag::Lock,
                    consume: true,
                })
            }
            DequeStealPhase::AcqFence => {
                self.t = last.expect("top consumed");
                self.phase = DequeStealPhase::ReadBottom;
                FragStep::Emit(Op::Fence(FenceKind::Acquire))
            }
            DequeStealPhase::ReadBottom => {
                self.phase = DequeStealPhase::Compare;
                FragStep::Emit(Op::Load {
                    addr: self.deque.bottom,
                    tag: MemTag::Lock,
                    consume: true,
                })
            }
            DequeStealPhase::Compare => {
                let b = last.expect("bottom consumed");
                if (b.wrapping_sub(self.t) as i64) <= 0 {
                    self.took = false;
                    self.phase = DequeStealPhase::Finished;
                    FragStep::Done
                } else {
                    self.phase = DequeStealPhase::Cas;
                    FragStep::Emit(Op::Load {
                        addr: self.deque.slot(self.t),
                        tag: MemTag::Data,
                        consume: true,
                    })
                }
            }
            DequeStealPhase::Cas => {
                self.task = last.expect("task consumed");
                self.phase = DequeStealPhase::CasResult;
                FragStep::Emit(Op::Rmw {
                    addr: self.deque.top,
                    rmw: RmwOp::Cas {
                        expected: self.t,
                        desired: self.t.wrapping_add(1),
                    },
                    tag: MemTag::Lock,
                    consume: true,
                })
            }
            DequeStealPhase::CasResult => {
                if last == Some(self.t) {
                    self.took = true;
                    self.phase = DequeStealPhase::BumpExecuted;
                    FragStep::Emit(Op::Rmw {
                        addr: self.claimed.offset(self.task * WORD),
                        rmw: RmwOp::FetchAdd(1),
                        tag: MemTag::Data,
                        consume: false,
                    })
                } else {
                    self.took = false;
                    self.phase = DequeStealPhase::Finished;
                    FragStep::Done
                }
            }
            DequeStealPhase::BumpExecuted => {
                self.phase = DequeStealPhase::Finished;
                FragStep::Emit(Op::Rmw {
                    addr: self.executed,
                    rmw: RmwOp::FetchAdd(1),
                    tag: MemTag::Barrier,
                    consume: false,
                })
            }
            DequeStealPhase::Finished => FragStep::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Steps a fragment against a fake functional memory, emulating what
    /// the core+memory would do, and returns the ops emitted.
    fn run_frag(frag: &mut SyncFrag, mem: &mut std::collections::BTreeMap<u64, u64>) -> Vec<Op> {
        let mut ops = Vec::new();
        let mut last = None;
        for _ in 0..100 {
            match frag.next(last) {
                FragStep::Done => return ops,
                FragStep::Emit(op) => {
                    last = match op {
                        Op::Load { addr, consume, .. } => {
                            consume.then(|| mem.get(&addr.0).copied().unwrap_or(0))
                        }
                        Op::Rmw {
                            addr, rmw, consume, ..
                        } => {
                            let old = mem.get(&addr.0).copied().unwrap_or(0);
                            mem.insert(addr.0, rmw.apply(old));
                            consume.then_some(old)
                        }
                        Op::Store { addr, value, .. } => {
                            mem.insert(addr.0, value);
                            None
                        }
                        _ => None,
                    };
                    ops.push(op);
                }
            }
        }
        panic!("fragment did not finish: {frag:?}");
    }

    #[test]
    fn acquire_free_lock_is_three_ops() {
        let mut mem = std::collections::BTreeMap::new();
        let mut f = SyncFrag::acquire(Addr(0x40));
        let ops = run_frag(&mut f, &mut mem);
        assert_eq!(ops.len(), 3, "load, cas, fence: {ops:?}");
        assert!(matches!(ops[0], Op::Load { .. }));
        assert!(matches!(ops[1], Op::Rmw { .. }));
        assert_eq!(ops[2], Op::Fence(FenceKind::Acquire));
        assert_eq!(mem.get(&0x40), Some(&1), "lock taken");
    }

    #[test]
    fn acquire_busy_lock_spins() {
        let mut mem = std::collections::BTreeMap::new();
        mem.insert(0x40, 1);
        let mut f = SyncFrag::acquire(Addr(0x40));
        // Drive 10 steps: all should be spin loads.
        let mut last = None;
        for _ in 0..10 {
            let FragStep::Emit(op) = f.next(last) else {
                panic!("finished on busy lock")
            };
            assert!(
                matches!(
                    op,
                    Op::Load {
                        tag: MemTag::Lock,
                        consume: true,
                        ..
                    }
                ),
                "{op:?}"
            );
            last = Some(1);
        }
        // Lock freed: next read sees 0 and the CAS follows.
        let FragStep::Emit(op) = f.next(Some(0)) else {
            panic!()
        };
        assert!(matches!(op, Op::Rmw { .. }));
    }

    #[test]
    fn lost_cas_race_returns_to_spinning() {
        let mut f = SyncFrag::acquire(Addr(0x40));
        let _ = f.next(None); // load
        let _ = f.next(Some(0)); // cas issued
                                 // CAS returned old value 1: someone else won.
        let FragStep::Emit(op) = f.next(Some(1)) else {
            panic!()
        };
        assert!(matches!(op, Op::Load { .. }), "back to spinning: {op:?}");
    }

    #[test]
    fn release_is_fence_then_store() {
        let mut mem = std::collections::BTreeMap::new();
        mem.insert(0x40, 1);
        let mut f = SyncFrag::release(Addr(0x40));
        let ops = run_frag(&mut f, &mut mem);
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0], Op::Fence(FenceKind::Release));
        assert!(matches!(ops[1], Op::Store { value: 0, .. }));
        assert_eq!(mem.get(&0x40), Some(&0));
    }

    #[test]
    fn barrier_last_arriver_bumps_generation() {
        let mut mem = std::collections::BTreeMap::new();
        mem.insert(0x80, 1); // counter: one of two already arrived
        let mut f = SyncFrag::barrier(Addr(0x80), Addr(0xc0), 2);
        let ops = run_frag(&mut f, &mut mem);
        // read gen, fetch-add counter, reset counter, full fence, bump gen.
        assert_eq!(ops.len(), 5, "{ops:?}");
        assert_eq!(ops[3], Op::Fence(FenceKind::Full));
        assert_eq!(mem.get(&0x80), Some(&0), "counter reset");
        assert_eq!(mem.get(&0xc0), Some(&1), "generation bumped");
    }

    #[test]
    fn barrier_early_arriver_spins_until_generation_changes() {
        let mut f = SyncFrag::barrier(Addr(0x80), Addr(0xc0), 2);
        let FragStep::Emit(_) = f.next(None) else {
            panic!()
        }; // read gen
        let FragStep::Emit(_) = f.next(Some(0)) else {
            panic!()
        }; // arrive (gen 0)
           // We are arrival 0 of 2: spin on generation.
        let FragStep::Emit(op) = f.next(Some(0)) else {
            panic!()
        };
        assert!(matches!(
            op,
            Op::Load {
                tag: MemTag::Barrier,
                consume: true,
                ..
            }
        ));
        // Generation still 0: keep spinning.
        let FragStep::Emit(_) = f.next(Some(0)) else {
            panic!()
        };
        // Generation advanced: acquire fence, then done.
        let FragStep::Emit(op) = f.next(Some(1)) else {
            panic!()
        };
        assert_eq!(op, Op::Fence(FenceKind::Acquire));
        assert_eq!(f.next(None), FragStep::Done);
    }

    #[test]
    fn two_party_barrier_full_protocol() {
        // Interleave two barrier fragments against one memory to check the
        // protocol end to end.
        let mut mem = std::collections::BTreeMap::new();
        let mut a = SyncFrag::barrier(Addr(0x80), Addr(0xc0), 2);
        // A arrives first and spins.
        let mut last_a = None;
        for _ in 0..3 {
            if let FragStep::Emit(op) = a.next(last_a) {
                last_a = apply(&mut mem, op);
            }
        }
        // B arrives and releases.
        let mut b = SyncFrag::barrier(Addr(0x80), Addr(0xc0), 2);
        let mut last_b = None;
        loop {
            match b.next(last_b) {
                FragStep::Done => break,
                FragStep::Emit(op) => last_b = apply(&mut mem, op),
            }
        }
        // A now observes the new generation and finishes.
        let mut done = false;
        for _ in 0..5 {
            match a.next(last_a) {
                FragStep::Done => {
                    done = true;
                    break;
                }
                FragStep::Emit(op) => last_a = apply(&mut mem, op),
            }
        }
        assert!(done, "first arriver must be released");
    }

    fn apply(mem: &mut std::collections::BTreeMap<u64, u64>, op: Op) -> Option<u64> {
        match op {
            Op::Load { addr, consume, .. } => {
                consume.then(|| mem.get(&addr.0).copied().unwrap_or(0))
            }
            Op::Rmw {
                addr, rmw, consume, ..
            } => {
                let old = mem.get(&addr.0).copied().unwrap_or(0);
                mem.insert(addr.0, rmw.apply(old));
                consume.then_some(old)
            }
            Op::Store { addr, value, .. } => {
                mem.insert(addr.0, value);
                None
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod ticket_tests {
    use super::*;
    use std::collections::BTreeMap;

    fn apply(mem: &mut BTreeMap<u64, u64>, op: Op) -> Option<u64> {
        match op {
            Op::Load { addr, consume, .. } => {
                consume.then(|| mem.get(&addr.0).copied().unwrap_or(0))
            }
            Op::Rmw {
                addr, rmw, consume, ..
            } => {
                let old = mem.get(&addr.0).copied().unwrap_or(0);
                mem.insert(addr.0, rmw.apply(old));
                consume.then_some(old)
            }
            Op::Store { addr, value, .. } => {
                mem.insert(addr.0, value);
                None
            }
            _ => None,
        }
    }

    #[test]
    fn ticket_uncontended_acquire_release() {
        let mut mem = BTreeMap::new();
        let (next, serving) = (Addr(0x40), Addr(0x80));
        let mut f = SyncFrag::ticket_acquire(next, serving);
        let mut last = None;
        let mut steps = 0;
        loop {
            match f.next(last) {
                FragStep::Done => break,
                FragStep::Emit(op) => last = apply(&mut mem, op),
            }
            steps += 1;
            assert!(steps < 20, "uncontended acquire must be quick");
        }
        assert_eq!(mem.get(&0x40), Some(&1), "ticket drawn");
        let mut r = SyncFrag::ticket_release(serving);
        let mut last = None;
        loop {
            match r.next(last) {
                FragStep::Done => break,
                FragStep::Emit(op) => last = apply(&mut mem, op),
            }
        }
        assert_eq!(mem.get(&0x80), Some(&1), "now_serving bumped");
    }

    #[test]
    fn ticket_queues_fairly() {
        let mut mem = BTreeMap::new();
        let (next, serving) = (Addr(0x40), Addr(0x80));
        // A draws ticket 0, B draws ticket 1.
        let mut a = SyncFrag::ticket_acquire(next, serving);
        let mut b = SyncFrag::ticket_acquire(next, serving);
        let mut la = None;
        let mut lb = None;
        // A: draw + first spin -> acquires (serving == 0).
        for _ in 0..4 {
            if let FragStep::Emit(op) = a.next(la) {
                la = apply(&mut mem, op);
            }
        }
        // B: draw + spins (serving == 0, ticket 1): must NOT acquire.
        let mut b_done = false;
        for _ in 0..6 {
            match b.next(lb) {
                FragStep::Done => b_done = true,
                FragStep::Emit(op) => lb = apply(&mut mem, op),
            }
        }
        assert!(!b_done, "B must wait for A's release");
        // A releases.
        let mut r = SyncFrag::ticket_release(serving);
        let mut lr = None;
        loop {
            match r.next(lr) {
                FragStep::Done => break,
                FragStep::Emit(op) => lr = apply(&mut mem, op),
            }
        }
        // B now gets in.
        for _ in 0..4 {
            match b.next(lb) {
                FragStep::Done => {
                    b_done = true;
                    break;
                }
                FragStep::Emit(op) => lb = apply(&mut mem, op),
            }
        }
        assert!(b_done, "B must acquire after release");
    }
}

#[cfg(test)]
mod boundary_tests {
    //! Regression tests for the sentinel encodings removed from the lock
    //! fragments: every ticket/generation value must work, including 0
    //! and `u64::MAX`, and addresses are never overloaded as progress
    //! markers.

    use super::*;
    use std::collections::BTreeMap;

    fn apply(mem: &mut BTreeMap<u64, u64>, op: Op) -> Option<u64> {
        match op {
            Op::Load { addr, consume, .. } => {
                consume.then(|| mem.get(&addr.0).copied().unwrap_or(0))
            }
            Op::Rmw {
                addr, rmw, consume, ..
            } => {
                let old = mem.get(&addr.0).copied().unwrap_or(0);
                mem.insert(addr.0, rmw.apply(old));
                consume.then_some(old)
            }
            Op::Store { addr, value, .. } => {
                mem.insert(addr.0, value);
                None
            }
            _ => None,
        }
    }

    fn run(frag: &mut SyncFrag, mem: &mut BTreeMap<u64, u64>) -> Vec<Op> {
        let mut ops = Vec::new();
        let mut last = None;
        for _ in 0..200 {
            match frag.next(last) {
                FragStep::Done => return ops,
                FragStep::Emit(op) => {
                    last = apply(mem, op);
                    ops.push(op);
                }
            }
        }
        panic!("fragment did not finish: {frag:?}");
    }

    #[test]
    fn ticket_with_max_value_ticket_acquires() {
        // The counter sits at u64::MAX: the drawn ticket IS u64::MAX and
        // now_serving equals it. The old offset-by-one encoding treated
        // this ticket as "not yet drawn" forever and livelocked.
        let mut mem = BTreeMap::new();
        mem.insert(0x40, u64::MAX); // next_ticket
        mem.insert(0x80, u64::MAX); // now_serving
        let mut f = SyncFrag::ticket_acquire(Addr(0x40), Addr(0x80));
        let ops = run(&mut f, &mut mem);
        assert_eq!(ops.len(), 3, "draw, one spin read, fence: {ops:?}");
        assert_eq!(mem.get(&0x40), Some(&0), "ticket counter wrapped");

        // Release wraps now_serving to 0; the next ticket (0) gets in.
        let mut r = SyncFrag::ticket_release(Addr(0x80));
        run(&mut r, &mut mem);
        assert_eq!(mem.get(&0x80), Some(&0));
        let mut g = SyncFrag::ticket_acquire(Addr(0x40), Addr(0x80));
        let ops = run(&mut g, &mut mem);
        assert_eq!(ops.len(), 3, "wrapped successor acquires: {ops:?}");
    }

    #[test]
    fn ticket_zero_serving_does_not_admit_ticket_one() {
        // Drawn ticket 1, serving 0: must spin. (The old `serving + 1 ==
        // my_ticket` comparison happened to work here but overflowed at
        // serving == u64::MAX; the exact-equality form has no edge.)
        let mut mem = BTreeMap::new();
        mem.insert(0x40, 1); // next_ticket: ticket 1 will be drawn
        let mut f = SyncFrag::ticket_acquire(Addr(0x40), Addr(0x80));
        let mut last = None;
        let mut done = false;
        for _ in 0..10 {
            match f.next(last) {
                FragStep::Done => done = true,
                FragStep::Emit(op) => last = apply(&mut mem, op),
            }
        }
        assert!(!done, "ticket 1 must wait while serving == 0");
    }

    #[test]
    fn release_works_at_the_sentinel_address() {
        // A lock legitimately placed at Addr(u64::MAX): the old code
        // used that address as its own "store already issued" marker and
        // finished without ever storing.
        let mut mem = BTreeMap::new();
        mem.insert(u64::MAX, 1);
        let mut f = SyncFrag::release(Addr(u64::MAX));
        let ops = run(&mut f, &mut mem);
        assert_eq!(ops.len(), 2, "fence then store: {ops:?}");
        assert_eq!(mem.get(&u64::MAX), Some(&0), "lock actually released");
    }

    #[test]
    fn barrier_generation_wraps_at_max() {
        let mut mem = BTreeMap::new();
        // Generation at the boundary; A arrives first and spins with
        // my_gen == u64::MAX.
        mem.insert(0xc0, u64::MAX);
        let mut a = SyncFrag::barrier(Addr(0x80), Addr(0xc0), 2);
        let mut la = None;
        for _ in 0..3 {
            if let FragStep::Emit(op) = a.next(la) {
                la = apply(&mut mem, op);
            }
        }
        // B is last: resets the counter and bumps the generation, which
        // wraps to 0.
        let mut b = SyncFrag::barrier(Addr(0x80), Addr(0xc0), 2);
        run(&mut b, &mut mem);
        assert_eq!(mem.get(&0xc0), Some(&0), "generation wrapped");
        // A observes 0 != u64::MAX and is released.
        let mut done = false;
        for _ in 0..5 {
            match a.next(la) {
                FragStep::Done => {
                    done = true;
                    break;
                }
                FragStep::Emit(op) => la = apply(&mut mem, op),
            }
        }
        assert!(done, "spinner must be released across the wrap");
    }

    #[test]
    fn barrier_survives_counter_at_max() {
        // Arrival counter seeded at u64::MAX: the old non-wrapping
        // `arrivals + 1` aborted in debug builds.
        let mut mem = BTreeMap::new();
        mem.insert(0x80, u64::MAX);
        let mut f = SyncFrag::barrier(Addr(0x80), Addr(0xc0), 2);
        let mut last = None;
        for _ in 0..6 {
            if let FragStep::Emit(op) = f.next(last) {
                last = apply(&mut mem, op);
            }
        }
        // Not the last arriver (MAX + 1 wraps to 0 != 2): must be
        // spinning on the generation, not finished and not panicked.
        assert!(
            matches!(f, SyncFrag::Barrier(_)),
            "still waiting at the barrier"
        );
    }
}

#[cfg(test)]
mod modern_tests {
    use super::*;
    use std::collections::BTreeMap;

    fn apply(mem: &mut BTreeMap<u64, u64>, op: Op) -> Option<u64> {
        match op {
            Op::Load { addr, consume, .. } => {
                consume.then(|| mem.get(&addr.0).copied().unwrap_or(0))
            }
            Op::Rmw {
                addr, rmw, consume, ..
            } => {
                let old = mem.get(&addr.0).copied().unwrap_or(0);
                mem.insert(addr.0, rmw.apply(old));
                consume.then_some(old)
            }
            Op::Store { addr, value, .. } => {
                mem.insert(addr.0, value);
                None
            }
            _ => None,
        }
    }

    fn run(frag: &mut SyncFrag, mem: &mut BTreeMap<u64, u64>) -> Vec<Op> {
        let mut ops = Vec::new();
        let mut last = None;
        for _ in 0..200 {
            match frag.next(last) {
                FragStep::Done => return ops,
                FragStep::Emit(op) => {
                    last = apply(mem, op);
                    ops.push(op);
                }
            }
        }
        panic!("fragment did not finish: {frag:?}");
    }

    /// Drives `frag` up to `budget` steps; returns true if it finished.
    fn drive(
        frag: &mut SyncFrag,
        last: &mut Option<u64>,
        mem: &mut BTreeMap<u64, u64>,
        budget: usize,
    ) -> bool {
        for _ in 0..budget {
            match frag.next(*last) {
                FragStep::Done => return true,
                FragStep::Emit(op) => *last = apply(mem, op),
            }
        }
        false
    }

    const TAIL: u64 = 0x1000;
    const NODE_A: u64 = 0x2000;
    const NODE_B: u64 = 0x2040;

    #[test]
    fn mcs_uncontended_acquire_then_release_empties_queue() {
        let mut mem = BTreeMap::new();
        let mut a = SyncFrag::mcs_acquire(Addr(TAIL), Addr(NODE_A));
        let ops = run(&mut a, &mut mem);
        // init next, init locked, publication fence, swap, acquire fence.
        assert_eq!(ops.len(), 5, "{ops:?}");
        assert_eq!(mem.get(&TAIL), Some(&NODE_A), "queued as tail");
        let mut r = SyncFrag::mcs_release(Addr(TAIL), Addr(NODE_A));
        run(&mut r, &mut mem);
        assert_eq!(mem.get(&TAIL), Some(&0), "queue empty after release");
    }

    #[test]
    fn mcs_handoff_wakes_the_linked_successor() {
        let mut mem = BTreeMap::new();
        // A takes the lock.
        let mut a = SyncFrag::mcs_acquire(Addr(TAIL), Addr(NODE_A));
        run(&mut a, &mut mem);
        // B queues behind A and spins on its own node.
        let mut b = SyncFrag::mcs_acquire(Addr(TAIL), Addr(NODE_B));
        let mut lb = None;
        assert!(!drive(&mut b, &mut lb, &mut mem, 20), "B must spin");
        assert_eq!(mem.get(&NODE_A), Some(&NODE_B), "B linked behind A");
        // A releases: sees the successor link and clears B's flag.
        let mut r = SyncFrag::mcs_release(Addr(TAIL), Addr(NODE_A));
        run(&mut r, &mut mem);
        assert_eq!(mem.get(&(NODE_B + WORD)), Some(&0), "handoff store");
        // B's spin now observes 0 and finishes.
        assert!(drive(&mut b, &mut lb, &mut mem, 20), "B must acquire");
        // B releases with nobody waiting: CAS empties the tail.
        let mut rb = SyncFrag::mcs_release(Addr(TAIL), Addr(NODE_B));
        run(&mut rb, &mut mem);
        assert_eq!(mem.get(&TAIL), Some(&0));
    }

    #[test]
    fn mcs_release_waits_out_a_mid_link_successor() {
        let mut mem = BTreeMap::new();
        let mut a = SyncFrag::mcs_acquire(Addr(TAIL), Addr(NODE_A));
        run(&mut a, &mut mem);
        // B swaps the tail but has NOT stored the link yet: step B through
        // init/init/fence/swap only.
        let mut b = SyncFrag::mcs_acquire(Addr(TAIL), Addr(NODE_B));
        let mut lb = None;
        for _ in 0..4 {
            if let FragStep::Emit(op) = b.next(lb) {
                lb = apply(&mut mem, op);
            }
        }
        assert_eq!(mem.get(&TAIL), Some(&NODE_B), "B swapped in");
        assert_eq!(mem.get(&NODE_A).copied().unwrap_or(0), 0, "not linked yet");
        // A's release: next == 0, CAS fails (tail is B), so it must wait
        // for the link.
        let mut r = SyncFrag::mcs_release(Addr(TAIL), Addr(NODE_A));
        let mut lr = None;
        assert!(!drive(&mut r, &mut lr, &mut mem, 10), "release must wait");
        // B finishes its link store (and starts spinning).
        assert!(!drive(&mut b, &mut lb, &mut mem, 5), "B spins");
        // Now the release observes the link and hands off.
        assert!(drive(&mut r, &mut lr, &mut mem, 10), "release completes");
        assert!(drive(&mut b, &mut lb, &mut mem, 10), "B acquires");
    }

    #[test]
    fn clh_handoff_through_predecessor_node() {
        let mut mem = BTreeMap::new();
        let mut a = SyncFrag::clh_acquire(Addr(TAIL), Addr(NODE_A));
        let ops = run(&mut a, &mut mem);
        // init store, full publication fence, swap, acquire fence.
        assert_eq!(ops.len(), 4, "{ops:?}");
        assert_eq!(ops[1], Op::Fence(FenceKind::Full), "publication fence");
        // B queues and spins on A's node.
        let mut b = SyncFrag::clh_acquire(Addr(TAIL), Addr(NODE_B));
        let mut lb = None;
        assert!(!drive(&mut b, &mut lb, &mut mem, 20), "B must spin");
        assert_eq!(mem.get(&TAIL), Some(&NODE_B), "B is the tail");
        // A releases its own node; B sees 0 and enters.
        let mut r = SyncFrag::release(Addr(NODE_A));
        run(&mut r, &mut mem);
        assert!(drive(&mut b, &mut lb, &mut mem, 20), "B must acquire");
    }

    #[test]
    fn rcu_sync_waits_for_online_readers_and_skips_offline() {
        let slots = 0x3000u64;
        let stride = 64u64;
        let gen = 0x800u64;
        let mut mem = BTreeMap::new();
        mem.insert(gen, 5);
        // Thread 1: online, last quiesced at gen 5 (stale).
        mem.insert(slots + stride, 1);
        mem.insert(slots + stride + WORD, 5);
        // Thread 2: offline.
        let mut f = SyncFrag::rcu_sync(Addr(gen), Addr(slots), stride, 3, 0);
        let mut last = None;
        assert!(!drive(&mut f, &mut last, &mut mem, 10), "must wait on t1");
        assert_eq!(mem.get(&gen), Some(&6), "generation bumped");
        // t1 passes a quiescent state at the new generation.
        mem.insert(slots + stride + WORD, 6);
        assert!(drive(&mut f, &mut last, &mut mem, 10), "grace period ends");
    }

    #[test]
    fn rcu_sync_generation_comparison_wraps() {
        let slots = 0x3000u64;
        let stride = 64u64;
        let gen = 0x800u64;
        let mut mem = BTreeMap::new();
        mem.insert(gen, u64::MAX); // bump wraps the target to 0
        mem.insert(slots + stride, 1); // t1 online...
        mem.insert(slots + stride + WORD, u64::MAX); // ...quiesced before
        let mut f = SyncFrag::rcu_sync(Addr(gen), Addr(slots), stride, 2, 0);
        let mut last = None;
        assert!(!drive(&mut f, &mut last, &mut mem, 10), "MAX is before 0");
        // Reader reaches the wrapped generation.
        mem.insert(slots + stride + WORD, 0);
        assert!(drive(&mut f, &mut last, &mut mem, 10), "wrapped compare");
    }

    #[test]
    fn hazard_protect_pins_stable_pointer() {
        let mut mem = BTreeMap::new();
        mem.insert(0x100, 0x4242);
        let mut f = SyncFrag::hazard_protect(Addr(0x100), Addr(0x200));
        let ops = run(&mut f, &mut mem);
        // read, publish, fence, validate.
        assert_eq!(ops.len(), 4, "{ops:?}");
        assert_eq!(ops[2], Op::Fence(FenceKind::Full), "SMR store-load fence");
        assert_eq!(f.result(), Some(0x4242));
        assert_eq!(mem.get(&0x200), Some(&0x4242), "hazard published");
    }

    #[test]
    fn hazard_protect_retries_on_pointer_change() {
        let mut mem = BTreeMap::new();
        mem.insert(0x100, 1);
        let mut f = SyncFrag::hazard_protect(Addr(0x100), Addr(0x200));
        let mut last = None;
        // read + publish + fence.
        for _ in 0..3 {
            if let FragStep::Emit(op) = f.next(last) {
                last = apply(&mut mem, op);
            }
        }
        // The pointer moves under us before validation.
        mem.insert(0x100, 2);
        let ops = run(&mut f, &mut mem);
        // validate (mismatch), re-publish, fence, re-validate (match).
        assert_eq!(ops.len(), 4, "{ops:?}");
        assert_eq!(f.result(), Some(2), "pinned the fresh pointer");
        assert_eq!(mem.get(&0x200), Some(&2));
    }

    fn deque() -> (DequeAddrs, Addr, Addr) {
        (
            DequeAddrs {
                top: Addr(0x100),
                bottom: Addr(0x108),
                buf: Addr(0x200),
                mask: 7,
            },
            Addr(0x300), // claimed base
            Addr(0x400), // executed counter
        )
    }

    #[test]
    fn deque_lifo_take_fifo_steal() {
        let (d, claimed, executed) = deque();
        let mut mem = BTreeMap::new();
        for task in [10u64, 11, 12] {
            run(&mut SyncFrag::deque_push(d, task), &mut mem);
        }
        assert_eq!(mem.get(&0x108), Some(&3), "bottom advanced");

        // Owner takes from the LIFO end: task 12.
        let mut t = SyncFrag::deque_take(d, claimed, executed);
        run(&mut t, &mut mem);
        assert_eq!(t.result(), Some(1));
        assert_eq!(mem.get(&(0x300 + 12 * WORD)), Some(&1), "task 12 ran");

        // Thief steals from the FIFO end: task 10.
        let mut s = SyncFrag::deque_steal(d, claimed, executed);
        run(&mut s, &mut mem);
        assert_eq!(s.result(), Some(1));
        assert_eq!(mem.get(&(0x300 + 10 * WORD)), Some(&1), "task 10 ran");

        // Owner takes the last element (the CAS race path) then hits empty.
        let mut t2 = SyncFrag::deque_take(d, claimed, executed);
        run(&mut t2, &mut mem);
        assert_eq!(t2.result(), Some(1));
        let mut t3 = SyncFrag::deque_take(d, claimed, executed);
        run(&mut t3, &mut mem);
        assert_eq!(t3.result(), Some(0), "deque drained");
        let mut s2 = SyncFrag::deque_steal(d, claimed, executed);
        run(&mut s2, &mut mem);
        assert_eq!(s2.result(), Some(0), "steal sees empty");

        assert_eq!(mem.get(&0x400), Some(&3), "each task executed once");
        for task in [10u64, 11, 12] {
            assert_eq!(mem.get(&(0x300 + task * WORD)), Some(&1), "task {task}");
        }
    }

    #[test]
    fn racing_thieves_claim_distinct_tasks() {
        let (d, claimed, executed) = deque();
        let mut mem = BTreeMap::new();
        for task in [20u64, 21] {
            run(&mut SyncFrag::deque_push(d, task), &mut mem);
        }
        // Two thieves step in lockstep up to their CAS on top.
        let mut s1 = SyncFrag::deque_steal(d, claimed, executed);
        let mut s2 = SyncFrag::deque_steal(d, claimed, executed);
        let (mut l1, mut l2) = (None, None);
        for _ in 0..4 {
            if let FragStep::Emit(op) = s1.next(l1) {
                l1 = apply(&mut mem, op);
            }
            if let FragStep::Emit(op) = s2.next(l2) {
                l2 = apply(&mut mem, op);
            }
        }
        // s1's CAS won (applied first); s2's CAS saw top == 1 and lost.
        assert!(drive(&mut s1, &mut l1, &mut mem, 10));
        assert!(drive(&mut s2, &mut l2, &mut mem, 10));
        assert_eq!(s1.result(), Some(1), "winner");
        assert_eq!(s2.result(), Some(0), "loser retries at the workload level");
        assert_eq!(mem.get(&(0x300 + 20 * WORD)), Some(&1), "exactly one claim");
        assert_eq!(mem.get(&0x400), Some(&1), "one execution");
    }
}
