//! The workload registry ([`WorkloadKind`]) and the kernel driver
//! machinery shared by all kernels.

mod commercial;
mod modern;
mod scientific;

use tenways_cpu::{Op, ThreadProgram};

use crate::sync::{FragStep, SyncFrag};

/// Sizing and seeding parameters common to every workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadParams {
    /// Number of threads (one per core).
    pub threads: usize,
    /// Work units per thread (kernel-specific meaning: sweeps,
    /// transactions, rounds, ...).
    pub scale: u64,
    /// Run seed; all randomness derives from it.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            threads: 8,
            scale: 16,
            seed: 0x7ea5,
        }
    }
}

/// The synthetic kernels of the evaluation suite: the paper's eight
/// (scientific + commercial halves) plus the modern-sync extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Tree walks with per-node locks (barnes-like).
    BarnesLike,
    /// Stencil with neighbour sharing and per-sweep barriers (ocean-like).
    OceanLike,
    /// All-to-all scatter bursts between barriers (radix-like).
    RadixLike,
    /// Pivot broadcast with producer-consumer sharing (lu-like).
    LuLike,
    /// Task queue + shared cache, high lock rate (apache-like).
    ApacheLike,
    /// Read-heavier apache variant (zeus-like).
    ZeusLike,
    /// Short two-lock transactions, dense atomics (OLTP-like).
    OltpLike,
    /// Large low-sharing scans (DSS-like).
    DssLike,
    /// MCS queue-lock fight (local-spin handoff).
    McsLock,
    /// CLH queue-lock fight (predecessor-spin handoff).
    ClhLock,
    /// RCU readers + grace-period-waiting updaters.
    RcuLike,
    /// Hazard-pointer readers + a retiring writer.
    HazardLike,
    /// Flat combining over a shared counter.
    FlatCombLike,
    /// Chase-Lev work-stealing deque: one owner, thieving workers.
    WsDequeLike,
}

impl WorkloadKind {
    /// Every kernel, in canonical report order.
    pub fn all() -> [WorkloadKind; 14] {
        [
            WorkloadKind::BarnesLike,
            WorkloadKind::OceanLike,
            WorkloadKind::RadixLike,
            WorkloadKind::LuLike,
            WorkloadKind::ApacheLike,
            WorkloadKind::ZeusLike,
            WorkloadKind::OltpLike,
            WorkloadKind::DssLike,
            WorkloadKind::McsLock,
            WorkloadKind::ClhLock,
            WorkloadKind::RcuLike,
            WorkloadKind::HazardLike,
            WorkloadKind::FlatCombLike,
            WorkloadKind::WsDequeLike,
        ]
    }

    /// The scientific (barrier/stencil) half of the paper suite.
    pub fn scientific() -> [WorkloadKind; 4] {
        [
            WorkloadKind::BarnesLike,
            WorkloadKind::OceanLike,
            WorkloadKind::RadixLike,
            WorkloadKind::LuLike,
        ]
    }

    /// The commercial (server) half of the paper suite.
    pub fn commercial() -> [WorkloadKind; 4] {
        [
            WorkloadKind::ApacheLike,
            WorkloadKind::ZeusLike,
            WorkloadKind::OltpLike,
            WorkloadKind::DssLike,
        ]
    }

    /// The modern-sync extension: queue locks, RCU, hazard pointers,
    /// flat combining, work stealing.
    pub fn modern_sync() -> [WorkloadKind; 6] {
        [
            WorkloadKind::McsLock,
            WorkloadKind::ClhLock,
            WorkloadKind::RcuLike,
            WorkloadKind::HazardLike,
            WorkloadKind::FlatCombLike,
            WorkloadKind::WsDequeLike,
        ]
    }

    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::BarnesLike => "barnes",
            WorkloadKind::OceanLike => "ocean",
            WorkloadKind::RadixLike => "radix",
            WorkloadKind::LuLike => "lu",
            WorkloadKind::ApacheLike => "apache",
            WorkloadKind::ZeusLike => "zeus",
            WorkloadKind::OltpLike => "oltp",
            WorkloadKind::DssLike => "dss",
            WorkloadKind::McsLock => "mcs",
            WorkloadKind::ClhLock => "clh",
            WorkloadKind::RcuLike => "rcu",
            WorkloadKind::HazardLike => "hazard",
            WorkloadKind::FlatCombLike => "flatcomb",
            WorkloadKind::WsDequeLike => "wsdeque",
        }
    }

    /// Builds one program per thread.
    pub fn build(self, params: &WorkloadParams) -> Vec<Box<dyn ThreadProgram>> {
        use crate::lockbench::LockKind;
        match self {
            WorkloadKind::BarnesLike => scientific::barnes(params),
            WorkloadKind::OceanLike => scientific::ocean(params),
            WorkloadKind::RadixLike => scientific::radix(params),
            WorkloadKind::LuLike => scientific::lu(params),
            WorkloadKind::ApacheLike => commercial::server(params, commercial::ServerMix::Apache),
            WorkloadKind::ZeusLike => commercial::server(params, commercial::ServerMix::Zeus),
            WorkloadKind::OltpLike => commercial::oltp(params),
            WorkloadKind::DssLike => commercial::dss(params),
            WorkloadKind::McsLock => modern::queue_lock(params, LockKind::Mcs),
            WorkloadKind::ClhLock => modern::queue_lock(params, LockKind::Clh),
            WorkloadKind::RcuLike => modern::rcu(params),
            WorkloadKind::HazardLike => modern::hazard(params),
            WorkloadKind::FlatCombLike => modern::flat_combining(params),
            WorkloadKind::WsDequeLike => modern::ws_deque(params),
        }
    }
}

/// What a kernel's main state machine produced.
#[derive(Debug)]
pub(crate) enum KernelStep {
    /// A primitive operation.
    Op(Op),
    /// Delegate to a synchronization fragment.
    Sync(SyncFrag),
    /// The thread is finished.
    Done,
}

/// Kernel logic: the workload-specific state machine.
pub(crate) trait KernelLogic: std::fmt::Debug + Send {
    fn step(&mut self, last: Option<u64>) -> KernelStep;
    fn clone_box(&self) -> Box<dyn KernelLogic>;
    fn label(&self) -> &'static str;
}

/// Adapts a [`KernelLogic`] plus an in-progress [`SyncFrag`] into a
/// [`ThreadProgram`].
#[derive(Debug)]
pub(crate) struct KernelProgram {
    kernel: Box<dyn KernelLogic>,
    sub: Option<SyncFrag>,
}

impl KernelProgram {
    pub(crate) fn new(kernel: Box<dyn KernelLogic>) -> Self {
        KernelProgram { kernel, sub: None }
    }

    pub(crate) fn boxed(kernel: Box<dyn KernelLogic>) -> Box<dyn ThreadProgram> {
        Box::new(KernelProgram::new(kernel))
    }
}

impl ThreadProgram for KernelProgram {
    fn next_op(&mut self, mut last: Option<u64>) -> Option<Op> {
        loop {
            if let Some(frag) = &mut self.sub {
                match frag.next(last.take()) {
                    FragStep::Emit(op) => return Some(op),
                    FragStep::Done => {
                        // A finished fragment may hand a value back to the
                        // kernel (e.g. a pinned pointer or a took-a-task
                        // flag); it arrives as the kernel's `last`.
                        last = frag.result();
                        self.sub = None;
                    }
                }
            }
            match self.kernel.step(last.take()) {
                KernelStep::Op(op) => return Some(op),
                KernelStep::Sync(frag) => self.sub = Some(frag),
                KernelStep::Done => return None,
            }
        }
    }

    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(KernelProgram {
            kernel: self.kernel.clone_box(),
            sub: self.sub.clone(),
        })
    }

    fn name(&self) -> &str {
        self.kernel.label()
    }
}

/// Implements [`KernelLogic`]'s boilerplate for a `Clone` kernel type.
macro_rules! impl_kernel_logic {
    ($ty:ty, $label:literal) => {
        impl crate::kernels::KernelLogic for $ty {
            fn step(&mut self, last: Option<u64>) -> crate::kernels::KernelStep {
                <$ty>::step(self, last)
            }

            fn clone_box(&self) -> Box<dyn crate::kernels::KernelLogic> {
                Box::new(self.clone())
            }

            fn label(&self) -> &'static str {
                $label
            }
        }
    };
}
pub(crate) use impl_kernel_logic;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_distinct() {
        let mut names: Vec<_> = WorkloadKind::all().iter().map(|w| w.name()).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn groups_partition_the_suite() {
        let mut grouped: Vec<_> = WorkloadKind::scientific()
            .into_iter()
            .chain(WorkloadKind::commercial())
            .chain(WorkloadKind::modern_sync())
            .collect();
        grouped.sort_by_key(|w| w.name());
        let mut all: Vec<_> = WorkloadKind::all().into();
        all.sort_by_key(|w| w.name());
        assert_eq!(grouped, all);
    }

    #[test]
    fn build_returns_one_program_per_thread() {
        let params = WorkloadParams {
            threads: 3,
            scale: 1,
            seed: 7,
        };
        for kind in WorkloadKind::all() {
            let programs = kind.build(&params);
            assert_eq!(programs.len(), 3, "{}", kind.name());
        }
    }
}
