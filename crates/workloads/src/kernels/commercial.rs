//! The commercial half of the suite: server (apache/zeus-like), OLTP-like
//! and DSS-like kernels.

use tenways_cpu::{MemTag, Op, RmwOp, ThreadProgram};
use tenways_sim::{Addr, DetRng};

use crate::kernels::{impl_kernel_logic, KernelProgram, KernelStep, WorkloadParams};
use crate::layout::{AddressSpace, Region};
use crate::sync::SyncFrag;

/// Which server personality to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ServerMix {
    /// Balanced read/write, moderate compute.
    Apache,
    /// Read-heavier, more compute per task.
    Zeus,
}

/// Web-server-like task loop: grab a task id from a shared queue counter,
/// lock the hashed cache bucket, touch entries, unlock, think.
#[derive(Debug, Clone)]
struct Server {
    rng: DetRng,
    queue: Addr,
    cache: Region,
    locks: Vec<Addr>,
    task_limit: u64,
    task: u64,
    entry: u64,
    reads_left: u64,
    writes_left: u64,
    reads: u64,
    writes: u64,
    think: u64,
    /// 0 = fetch task, 1 = await task id, 2 = cs reads, 3 = cs writes,
    /// 4 = release, 5 = think.
    phase: u8,
}

impl Server {
    fn step(&mut self, last: Option<u64>) -> KernelStep {
        match self.phase {
            0 => {
                self.phase = 1;
                KernelStep::Op(Op::Rmw {
                    addr: self.queue,
                    rmw: RmwOp::FetchAdd(1),
                    tag: MemTag::Lock,
                    consume: true,
                })
            }
            1 => {
                self.task = last.expect("task id consumed");
                if self.task >= self.task_limit {
                    return KernelStep::Done;
                }
                // Hash the task onto a cache bucket.
                self.entry =
                    (self.task.wrapping_mul(0x9e37_79b9) + self.rng.below(64)) % self.cache.words();
                self.reads_left = self.reads;
                self.writes_left = self.writes;
                self.phase = 2;
                let lock = self.locks[(self.entry as usize) % self.locks.len()];
                KernelStep::Sync(SyncFrag::acquire(lock))
            }
            2 => {
                if self.reads_left > 0 {
                    self.reads_left -= 1;
                    let w = (self.entry + self.reads_left * 8) % self.cache.words();
                    return KernelStep::Op(Op::load(self.cache.word(w)));
                }
                self.phase = 3;
                self.step(None)
            }
            3 => {
                if self.writes_left > 0 {
                    self.writes_left -= 1;
                    let w = (self.entry + self.writes_left * 8) % self.cache.words();
                    return KernelStep::Op(Op::store(self.cache.word(w), self.task));
                }
                self.phase = 4;
                self.step(None)
            }
            4 => {
                self.phase = 5;
                let lock = self.locks[(self.entry as usize) % self.locks.len()];
                KernelStep::Sync(SyncFrag::release(lock))
            }
            _ => {
                self.phase = 0;
                KernelStep::Op(Op::Compute(self.think))
            }
        }
    }
}

impl_kernel_logic!(Server, "server");

/// Builds the apache-/zeus-like workload.
pub(crate) fn server(params: &WorkloadParams, mix: ServerMix) -> Vec<Box<dyn ThreadProgram>> {
    let mut space = AddressSpace::new();
    let queue = space.alloc_line();
    // Working set larger than a 32 KB L1 (16 K words = 128 KB).
    let cache = space.alloc_words(16 * 1024);
    let locks: Vec<Addr> = (0..64).map(|_| space.alloc_line()).collect();
    let (reads, writes, think) = match mix {
        ServerMix::Apache => (4, 2, 20),
        ServerMix::Zeus => (6, 1, 40),
    };
    let label = match mix {
        ServerMix::Apache => "apache",
        ServerMix::Zeus => "zeus",
    };
    let root = DetRng::seed(params.seed).split(label);
    let task_limit = params.scale * params.threads as u64;
    (0..params.threads)
        .map(|t| {
            KernelProgram::boxed(Box::new(Server {
                rng: root.split_index(t as u64),
                queue,
                cache,
                locks: locks.clone(),
                task_limit,
                task: 0,
                entry: 0,
                reads_left: 0,
                writes_left: 0,
                reads,
                writes,
                think,
                phase: 0,
            }))
        })
        .collect()
}

// ------------------------------------------------------------------ oltp

/// Short transactions over a partitioned record table: take two
/// deadlock-ordered locks, read-modify records under both, bump a global
/// commit counter.
#[derive(Debug, Clone)]
struct Oltp {
    rng: DetRng,
    records: Region,
    locks: Vec<Addr>,
    commit_counter: Addr,
    txns_left: u64,
    lock_a: usize,
    lock_b: usize,
    touch_left: u64,
    /// 0 = begin, 1 = acquire B, 2 = touch loads, 3 = touch stores,
    /// 4 = commit counter, 5 = release B, 6 = release A.
    phase: u8,
}

const OLTP_TOUCHES: u64 = 4;

impl Oltp {
    fn partition_word(&mut self, lock_idx: usize) -> Addr {
        let part_words = self.records.words() / self.locks.len() as u64;
        let off = self.rng.below(part_words);
        self.records.word(lock_idx as u64 * part_words + off)
    }

    fn step(&mut self, _last: Option<u64>) -> KernelStep {
        match self.phase {
            0 => {
                if self.txns_left == 0 {
                    return KernelStep::Done;
                }
                self.txns_left -= 1;
                let a = self.rng.below(self.locks.len() as u64) as usize;
                let b = self.rng.below(self.locks.len() as u64) as usize;
                // Deadlock avoidance: always lock in index order.
                self.lock_a = a.min(b);
                self.lock_b = a.max(b).max(self.lock_a + 1).min(self.locks.len() - 1);
                if self.lock_b == self.lock_a {
                    self.lock_b = (self.lock_a + 1) % self.locks.len();
                }
                self.touch_left = OLTP_TOUCHES;
                self.phase = 1;
                KernelStep::Sync(SyncFrag::acquire(self.locks[self.lock_a]))
            }
            1 => {
                self.phase = 2;
                KernelStep::Sync(SyncFrag::acquire(self.locks[self.lock_b]))
            }
            2 => {
                if self.touch_left > 0 {
                    self.touch_left -= 1;
                    let lock = if self.touch_left.is_multiple_of(2) {
                        self.lock_a
                    } else {
                        self.lock_b
                    };
                    let w = self.partition_word(lock);
                    return KernelStep::Op(Op::load(w));
                }
                self.touch_left = OLTP_TOUCHES;
                self.phase = 3;
                self.step(None)
            }
            3 => {
                if self.touch_left > 0 {
                    self.touch_left -= 1;
                    let lock = if self.touch_left.is_multiple_of(2) {
                        self.lock_a
                    } else {
                        self.lock_b
                    };
                    let w = self.partition_word(lock);
                    return KernelStep::Op(Op::store(w, self.txns_left));
                }
                self.phase = 4;
                self.step(None)
            }
            4 => {
                self.phase = 5;
                KernelStep::Op(Op::Rmw {
                    addr: self.commit_counter,
                    rmw: RmwOp::FetchAdd(1),
                    tag: MemTag::Data,
                    consume: false,
                })
            }
            5 => {
                self.phase = 6;
                KernelStep::Sync(SyncFrag::release(self.locks[self.lock_b]))
            }
            _ => {
                self.phase = 0;
                KernelStep::Sync(SyncFrag::release(self.locks[self.lock_a]))
            }
        }
    }
}

impl_kernel_logic!(Oltp, "oltp");

/// Builds the OLTP-like workload.
pub(crate) fn oltp(params: &WorkloadParams) -> Vec<Box<dyn ThreadProgram>> {
    let mut space = AddressSpace::new();
    let records = space.alloc_words(8 * 1024);
    let locks: Vec<Addr> = (0..16).map(|_| space.alloc_line()).collect();
    let commit_counter = space.alloc_line();
    let root = DetRng::seed(params.seed).split("oltp");
    (0..params.threads)
        .map(|t| {
            KernelProgram::boxed(Box::new(Oltp {
                rng: root.split_index(t as u64),
                records,
                locks: locks.clone(),
                commit_counter,
                txns_left: params.scale,
                lock_a: 0,
                lock_b: 1,
                touch_left: 0,
                phase: 0,
            }))
        })
        .collect()
}

// ------------------------------------------------------------------- dss

/// Scan-heavy, low-sharing decision support: stream over a large private
/// table with occasional shared-dictionary lookups.
#[derive(Debug, Clone)]
struct Dss {
    rng: DetRng,
    table: Region,
    dictionary: Region,
    rows_left: u64,
    cursor: u64,
    /// 0 = scan row, 1 = dictionary lookup, 2 = aggregate compute.
    phase: u8,
}

impl Dss {
    fn step(&mut self, _last: Option<u64>) -> KernelStep {
        match self.phase {
            0 => {
                if self.rows_left == 0 {
                    return KernelStep::Done;
                }
                self.rows_left -= 1;
                self.cursor = (self.cursor + 8) % self.table.words();
                self.phase = if self.rng.chance(0.15) { 1 } else { 2 };
                KernelStep::Op(Op::load(self.table.word(self.cursor)))
            }
            1 => {
                self.phase = 2;
                let d = self.rng.below(self.dictionary.words());
                KernelStep::Op(Op::load(self.dictionary.word(d)))
            }
            _ => {
                self.phase = 0;
                KernelStep::Op(Op::Compute(2))
            }
        }
    }
}

impl_kernel_logic!(Dss, "dss");

/// Builds the DSS-like workload.
pub(crate) fn dss(params: &WorkloadParams) -> Vec<Box<dyn ThreadProgram>> {
    let mut space = AddressSpace::new();
    let dictionary = space.alloc_words(1024);
    let root = DetRng::seed(params.seed).split("dss");
    (0..params.threads)
        .map(|t| {
            // Each thread repeatedly scans its own 64 KB table (8 K words,
            // one block per row; twice the L1) — the re-scans turn
            // first-touch cold misses into the capacity misses DSS is
            // known for.
            let table = space.alloc_words(8 * 1024);
            KernelProgram::boxed(Box::new(Dss {
                rng: root.split_index(t as u64),
                table,
                dictionary,
                rows_left: params.scale * 256,
                cursor: t as u64,
                phase: 0,
            }))
        })
        .collect()
}
