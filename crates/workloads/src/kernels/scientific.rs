//! The scientific half of the suite: barnes-, ocean-, radix- and lu-like
//! kernels (SPLASH-2-class sharing patterns).

use tenways_cpu::{Op, ThreadProgram};
use tenways_sim::{Addr, DetRng};

use crate::kernels::{impl_kernel_logic, KernelProgram, KernelStep, WorkloadParams};
use crate::layout::{AddressSpace, Region};
use crate::sync::SyncFrag;

/// Shared barrier addresses (counter + generation words, each on its own
/// cache block).
#[derive(Debug, Clone, Copy)]
struct BarrierAddrs {
    counter: Addr,
    generation: Addr,
}

impl BarrierAddrs {
    fn alloc(space: &mut AddressSpace) -> Self {
        BarrierAddrs {
            counter: space.alloc_line(),
            generation: space.alloc_line(),
        }
    }

    fn wait(self, parties: u64) -> SyncFrag {
        SyncFrag::barrier(self.counter, self.generation, parties)
    }
}

// ---------------------------------------------------------------- barnes

/// Tree walks over a shared node array with occasional per-node locking.
#[derive(Debug, Clone)]
struct Barnes {
    rng: DetRng,
    tree: Region,
    locks: Vec<Addr>,
    walks_left: u64,
    depth_left: u64,
    node: u64,
    /// 0 = walking, 1 = in critical section (update node), 2 = cs store.
    phase: u8,
}

impl Barnes {
    fn step(&mut self, _last: Option<u64>) -> KernelStep {
        match self.phase {
            0 => {
                if self.depth_left == 0 {
                    if self.walks_left == 0 {
                        return KernelStep::Done;
                    }
                    self.walks_left -= 1;
                    self.depth_left = 8;
                    self.node = self.rng.below(self.tree.words());
                }
                self.depth_left -= 1;
                // Descend: child index derived from current node.
                self.node = (self.node * 2 + 1 + self.rng.below(2)) % self.tree.words();
                if self.depth_left == 0 && self.rng.chance(0.4) {
                    // Update this node under its lock.
                    self.phase = 1;
                    let lock = self.locks[(self.node as usize) % self.locks.len()];
                    return KernelStep::Sync(SyncFrag::acquire(lock));
                }
                KernelStep::Op(Op::load(self.tree.word(self.node)))
            }
            1 => {
                self.phase = 2;
                KernelStep::Op(Op::load(self.tree.word(self.node)))
            }
            2 => {
                self.phase = 3;
                KernelStep::Op(Op::store(self.tree.word(self.node), self.node))
            }
            _ => {
                self.phase = 0;
                let lock = self.locks[(self.node as usize) % self.locks.len()];
                KernelStep::Sync(SyncFrag::release(lock))
            }
        }
    }
}

impl_kernel_logic!(Barnes, "barnes");

/// Builds the barnes-like workload.
pub(crate) fn barnes(params: &WorkloadParams) -> Vec<Box<dyn ThreadProgram>> {
    let mut space = AddressSpace::new();
    let tree = space.alloc_words(2048);
    let locks: Vec<Addr> = (0..32).map(|_| space.alloc_line()).collect();
    let root = DetRng::seed(params.seed).split("barnes");
    (0..params.threads)
        .map(|t| {
            KernelProgram::boxed(Box::new(Barnes {
                rng: root.split_index(t as u64),
                tree,
                locks: locks.clone(),
                walks_left: params.scale * 8,
                depth_left: 0,
                node: 0,
                phase: 0,
            }))
        })
        .collect()
}

// ----------------------------------------------------------------- ocean

/// Row-partitioned stencil: each sweep reads neighbour rows (owned by
/// adjacent threads) and ends at a barrier.
#[derive(Debug, Clone)]
struct Ocean {
    grid: Region,
    row_words: u64,
    me: u64,
    threads: u64,
    sweeps_left: u64,
    col: u64,
    /// 0 = load up-neighbour, 1 = load down-neighbour, 2 = store own.
    phase: u8,
    barrier: BarrierAddrs,
    at_barrier: bool,
    pending_barrier: bool,
}

impl Ocean {
    fn word(&self, row: u64, col: u64) -> Addr {
        self.grid.word(row * self.row_words + col)
    }

    fn step(&mut self, _last: Option<u64>) -> KernelStep {
        let up = (self.me + self.threads - 1) % self.threads;
        let down = (self.me + 1) % self.threads;
        match self.phase {
            0 => {
                self.phase = 1;
                KernelStep::Op(Op::load(self.word(up, self.col)))
            }
            1 => {
                self.phase = 2;
                KernelStep::Op(Op::load(self.word(down, self.col)))
            }
            _ => {
                let op = Op::store(self.word(self.me, self.col), self.col);
                self.col += 1;
                self.phase = 0;
                if self.col == self.row_words {
                    self.at_barrier = true;
                    // Emit the store first; the barrier starts on the next
                    // step call.
                    return KernelStep::Op(op);
                }
                KernelStep::Op(op)
            }
        }
    }
}

impl Ocean {
    fn step_with_barrier(&mut self, last: Option<u64>) -> KernelStep {
        if self.at_barrier {
            self.at_barrier = false;
            self.pending_barrier = true;
            return KernelStep::Sync(self.barrier.wait(self.threads));
        }
        if self.pending_barrier {
            self.pending_barrier = false;
            if self.sweeps_left == 0 {
                return KernelStep::Done;
            }
            self.sweeps_left -= 1;
            self.col = 0;
            self.phase = 0;
        }
        self.step(last)
    }
}

/// Builds the ocean-like workload.
pub(crate) fn ocean(params: &WorkloadParams) -> Vec<Box<dyn ThreadProgram>> {
    let mut space = AddressSpace::new();
    let row_words = 64;
    let grid = space.alloc_words(params.threads as u64 * row_words);
    let barrier = BarrierAddrs::alloc(&mut space);
    (0..params.threads)
        .map(|t| {
            KernelProgram::boxed(Box::new(OceanDriver(Ocean {
                grid,
                row_words,
                me: t as u64,
                threads: params.threads as u64,
                sweeps_left: params.scale,
                col: 0,
                phase: 0,
                barrier,
                at_barrier: false,
                pending_barrier: true,
            })))
        })
        .collect()
}

/// Newtype driving [`Ocean::step_with_barrier`].
#[derive(Debug, Clone)]
struct OceanDriver(Ocean);

impl OceanDriver {
    fn step(&mut self, last: Option<u64>) -> KernelStep {
        self.0.step_with_barrier(last)
    }
}

impl_kernel_logic!(OceanDriver, "ocean");

// ----------------------------------------------------------------- radix

/// Local phase then all-to-all scatter, barrier-separated rounds.
#[derive(Debug, Clone)]
struct Radix {
    rng: DetRng,
    private: Region,
    target: Region,
    threads: u64,
    rounds_left: u64,
    local_left: u64,
    scatter_left: u64,
    idx: u64,
    barrier: BarrierAddrs,
    /// 0 = start round (barrier), 1 = local, 2 = scatter.
    phase: u8,
}

const RADIX_LOCAL: u64 = 48;
const RADIX_SCATTER: u64 = 24;

impl Radix {
    fn step(&mut self, _last: Option<u64>) -> KernelStep {
        match self.phase {
            0 => {
                if self.rounds_left == 0 {
                    return KernelStep::Done;
                }
                self.rounds_left -= 1;
                self.local_left = RADIX_LOCAL;
                self.scatter_left = RADIX_SCATTER;
                self.phase = 1;
                KernelStep::Sync(self.barrier.wait(self.threads))
            }
            1 => {
                if self.local_left == 0 {
                    self.phase = 2;
                    return self.step(None);
                }
                self.local_left -= 1;
                self.idx = (self.idx + 1) % self.private.words();
                KernelStep::Op(Op::load(self.private.word(self.idx)))
            }
            _ => {
                if self.scatter_left == 0 {
                    self.phase = 0;
                    return self.step(None);
                }
                self.scatter_left -= 1;
                let dst = self.rng.below(self.target.words());
                KernelStep::Op(Op::store(self.target.word(dst), dst))
            }
        }
    }
}

impl_kernel_logic!(Radix, "radix");

/// Builds the radix-like workload.
pub(crate) fn radix(params: &WorkloadParams) -> Vec<Box<dyn ThreadProgram>> {
    let mut space = AddressSpace::new();
    let target = space.alloc_words(params.threads as u64 * 128);
    let barrier = BarrierAddrs::alloc(&mut space);
    let root = DetRng::seed(params.seed).split("radix");
    (0..params.threads)
        .map(|t| {
            let private = space.alloc_words(256);
            KernelProgram::boxed(Box::new(Radix {
                rng: root.split_index(t as u64),
                private,
                target,
                threads: params.threads as u64,
                rounds_left: params.scale,
                local_left: 0,
                scatter_left: 0,
                idx: 0,
                barrier,
                phase: 0,
            }))
        })
        .collect()
}

// -------------------------------------------------------------------- lu

/// Round-robin pivot production: the owner stores the pivot block, a
/// barrier publishes it, everyone consumes it (broadcast sharing).
#[derive(Debug, Clone)]
struct Lu {
    pivot: Region,
    own: Region,
    me: u64,
    threads: u64,
    round: u64,
    rounds: u64,
    i: u64,
    /// 0 = produce-or-skip, 1 = publish barrier, 2 = consume, 3 = update,
    /// 4 = end-of-round barrier.
    phase: u8,
    barrier: BarrierAddrs,
}

impl Lu {
    fn step(&mut self, _last: Option<u64>) -> KernelStep {
        match self.phase {
            0 => {
                if self.round == self.rounds {
                    return KernelStep::Done;
                }
                if self.round % self.threads == self.me && self.i < self.pivot.words() {
                    let op = Op::store(self.pivot.word(self.i), self.round);
                    self.i += 1;
                    return KernelStep::Op(op);
                }
                self.i = 0;
                self.phase = 2;
                KernelStep::Sync(self.barrier.wait(self.threads))
            }
            2 => {
                if self.i < self.pivot.words() {
                    let op = Op::load(self.pivot.word(self.i));
                    self.i += 1;
                    return KernelStep::Op(op);
                }
                self.i = 0;
                self.phase = 3;
                self.step(None)
            }
            3 => {
                if self.i < self.own.words() {
                    let op = Op::store(self.own.word(self.i), self.round);
                    self.i += 1;
                    return KernelStep::Op(op);
                }
                self.i = 0;
                self.phase = 4;
                KernelStep::Sync(self.barrier.wait(self.threads))
            }
            _ => {
                self.round += 1;
                self.phase = 0;
                self.step(None)
            }
        }
    }
}

impl_kernel_logic!(Lu, "lu");

/// Builds the lu-like workload.
pub(crate) fn lu(params: &WorkloadParams) -> Vec<Box<dyn ThreadProgram>> {
    let mut space = AddressSpace::new();
    let pivot = space.alloc_words(32);
    let barrier = BarrierAddrs::alloc(&mut space);
    (0..params.threads)
        .map(|t| {
            let own = space.alloc_words(32);
            KernelProgram::boxed(Box::new(Lu {
                pivot,
                own,
                me: t as u64,
                threads: params.threads as u64,
                round: 0,
                rounds: params.scale,
                i: 0,
                phase: 0,
                barrier,
            }))
        })
        .collect()
}
