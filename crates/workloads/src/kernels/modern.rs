//! The modern-sync extension of the suite: queue locks, RCU, hazard
//! pointers, flat combining and a Chase-Lev work-stealing deque.
//!
//! Each kernel composes the [`SyncFrag`] fragments from
//! [`crate::sync`] into a closed workload with a checkable end-of-run
//! invariant (exact counters, never-poisoned reads, every task executed
//! exactly once), so the lock ablation and the waste taxonomy can sweep
//! them like any other workload.

use tenways_cpu::{FenceKind, MemTag, Op, RmwOp, ThreadProgram};
use tenways_sim::Addr;

use crate::kernels::{impl_kernel_logic, KernelProgram, KernelStep, WorkloadParams};
use crate::layout::{AddressSpace, Region, WORD};
use crate::lockbench::{lock_bench_programs, LockBenchParams, LockKind};
use crate::sync::{DequeAddrs, SyncFrag};

/// Per-thread slot arrays use one cache line per thread.
const STRIDE: u64 = 64;

/// The queue-lock workloads reuse the lock benchmark with an MCS or CLH
/// lock under moderate contention.
pub(crate) fn queue_lock(params: &WorkloadParams, kind: LockKind) -> Vec<Box<dyn ThreadProgram>> {
    let lp = LockBenchParams {
        threads: params.threads,
        rounds: 4 * params.scale.max(1),
        cs_compute: 6,
        think_compute: 6,
        kind,
    };
    lock_bench_programs(&lp).0
}

// ---------------------------------------------------------------------------
// RCU: even threads read through a published pointer, odd threads update
// it and wait out a grace period before poisoning the old node.
// ---------------------------------------------------------------------------

/// Shared addresses of an RCU run (for result inspection).
#[derive(Debug, Clone, Copy)]
#[cfg_attr(not(test), allow(dead_code))] // read by the in-crate invariant tests
pub(crate) struct RcuLayout {
    /// Global grace-period generation; ends at `writers * writes`.
    pub gen: Addr,
    /// Two words per thread: good derefs, poisoned derefs (must be 0).
    pub results: Region,
    /// Updates each writer performs.
    pub writes: u64,
    /// Number of writer threads.
    pub writers: u64,
}

#[derive(Debug, Clone)]
struct RcuReader {
    me: u64,
    gen: Addr,
    slots: Addr,
    ptr: Addr,
    results: Region,
    rounds_left: u64,
    good: u64,
    bad: u64,
    phase: u8,
}

impl RcuReader {
    fn online(&self) -> Addr {
        self.slots.offset(self.me * STRIDE)
    }

    fn step(&mut self, last: Option<u64>) -> KernelStep {
        match self.phase {
            0 => {
                self.phase = 1;
                KernelStep::Op(Op::Store {
                    addr: self.online(),
                    value: 1,
                    tag: MemTag::Barrier,
                })
            }
            1 => {
                if self.rounds_left == 0 {
                    self.phase = 6;
                    return KernelStep::Op(Op::Store {
                        addr: self.online(),
                        value: 0,
                        tag: MemTag::Barrier,
                    });
                }
                self.rounds_left -= 1;
                self.phase = 2;
                KernelStep::Op(Op::Load {
                    addr: self.ptr,
                    tag: MemTag::Data,
                    consume: true,
                })
            }
            2 => {
                let p = last.expect("pointer consumed");
                if p == 0 {
                    // Nothing published yet: not a violation, skip.
                    self.phase = 4;
                    self.step(None)
                } else {
                    self.phase = 3;
                    KernelStep::Op(Op::Load {
                        addr: Addr(p),
                        tag: MemTag::Data,
                        consume: true,
                    })
                }
            }
            3 => {
                // A zero value is the poison a writer plants on reclaim:
                // observing it means the grace period failed.
                if last.expect("node value consumed") == 0 {
                    self.bad += 1;
                } else {
                    self.good += 1;
                }
                self.phase = 4;
                self.step(None)
            }
            4 => {
                // Quiescent state between rounds: note the generation...
                self.phase = 5;
                KernelStep::Op(Op::Load {
                    addr: self.gen,
                    tag: MemTag::Barrier,
                    consume: true,
                })
            }
            5 => {
                // ...and report it.
                self.phase = 1;
                KernelStep::Op(Op::Store {
                    addr: self.online().offset(WORD),
                    value: last.expect("generation consumed"),
                    tag: MemTag::Barrier,
                })
            }
            6 => {
                self.phase = 7;
                KernelStep::Op(Op::store(self.results.word(2 * self.me), self.good))
            }
            7 => {
                self.phase = 8;
                KernelStep::Op(Op::store(self.results.word(2 * self.me + 1), self.bad))
            }
            _ => KernelStep::Done,
        }
    }
}

impl_kernel_logic!(RcuReader, "rcu");

#[derive(Debug, Clone)]
struct RcuWriter {
    me: u64,
    threads: u64,
    gen: Addr,
    slots: Addr,
    ptr: Addr,
    nodes: Addr,
    rounds_left: u64,
    next_node: u64,
    victim: u64,
    phase: u8,
}

impl RcuWriter {
    fn step(&mut self, last: Option<u64>) -> KernelStep {
        match self.phase {
            0 => {
                if self.rounds_left == 0 {
                    return KernelStep::Done;
                }
                self.rounds_left -= 1;
                self.phase = 1;
                KernelStep::Op(Op::store(
                    self.nodes.offset(self.next_node * STRIDE),
                    self.next_node + 1,
                ))
            }
            1 => {
                // Publication fence: the node's payload must be globally
                // visible before the swap (which bypasses the store
                // buffer) can hand its address to readers.
                self.phase = 2;
                KernelStep::Op(Op::Fence(FenceKind::Full))
            }
            2 => {
                let node = self.nodes.offset(self.next_node * STRIDE);
                self.next_node += 1;
                self.phase = 3;
                KernelStep::Op(Op::Rmw {
                    addr: self.ptr,
                    rmw: RmwOp::Swap(node.0),
                    tag: MemTag::Data,
                    consume: true,
                })
            }
            3 => {
                self.victim = last.expect("old pointer consumed");
                self.phase = 4;
                KernelStep::Sync(SyncFrag::rcu_sync(
                    self.gen,
                    self.slots,
                    STRIDE,
                    self.threads,
                    self.me,
                ))
            }
            4 => {
                self.phase = 0;
                if self.victim == 0 {
                    // First publication had no predecessor to reclaim.
                    self.step(None)
                } else {
                    // Grace period over: no reader can hold the victim.
                    KernelStep::Op(Op::store(Addr(self.victim), 0))
                }
            }
            _ => KernelStep::Done,
        }
    }
}

impl_kernel_logic!(RcuWriter, "rcu");

pub(crate) fn rcu_with_layout(params: &WorkloadParams) -> (Vec<Box<dyn ThreadProgram>>, RcuLayout) {
    let threads = params.threads.max(1) as u64;
    let reads = 4 * params.scale.max(1);
    let writes = 2 * params.scale.max(1);
    let writers = threads / 2;

    let mut space = AddressSpace::new();
    let gen = space.alloc_line();
    let ptr = space.alloc_line();
    let slots = space.alloc_words(threads * (STRIDE / WORD)).base();
    let nodes = space
        .alloc_words((writers * writes).max(1) * (STRIDE / WORD))
        .base();
    let results = space.alloc_words(2 * threads);

    let mut writer_index = 0;
    let programs = (0..threads)
        .map(|me| {
            if me % 2 == 1 {
                let base = writer_index * writes;
                writer_index += 1;
                KernelProgram::boxed(Box::new(RcuWriter {
                    me,
                    threads,
                    gen,
                    slots,
                    ptr,
                    nodes,
                    rounds_left: writes,
                    next_node: base,
                    victim: 0,
                    phase: 0,
                }))
            } else {
                KernelProgram::boxed(Box::new(RcuReader {
                    me,
                    gen,
                    slots,
                    ptr,
                    results,
                    rounds_left: reads,
                    good: 0,
                    bad: 0,
                    phase: 0,
                }))
            }
        })
        .collect();
    (
        programs,
        RcuLayout {
            gen,
            results,
            writes,
            writers,
        },
    )
}

pub(crate) fn rcu(params: &WorkloadParams) -> Vec<Box<dyn ThreadProgram>> {
    rcu_with_layout(params).0
}

// ---------------------------------------------------------------------------
// Hazard pointers: thread 0 retires nodes, the rest read under protection.
// ---------------------------------------------------------------------------

/// Shared addresses of a hazard-pointer run (for result inspection).
#[derive(Debug, Clone, Copy)]
#[cfg_attr(not(test), allow(dead_code))] // read by the in-crate invariant tests
pub(crate) struct HazardLayout {
    /// Two words per thread: good derefs, poisoned derefs (must be 0).
    pub results: Region,
}

#[derive(Debug, Clone)]
struct HazardReader {
    me: u64,
    ptr: Addr,
    slot: Addr,
    results: Region,
    rounds_left: u64,
    good: u64,
    bad: u64,
    phase: u8,
}

impl HazardReader {
    fn step(&mut self, last: Option<u64>) -> KernelStep {
        match self.phase {
            0 => {
                if self.rounds_left == 0 {
                    self.phase = 3;
                    return KernelStep::Op(Op::store(self.results.word(2 * self.me), self.good));
                }
                self.rounds_left -= 1;
                self.phase = 1;
                KernelStep::Sync(SyncFrag::hazard_protect(self.ptr, self.slot))
            }
            1 => {
                let p = last.expect("protected pointer from fragment");
                if p == 0 {
                    // Nothing published yet.
                    self.phase = 0;
                    self.step(None)
                } else {
                    self.phase = 2;
                    KernelStep::Op(Op::Load {
                        addr: Addr(p),
                        tag: MemTag::Data,
                        consume: true,
                    })
                }
            }
            2 => {
                // Zero = the retirer poisoned a node we still protect: a
                // safe-memory-reclamation violation.
                if last.expect("node value consumed") == 0 {
                    self.bad += 1;
                } else {
                    self.good += 1;
                }
                self.phase = 0;
                KernelStep::Op(Op::Store {
                    addr: self.slot,
                    value: 0,
                    tag: MemTag::Lock,
                })
            }
            3 => {
                self.phase = 4;
                KernelStep::Op(Op::store(self.results.word(2 * self.me + 1), self.bad))
            }
            _ => KernelStep::Done,
        }
    }
}

impl_kernel_logic!(HazardReader, "hazard");

#[derive(Debug, Clone)]
struct HazardRetirer {
    threads: u64,
    ptr: Addr,
    hazards: Addr,
    nodes: Addr,
    rounds_left: u64,
    next_node: u64,
    victim: u64,
    scan: u64,
    phase: u8,
}

impl HazardRetirer {
    fn step(&mut self, last: Option<u64>) -> KernelStep {
        match self.phase {
            0 => {
                if self.rounds_left == 0 {
                    return KernelStep::Done;
                }
                self.rounds_left -= 1;
                self.phase = 1;
                KernelStep::Op(Op::store(
                    self.nodes.offset(self.next_node * STRIDE),
                    self.next_node + 1,
                ))
            }
            1 => {
                // Publication fence before the SB-bypassing swap.
                self.phase = 2;
                KernelStep::Op(Op::Fence(FenceKind::Full))
            }
            2 => {
                let node = self.nodes.offset(self.next_node * STRIDE);
                self.next_node += 1;
                self.phase = 3;
                KernelStep::Op(Op::Rmw {
                    addr: self.ptr,
                    rmw: RmwOp::Swap(node.0),
                    tag: MemTag::Data,
                    consume: true,
                })
            }
            3 => {
                self.victim = last.expect("old pointer consumed");
                self.phase = 4;
                if self.victim == 0 {
                    self.phase = 0;
                    return self.step(None);
                }
                self.scan = 1;
                self.step(None)
            }
            4 => {
                if self.scan >= self.threads {
                    // No hazard covers the victim: reclaim (poison) it.
                    self.phase = 0;
                    KernelStep::Op(Op::store(Addr(self.victim), 0))
                } else {
                    self.phase = 5;
                    KernelStep::Op(Op::Load {
                        addr: self.hazards.offset(self.scan * STRIDE),
                        tag: MemTag::Lock,
                        consume: true,
                    })
                }
            }
            5 => {
                if last.expect("hazard slot consumed") == self.victim {
                    // Still protected: wait for the reader to move on.
                    KernelStep::Op(Op::Load {
                        addr: self.hazards.offset(self.scan * STRIDE),
                        tag: MemTag::Lock,
                        consume: true,
                    })
                } else {
                    self.scan += 1;
                    self.phase = 4;
                    self.step(None)
                }
            }
            _ => KernelStep::Done,
        }
    }
}

impl_kernel_logic!(HazardRetirer, "hazard");

pub(crate) fn hazard_with_layout(
    params: &WorkloadParams,
) -> (Vec<Box<dyn ThreadProgram>>, HazardLayout) {
    let threads = params.threads.max(1) as u64;
    let reads = 4 * params.scale.max(1);
    let retires = 2 * params.scale.max(1);

    let mut space = AddressSpace::new();
    let ptr = space.alloc_line();
    let hazards = space.alloc_words(threads * (STRIDE / WORD)).base();
    let nodes = space.alloc_words(retires * (STRIDE / WORD)).base();
    let results = space.alloc_words(2 * threads);

    let programs = (0..threads)
        .map(|me| {
            if me == 0 {
                KernelProgram::boxed(Box::new(HazardRetirer {
                    threads,
                    ptr,
                    hazards,
                    nodes,
                    rounds_left: retires,
                    next_node: 0,
                    victim: 0,
                    scan: 0,
                    phase: 0,
                }))
            } else {
                KernelProgram::boxed(Box::new(HazardReader {
                    me,
                    ptr,
                    slot: hazards.offset(me * STRIDE),
                    results,
                    rounds_left: reads,
                    good: 0,
                    bad: 0,
                    phase: 0,
                }))
            }
        })
        .collect();
    (programs, HazardLayout { results })
}

pub(crate) fn hazard(params: &WorkloadParams) -> Vec<Box<dyn ThreadProgram>> {
    hazard_with_layout(params).0
}

// ---------------------------------------------------------------------------
// Flat combining: publish a request, then either wait for a combiner or
// take the combiner lock and apply everyone's pending requests.
// ---------------------------------------------------------------------------

/// Shared addresses of a flat-combining run (for result inspection).
#[derive(Debug, Clone, Copy)]
#[cfg_attr(not(test), allow(dead_code))] // read by the in-crate invariant tests
pub(crate) struct FlatCombLayout {
    /// The combined counter; must end at `threads * rounds`.
    pub counter: Addr,
    /// Rounds per thread.
    pub rounds: u64,
}

#[derive(Debug, Clone)]
struct FcThread {
    me: u64,
    threads: u64,
    fclock: Addr,
    slots: Addr,
    counter: Addr,
    rounds_left: u64,
    scan: u64,
    delta: u64,
    phase: u8,
}

impl FcThread {
    fn slot(&self, i: u64) -> Addr {
        self.slots.offset(i * STRIDE)
    }

    fn step(&mut self, last: Option<u64>) -> KernelStep {
        match self.phase {
            0 => {
                if self.rounds_left == 0 {
                    return KernelStep::Done;
                }
                self.rounds_left -= 1;
                self.phase = 1;
                KernelStep::Op(Op::store(self.slot(self.me), 1))
            }
            1 => {
                self.phase = 2;
                KernelStep::Op(Op::Fence(FenceKind::Release))
            }
            2 => {
                self.phase = 3;
                KernelStep::Op(Op::Load {
                    addr: self.slot(self.me),
                    tag: MemTag::Data,
                    consume: true,
                })
            }
            3 => {
                if last.expect("own slot consumed") == 0 {
                    // A combiner applied our request.
                    self.phase = 0;
                    KernelStep::Op(Op::Fence(FenceKind::Acquire))
                } else {
                    self.phase = 4;
                    KernelStep::Op(Op::Load {
                        addr: self.fclock,
                        tag: MemTag::Lock,
                        consume: true,
                    })
                }
            }
            4 => {
                if last.expect("combiner lock consumed") != 0 {
                    // Someone is combining: go back to watching our slot.
                    self.phase = 2;
                    self.step(None)
                } else {
                    // Lock looks free: try to become the combiner. No
                    // fence is needed before the CAS even though our own
                    // `fclock = 0` release from a previous combining pass
                    // may still sit in the store buffer — the core's RMW
                    // issue rule waits for buffered same-address stores to
                    // drain (per-location coherence), so the CAS always
                    // races against the globally visible lock word.
                    self.phase = 5;
                    KernelStep::Op(Op::Rmw {
                        addr: self.fclock,
                        rmw: RmwOp::Cas {
                            expected: 0,
                            desired: 1,
                        },
                        tag: MemTag::Lock,
                        consume: true,
                    })
                }
            }
            5 => {
                if last.expect("cas result consumed") != 0 {
                    self.phase = 2;
                    self.step(None)
                } else {
                    // We are the combiner.
                    self.scan = 0;
                    self.phase = 6;
                    KernelStep::Op(Op::Fence(FenceKind::Acquire))
                }
            }
            6 => {
                if self.scan >= self.threads {
                    self.phase = 9;
                    KernelStep::Op(Op::Fence(FenceKind::Release))
                } else {
                    self.phase = 7;
                    KernelStep::Op(Op::Load {
                        addr: self.slot(self.scan),
                        tag: MemTag::Data,
                        consume: true,
                    })
                }
            }
            7 => {
                self.delta = last.expect("peer slot consumed");
                if self.delta == 0 {
                    self.scan += 1;
                    self.phase = 6;
                    self.step(None)
                } else {
                    self.phase = 8;
                    KernelStep::Op(Op::Load {
                        addr: self.counter,
                        tag: MemTag::Data,
                        consume: true,
                    })
                }
            }
            8 => {
                // Apply, then clear the slot (FIFO store order makes the
                // clear visible only after the counter update).
                let c = last.expect("counter consumed");
                self.phase = 10;
                KernelStep::Op(Op::store(self.counter, c.wrapping_add(self.delta)))
            }
            10 => {
                let slot = self.slot(self.scan);
                self.scan += 1;
                self.phase = 6;
                KernelStep::Op(Op::store(slot, 0))
            }
            9 => {
                // Release the combiner lock; our own request was combined
                // during the pass (the scan covers our slot too).
                self.phase = 2;
                KernelStep::Op(Op::Store {
                    addr: self.fclock,
                    value: 0,
                    tag: MemTag::Lock,
                })
            }
            _ => KernelStep::Done,
        }
    }
}

impl_kernel_logic!(FcThread, "flatcomb");

pub(crate) fn flat_combining_with_layout(
    params: &WorkloadParams,
) -> (Vec<Box<dyn ThreadProgram>>, FlatCombLayout) {
    let threads = params.threads.max(1) as u64;
    let rounds = 4 * params.scale.max(1);

    let mut space = AddressSpace::new();
    let fclock = space.alloc_line();
    let counter = space.alloc_line();
    let slots = space.alloc_words(threads * (STRIDE / WORD)).base();

    let programs = (0..threads)
        .map(|me| {
            KernelProgram::boxed(Box::new(FcThread {
                me,
                threads,
                fclock,
                slots,
                counter,
                rounds_left: rounds,
                scan: 0,
                delta: 0,
                phase: 0,
            }))
        })
        .collect();
    (programs, FlatCombLayout { counter, rounds })
}

pub(crate) fn flat_combining(params: &WorkloadParams) -> Vec<Box<dyn ThreadProgram>> {
    flat_combining_with_layout(params).0
}

// ---------------------------------------------------------------------------
// Work stealing: thread 0 owns a Chase-Lev deque and pushes every task;
// the other threads steal from the far end until all tasks have run.
// ---------------------------------------------------------------------------

/// Shared addresses of a work-stealing run (for result inspection).
#[derive(Debug, Clone, Copy)]
#[cfg_attr(not(test), allow(dead_code))] // read by the in-crate invariant tests
pub(crate) struct WsDequeLayout {
    /// One word per task; each must end at exactly 1.
    pub claimed: Region,
    /// Total tasks executed; must end at `total`.
    pub executed: Addr,
    /// Number of tasks.
    pub total: u64,
}

#[derive(Debug, Clone)]
struct DequeOwner {
    deque: DequeAddrs,
    claimed: Addr,
    executed: Addr,
    total: u64,
    pushed: u64,
    phase: u8,
}

impl DequeOwner {
    fn step(&mut self, last: Option<u64>) -> KernelStep {
        match self.phase {
            0 => {
                if self.pushed < self.total {
                    let task = self.pushed;
                    self.pushed += 1;
                    KernelStep::Sync(SyncFrag::deque_push(self.deque, task))
                } else {
                    self.phase = 1;
                    self.step(None)
                }
            }
            1 => {
                self.phase = 2;
                KernelStep::Sync(SyncFrag::deque_take(
                    self.deque,
                    self.claimed,
                    self.executed,
                ))
            }
            2 => {
                if last == Some(1) {
                    self.phase = 1;
                    self.step(None)
                } else {
                    // Own deque drained; wait for thieves to finish what
                    // they stole.
                    self.phase = 3;
                    self.step(None)
                }
            }
            3 => {
                self.phase = 4;
                KernelStep::Op(Op::Load {
                    addr: self.executed,
                    tag: MemTag::Barrier,
                    consume: true,
                })
            }
            4 => {
                if last == Some(self.total) {
                    KernelStep::Done
                } else {
                    self.phase = 3;
                    self.step(None)
                }
            }
            _ => KernelStep::Done,
        }
    }
}

impl_kernel_logic!(DequeOwner, "wsdeque");

#[derive(Debug, Clone)]
struct DequeThief {
    deque: DequeAddrs,
    claimed: Addr,
    executed: Addr,
    total: u64,
    phase: u8,
}

impl DequeThief {
    fn step(&mut self, last: Option<u64>) -> KernelStep {
        match self.phase {
            0 => {
                self.phase = 1;
                KernelStep::Sync(SyncFrag::deque_steal(
                    self.deque,
                    self.claimed,
                    self.executed,
                ))
            }
            1 => {
                if last == Some(1) {
                    self.phase = 0;
                    self.step(None)
                } else {
                    // Empty or lost a race: check for global completion.
                    self.phase = 2;
                    self.step(None)
                }
            }
            2 => {
                self.phase = 3;
                KernelStep::Op(Op::Load {
                    addr: self.executed,
                    tag: MemTag::Barrier,
                    consume: true,
                })
            }
            3 => {
                if last == Some(self.total) {
                    KernelStep::Done
                } else {
                    self.phase = 0;
                    self.step(None)
                }
            }
            _ => KernelStep::Done,
        }
    }
}

impl_kernel_logic!(DequeThief, "wsdeque");

pub(crate) fn ws_deque_with_layout(
    params: &WorkloadParams,
) -> (Vec<Box<dyn ThreadProgram>>, WsDequeLayout) {
    let threads = params.threads.max(1) as u64;
    let total = 8 * params.scale.max(1);
    let cap = total.next_power_of_two();

    let mut space = AddressSpace::new();
    let deque = DequeAddrs {
        top: space.alloc_line(),
        bottom: space.alloc_line(),
        buf: space.alloc_words(cap).base(),
        mask: cap - 1,
    };
    let claimed = space.alloc_words(total);
    let executed = space.alloc_line();

    let programs = (0..threads)
        .map(|me| {
            if me == 0 {
                KernelProgram::boxed(Box::new(DequeOwner {
                    deque,
                    claimed: claimed.base(),
                    executed,
                    total,
                    pushed: 0,
                    phase: 0,
                }))
            } else {
                KernelProgram::boxed(Box::new(DequeThief {
                    deque,
                    claimed: claimed.base(),
                    executed,
                    total,
                    phase: 0,
                }))
            }
        })
        .collect();
    (
        programs,
        WsDequeLayout {
            claimed,
            executed,
            total,
        },
    )
}

pub(crate) fn ws_deque(params: &WorkloadParams) -> Vec<Box<dyn ThreadProgram>> {
    ws_deque_with_layout(params).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenways_cpu::{ConsistencyModel, Machine, MachineSpec};
    use tenways_sim::MachineConfig;

    fn machine(model: ConsistencyModel, programs: Vec<Box<dyn ThreadProgram>>) -> Machine {
        let cores = programs.len();
        let cfg = MachineConfig::builder().cores(cores).build().unwrap();
        let spec = MachineSpec::baseline(model).with_machine(cfg);
        Machine::new(&spec, programs)
    }

    const PARAMS: WorkloadParams = WorkloadParams {
        threads: 4,
        scale: 2,
        seed: 7,
    };

    #[test]
    fn rcu_readers_never_see_reclaimed_nodes() {
        for model in ConsistencyModel::all() {
            let (programs, layout) = rcu_with_layout(&PARAMS);
            let mut m = machine(model, programs);
            let s = m.run(10_000_000);
            assert!(s.finished, "rcu under {model} hung");
            for me in (0..PARAMS.threads as u64).step_by(2) {
                let bad = m.mem().read(layout.results.word(2 * me + 1));
                assert_eq!(bad, 0, "reader {me} saw poison under {model}");
            }
            assert_eq!(
                m.mem().read(layout.gen),
                layout.writers * layout.writes,
                "one grace period per update under {model}"
            );
        }
    }

    #[test]
    fn hazard_readers_never_see_reclaimed_nodes() {
        for model in ConsistencyModel::all() {
            let (programs, layout) = hazard_with_layout(&PARAMS);
            let mut m = machine(model, programs);
            let s = m.run(10_000_000);
            assert!(s.finished, "hazard under {model} hung");
            for me in 1..PARAMS.threads as u64 {
                let bad = m.mem().read(layout.results.word(2 * me + 1));
                assert_eq!(bad, 0, "reader {me} saw poison under {model}");
            }
        }
    }

    #[test]
    fn flat_combining_counter_is_exact() {
        for model in ConsistencyModel::all() {
            let (programs, layout) = flat_combining_with_layout(&PARAMS);
            let mut m = machine(model, programs);
            let s = m.run(10_000_000);
            assert!(s.finished, "flatcomb under {model} hung");
            assert_eq!(
                m.mem().read(layout.counter),
                PARAMS.threads as u64 * layout.rounds,
                "lost increments under {model}"
            );
        }
    }

    #[test]
    fn every_deque_task_runs_exactly_once() {
        for model in ConsistencyModel::all() {
            let (programs, layout) = ws_deque_with_layout(&PARAMS);
            let mut m = machine(model, programs);
            let s = m.run(10_000_000);
            assert!(s.finished, "wsdeque under {model} hung");
            assert_eq!(m.mem().read(layout.executed), layout.total);
            for task in 0..layout.total {
                assert_eq!(
                    m.mem().read(layout.claimed.word(task)),
                    1,
                    "task {task} under {model}"
                );
            }
        }
    }

    #[test]
    fn single_thread_modern_workloads_terminate() {
        let params = WorkloadParams {
            threads: 1,
            scale: 1,
            seed: 1,
        };
        for kind in crate::kernels::WorkloadKind::modern_sync() {
            let programs = kind.build(&params);
            let mut m = machine(ConsistencyModel::Rmo, programs);
            let s = m.run(5_000_000);
            assert!(s.finished, "{} hung single-threaded", kind.name());
        }
    }
}
