//! The tenways workload suite: reactive, deterministic stand-ins for the
//! scientific (SPLASH-2-class) and commercial (web / OLTP / DSS) programs
//! the evaluation models.
//!
//! Every workload is a [`tenways_cpu::ThreadProgram`] state machine built
//! from loads, stores, atomics and fences — synchronization (test-and-test-
//! and-set locks, sense-reversing barriers) is implemented *in the workload
//! layer from those primitives*, so lock spinning and barrier waits emerge
//! from the simulated memory system rather than being modeled by fiat.
//!
//! Determinism: each thread derives its random stream from the run seed
//! via [`tenways_sim::DetRng::split`], so a run is a pure function of
//! `(workload, threads, scale, seed)`.
//!
//! | Kernel | Stands in for | Behaviour exercised |
//! |--------|---------------|---------------------|
//! | [`WorkloadKind::BarnesLike`] | SPLASH-2 barnes | tree walks, per-node locks, irregular sharing |
//! | [`WorkloadKind::OceanLike`] | SPLASH-2 ocean | stencil, neighbour sharing, barrier per sweep |
//! | [`WorkloadKind::RadixLike`] | SPLASH-2 radix | all-to-all scatter bursts between barriers |
//! | [`WorkloadKind::LuLike`] | SPLASH-2 lu | pivot broadcast, producer-consumer sharing |
//! | [`WorkloadKind::ApacheLike`] | SPECweb/apache | task queue, shared cache, high lock rate |
//! | [`WorkloadKind::ZeusLike`] | zeus | read-heavier apache variant |
//! | [`WorkloadKind::OltpLike`] | TPC-C-class OLTP | short transactions, 2 locks, dense atomics/fences |
//! | [`WorkloadKind::DssLike`] | TPC-H-class DSS | large scans, low sharing, capacity misses |
//!
//! The extra [`contended`] kernel is the conflict-probability microbench
//! behind the violation-sensitivity sweep (F7).
//!
//! # Example
//!
//! ```rust
//! use tenways_workloads::{WorkloadKind, WorkloadParams};
//! use tenways_cpu::{ConsistencyModel, Machine, MachineSpec};
//! use tenways_sim::MachineConfig;
//!
//! let params = WorkloadParams { threads: 2, scale: 4, seed: 1 };
//! let programs = WorkloadKind::OceanLike.build(&params);
//! let spec = MachineSpec::baseline(ConsistencyModel::Tso)
//!     .with_machine(MachineConfig::builder().cores(2).build().unwrap());
//! let mut m = Machine::new(&spec, programs);
//! let summary = m.run(5_000_000);
//! assert!(summary.finished);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contended;
mod kernels;
pub mod layout;
pub mod lockbench;
pub mod sync;

pub use contended::{contended_programs, ContendedParams};
pub use kernels::{WorkloadKind, WorkloadParams};
pub use lockbench::{lock_bench_programs, LockBenchParams, LockKind};
