//! The conflict-probability microbenchmark behind the violation-rate sweep
//! (F7): [`contended_programs`].
//!
//! Each thread interleaves private work with, at probability `conflict_p`,
//! a store to one of a handful of *hot* shared blocks, and executes a full
//! fence every `fence_period` operations. Sweeping `conflict_p` moves the
//! workload from speculation-friendly (conflicts never happen, fences are
//! free) to speculation-hostile (hot-block ping-pong violates epochs
//! constantly), exposing the crossover where speculation stops paying.

use tenways_cpu::{FenceKind, MemTag, Op, ThreadProgram};
use tenways_sim::{Addr, DetRng};

use crate::kernels::{impl_kernel_logic, KernelProgram, KernelStep};
use crate::layout::AddressSpace;

/// Parameters of the contended kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContendedParams {
    /// Number of threads.
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: u64,
    /// Probability an op targets a hot shared block.
    pub conflict_p: f64,
    /// Number of hot shared blocks.
    pub hot_blocks: usize,
    /// A full fence is inserted every this many ops.
    pub fence_period: u64,
    /// Run seed.
    pub seed: u64,
}

impl Default for ContendedParams {
    fn default() -> Self {
        ContendedParams {
            threads: 8,
            ops_per_thread: 500,
            conflict_p: 0.05,
            hot_blocks: 4,
            fence_period: 8,
            seed: 0xc0,
        }
    }
}

#[derive(Debug, Clone)]
struct Contended {
    rng: DetRng,
    hot: Vec<Addr>,
    private: tenways_sim::Addr,
    private_words: u64,
    ops_left: u64,
    fence_period: u64,
    since_fence: u64,
    conflict_p: f64,
}

impl Contended {
    fn step(&mut self, _last: Option<u64>) -> KernelStep {
        if self.ops_left == 0 {
            return KernelStep::Done;
        }
        self.ops_left -= 1;
        self.since_fence += 1;
        if self.since_fence >= self.fence_period {
            self.since_fence = 0;
            return KernelStep::Op(Op::Fence(FenceKind::Full));
        }
        if self.rng.chance(self.conflict_p) {
            let hot = self.hot[self.rng.below(self.hot.len() as u64) as usize];
            return KernelStep::Op(Op::Store {
                addr: hot,
                value: self.ops_left,
                tag: MemTag::Data,
            });
        }
        let w = self.rng.below(self.private_words);
        if self.rng.chance(0.5) {
            KernelStep::Op(Op::load(Addr(self.private.0 + w * 8)))
        } else {
            KernelStep::Op(Op::store(Addr(self.private.0 + w * 8), w))
        }
    }
}

impl_kernel_logic!(Contended, "contended");

/// Builds one contended program per thread.
pub fn contended_programs(params: &ContendedParams) -> Vec<Box<dyn ThreadProgram>> {
    let mut space = AddressSpace::new();
    let hot: Vec<Addr> = (0..params.hot_blocks.max(1))
        .map(|_| space.alloc_line())
        .collect();
    let root = DetRng::seed(params.seed).split("contended");
    (0..params.threads)
        .map(|t| {
            let private = space.alloc_words(512);
            KernelProgram::boxed(Box::new(Contended {
                rng: root.split_index(t as u64),
                hot: hot.clone(),
                private: private.base(),
                private_words: private.words(),
                ops_left: params.ops_per_thread,
                fence_period: params.fence_period.max(2),
                since_fence: 0,
                conflict_p: params.conflict_p,
            }))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_thread_count() {
        let p = ContendedParams {
            threads: 3,
            ..ContendedParams::default()
        };
        assert_eq!(contended_programs(&p).len(), 3);
    }

    #[test]
    fn zero_conflict_program_never_touches_hot_blocks() {
        let p = ContendedParams {
            threads: 1,
            ops_per_thread: 200,
            conflict_p: 0.0,
            ..ContendedParams::default()
        };
        let mut prog = contended_programs(&p).pop().unwrap();
        let mut hot_touches = 0;
        while let Some(op) = prog.next_op(None) {
            if let Some(a) = op.addr() {
                // Hot lines are the first allocations (low addresses).
                if a.0 < 0x1_0000 + 64 * 4 {
                    hot_touches += 1;
                }
            }
        }
        assert_eq!(hot_touches, 0);
    }

    #[test]
    fn full_conflict_program_mostly_stores_hot() {
        let p = ContendedParams {
            threads: 1,
            ops_per_thread: 200,
            conflict_p: 1.0,
            fence_period: 1_000,
            ..ContendedParams::default()
        };
        let mut prog = contended_programs(&p).pop().unwrap();
        let mut hot = 0;
        let mut total = 0;
        while let Some(op) = prog.next_op(None) {
            total += 1;
            if let Some(a) = op.addr() {
                if a.0 < 0x1_0000 + 64 * 4 {
                    hot += 1;
                }
            }
        }
        assert!(hot > total / 2, "{hot}/{total}");
    }

    #[test]
    fn fences_appear_at_the_configured_period() {
        let p = ContendedParams {
            threads: 1,
            ops_per_thread: 50,
            conflict_p: 0.0,
            fence_period: 5,
            ..ContendedParams::default()
        };
        let mut prog = contended_programs(&p).pop().unwrap();
        let mut ops = Vec::new();
        while let Some(op) = prog.next_op(None) {
            ops.push(op);
        }
        let fences = ops.iter().filter(|o| matches!(o, Op::Fence(_))).count();
        assert_eq!(fences, 10, "50 ops / period 5");
    }

    #[test]
    fn deterministic_op_stream() {
        let p = ContendedParams::default();
        let stream = |seed| {
            let mut prog = contended_programs(&ContendedParams {
                seed,
                threads: 1,
                ..p
            })
            .pop()
            .unwrap();
            let mut v = Vec::new();
            while let Some(op) = prog.next_op(None) {
                v.push(format!("{op:?}"));
            }
            v
        };
        assert_eq!(stream(1), stream(1));
        assert_ne!(stream(1), stream(2));
    }
}
