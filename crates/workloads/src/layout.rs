//! Address-space layout for workloads: [`AddressSpace`].
//!
//! Workloads carve the simulated physical address space into named,
//! block-aligned regions (per-thread private heaps, shared tables, lock
//! arrays). The allocator is deliberately trivial — a bump pointer — but
//! aligning every region to cache blocks keeps accidental false sharing
//! out of the kernels unless a kernel asks for it.

use tenways_sim::Addr;

/// Word size workloads use for their values.
pub const WORD: u64 = 8;

/// A named, block-aligned region of the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: Addr,
    bytes: u64,
}

impl Region {
    /// First byte of the region.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of 8-byte words.
    pub fn words(&self) -> u64 {
        self.bytes / WORD
    }

    /// Address of word `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn word(&self, i: u64) -> Addr {
        assert!(
            i < self.words(),
            "word {i} out of range ({} words)",
            self.words()
        );
        self.base.offset(i * WORD)
    }
}

/// A bump allocator over the simulated physical address space.
///
/// # Example
///
/// ```rust
/// use tenways_workloads::layout::AddressSpace;
///
/// let mut space = AddressSpace::new();
/// let a = space.alloc_words(16);
/// let b = space.alloc_words(16);
/// assert_ne!(a.base(), b.base());
/// assert_eq!(a.word(0), a.base());
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    next: u64,
    block: u64,
}

impl AddressSpace {
    /// Creates an allocator starting above the zero page, with 64-byte
    /// block alignment.
    pub fn new() -> Self {
        AddressSpace {
            next: 0x1_0000,
            block: 64,
        }
    }

    /// Allocates a region of `words` 8-byte words, aligned up to a block
    /// boundary so distinct regions never share a cache block.
    pub fn alloc_words(&mut self, words: u64) -> Region {
        let bytes = (words * WORD).max(1).next_multiple_of(self.block);
        let base = Addr(self.next);
        self.next += bytes;
        Region { base, bytes }
    }

    /// Allocates one block-aligned word on its own cache block — the right
    /// shape for a lock or a flag (avoids false sharing by construction).
    pub fn alloc_line(&mut self) -> Addr {
        self.alloc_words(1).base()
    }

    /// Bytes allocated so far.
    pub fn used_bytes(&self) -> u64 {
        self.next - 0x1_0000
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        AddressSpace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let mut s = AddressSpace::new();
        let a = s.alloc_words(10);
        let b = s.alloc_words(10);
        assert!(a.base().0 + a.bytes() <= b.base().0);
    }

    #[test]
    fn regions_are_block_aligned() {
        let mut s = AddressSpace::new();
        for words in [1, 7, 8, 9, 100] {
            let r = s.alloc_words(words);
            assert_eq!(r.base().0 % 64, 0, "{words} words");
            assert_eq!(r.bytes() % 64, 0);
            assert!(r.words() >= words);
        }
    }

    #[test]
    fn word_indexing() {
        let mut s = AddressSpace::new();
        let r = s.alloc_words(8);
        assert_eq!(r.word(3), r.base().offset(24));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn word_bounds_checked() {
        let mut s = AddressSpace::new();
        let r = s.alloc_words(4);
        // 4 words requested, but the region rounds up to a block (8 words);
        // go past the rounded size to trip the check.
        r.word(r.words());
    }

    #[test]
    fn lines_are_distinct_blocks() {
        let mut s = AddressSpace::new();
        let a = s.alloc_line();
        let b = s.alloc_line();
        assert_ne!(a.0 / 64, b.0 / 64);
    }
}
