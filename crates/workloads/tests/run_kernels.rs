//! Every kernel must run to completion on the full simulator, under every
//! consistency model, with and without speculation — the workload-level
//! deadlock/livelock check.

use tenways_cpu::SpecConfig;
use tenways_cpu::{ConsistencyModel, Machine, MachineSpec};
use tenways_sim::MachineConfig;
use tenways_workloads::{contended_programs, ContendedParams, WorkloadKind, WorkloadParams};

fn machine(threads: usize) -> MachineConfig {
    MachineConfig::builder().cores(threads).build().unwrap()
}

fn run_kind(
    kind: WorkloadKind,
    model: ConsistencyModel,
    spec: SpecConfig,
    threads: usize,
    scale: u64,
) -> (Machine, tenways_cpu::RunSummary) {
    let params = WorkloadParams {
        threads,
        scale,
        seed: 42,
    };
    let ms = MachineSpec::baseline(model)
        .with_machine(machine(threads))
        .with_spec(spec);
    let mut m = Machine::new(&ms, kind.build(&params));
    let s = m.run(20_000_000);
    (m, s)
}

#[test]
fn all_kernels_finish_under_all_baselines() {
    for kind in WorkloadKind::all() {
        for model in ConsistencyModel::all() {
            let (_, s) = run_kind(kind, model, SpecConfig::disabled(), 4, 3);
            assert!(
                s.finished,
                "{} deadlocked under {model}: {s:?}",
                kind.name()
            );
            assert!(s.retired_ops > 0);
        }
    }
}

#[test]
fn all_kernels_finish_with_on_demand_speculation() {
    for kind in WorkloadKind::all() {
        for model in ConsistencyModel::all() {
            let (_, s) = run_kind(kind, model, SpecConfig::on_demand(), 4, 3);
            assert!(s.finished, "{} hung under {model}+spec: {s:?}", kind.name());
        }
    }
}

#[test]
fn all_kernels_finish_with_continuous_speculation() {
    for kind in WorkloadKind::all() {
        let (_, s) = run_kind(kind, ConsistencyModel::Tso, SpecConfig::continuous(), 4, 3);
        assert!(s.finished, "{} hung (continuous): {s:?}", kind.name());
    }
}

#[test]
fn kernels_are_deterministic() {
    for kind in [WorkloadKind::BarnesLike, WorkloadKind::OltpLike] {
        let a = run_kind(kind, ConsistencyModel::Tso, SpecConfig::on_demand(), 4, 3).1;
        let b = run_kind(kind, ConsistencyModel::Tso, SpecConfig::on_demand(), 4, 3).1;
        assert_eq!(a, b, "{}", kind.name());
    }
}

#[test]
fn server_kernels_process_every_task_exactly_once() {
    // The queue counter ends at >= threads*scale (each task id claimed once;
    // over-claims happen when threads grab ids past the limit and stop).
    let threads = 4;
    let scale = 5;
    let (m, s) = run_kind(
        WorkloadKind::ApacheLike,
        ConsistencyModel::Tso,
        SpecConfig::disabled(),
        threads,
        scale,
    );
    assert!(s.finished);
    // Queue is the first line allocated by the builder (0x1_0000).
    let claimed = m.mem().read(tenways_sim::Addr(0x1_0000));
    let limit = threads as u64 * scale;
    assert!(
        claimed >= limit,
        "queue counter {claimed} < task limit {limit}"
    );
    assert!(claimed <= limit + threads as u64, "over-claimed: {claimed}");
}

#[test]
fn oltp_commit_counter_equals_total_transactions() {
    let threads = 4;
    let scale = 6;
    for spec in [SpecConfig::disabled(), SpecConfig::on_demand()] {
        let params = WorkloadParams {
            threads,
            scale,
            seed: 9,
        };
        let ms = MachineSpec::baseline(ConsistencyModel::Rmo)
            .with_machine(machine(threads))
            .with_spec(spec);
        let mut m = Machine::new(&ms, WorkloadKind::OltpLike.build(&params));
        let s = m.run(20_000_000);
        assert!(s.finished);
        // Commit counter address: records (8K words -> 64KiB) + 16 lock
        // lines after the 0x1_0000 base.
        let commit_addr = tenways_sim::Addr(0x1_0000 + 8 * 1024 * 8 + 16 * 64);
        assert_eq!(
            m.mem().read(commit_addr),
            threads as u64 * scale,
            "lost transactions with {spec:?}"
        );
    }
}

#[test]
fn lock_and_barrier_waste_is_visible_in_accounting() {
    let (m, s) = run_kind(
        WorkloadKind::OceanLike,
        ConsistencyModel::Tso,
        SpecConfig::disabled(),
        4,
        4,
    );
    assert!(s.finished);
    let stats = m.merged_stats();
    let barrier_cycles: u64 = stats
        .iter()
        .filter(|(k, _)| k.contains(".barrier"))
        .map(|(_, v)| v)
        .sum();
    assert!(barrier_cycles > 0, "ocean must spend cycles at barriers");

    let (m, s) = run_kind(
        WorkloadKind::OltpLike,
        ConsistencyModel::Tso,
        SpecConfig::disabled(),
        4,
        6,
    );
    assert!(s.finished);
    let stats = m.merged_stats();
    let lock_cycles: u64 = stats
        .iter()
        .filter(|(k, _)| k.contains(".lock"))
        .map(|(_, v)| v)
        .sum();
    assert!(lock_cycles > 0, "oltp must spend cycles on locks");
}

#[test]
fn dss_is_capacity_dominated() {
    let (m, s) = run_kind(
        WorkloadKind::DssLike,
        ConsistencyModel::Tso,
        SpecConfig::disabled(),
        2,
        8,
    );
    assert!(s.finished);
    let stats = m.merged_stats();
    let capacity = stats.get("cyc.mem.data.capacity")
        + stats.get("cyc.mem.data.cold")
        + stats.get("cyc.mem.data.l2");
    let coherence = stats.get("cyc.mem.data.coherence");
    assert!(
        capacity > coherence,
        "dss should be capacity-bound: capacity {capacity} vs coherence {coherence}"
    );
}

#[test]
fn contended_sweep_changes_violation_rate() {
    let run_p = |p: f64| {
        let params = ContendedParams {
            threads: 4,
            ops_per_thread: 300,
            conflict_p: p,
            fence_period: 6,
            ..ContendedParams::default()
        };
        let ms = MachineSpec::baseline(ConsistencyModel::Tso)
            .with_machine(machine(4))
            .with_spec(SpecConfig::on_demand());
        let mut m = Machine::new(&ms, contended_programs(&params));
        let s = m.run(20_000_000);
        assert!(s.finished, "contended p={p} hung");
        m.merged_stats().get("spec.rollbacks")
    };
    let low = run_p(0.0);
    let high = run_p(0.6);
    assert!(
        high > low,
        "rollbacks must rise with conflict probability: {low} -> {high}"
    );
}
