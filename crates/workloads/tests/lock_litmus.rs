//! Litmus-style interleaving checks for the lock fragments: each lock's
//! *emitted op stream* must keep a counter increment mutually exclusive
//! under a weak reference memory model — and must demonstrably lose it
//! when its fences are stripped, proving the fences are load-bearing
//! rather than decorative.
//!
//! # The reference model
//!
//! The cycle-accurate simulator drains its store buffer in FIFO order, so
//! its RMO is store-order-preserving and every lock here happens to be
//! safe even unfenced. This harness instead checks the fragments as
//! *portable* algorithms against an abstract RMO that relaxes exactly the
//! axis real weak machines relax — store order:
//!
//! * Each thread executes its ops in program order; stores go into a
//!   per-thread buffer and become globally visible at a later,
//!   nondeterministically chosen drain step. Any buffered store may drain
//!   first, except that same-address stores stay ordered (per-location
//!   coherence) and no store passes a release marker.
//! * Loads read the youngest same-address buffered store, else memory.
//! * `Fence(Release)` drops a marker into the buffer: earlier stores must
//!   drain before anything after the marker. `Fence(Full)` blocks until
//!   the buffer is empty. `Fence(Acquire)` is a no-op here (loads already
//!   execute in program order).
//! * An RMW reads and writes memory atomically, but may not execute while
//!   the thread's own buffer holds a same-address store (the core's
//!   per-location coherence rule for atomics — an RMW issued over a
//!   buffered same-address store would be silently overwritten when the
//!   store drains) or any release marker (its store side must not pass a
//!   release).
//!
//! Exploration is exhaustive over this nondeterminism (memoized on full
//! machine state, so spin loops terminate), with two threads each running
//! one `acquire; counter += 1; release` round. With the emitted fences,
//! every reachable stuck state must be a clean terminal with counter
//! exactly 2; with fences stripped, some terminal execution must lose an
//! increment.

use std::collections::{BTreeMap, HashSet};

use tenways_cpu::op::{FenceKind, MemTag, Op};
use tenways_sim::Addr;
use tenways_workloads::sync::{FragStep, SyncFrag};

const LOCK_A: u64 = 0x100;
const LOCK_B: u64 = 0x140;
const COUNTER: u64 = 0x180;
const NODE: [u64; 2] = [0x200, 0x240];
const THREADS: usize = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lock {
    Ttas,
    Ticket,
    Mcs,
    Clh,
}

impl Lock {
    fn all() -> [Lock; 4] {
        [Lock::Ttas, Lock::Ticket, Lock::Mcs, Lock::Clh]
    }

    fn acquire(self, t: usize) -> SyncFrag {
        match self {
            Lock::Ttas => SyncFrag::acquire(Addr(LOCK_A)),
            Lock::Ticket => SyncFrag::ticket_acquire(Addr(LOCK_A), Addr(LOCK_B)),
            Lock::Mcs => SyncFrag::mcs_acquire(Addr(LOCK_A), Addr(NODE[t])),
            Lock::Clh => SyncFrag::clh_acquire(Addr(LOCK_A), Addr(NODE[t])),
        }
    }

    fn release(self, t: usize) -> SyncFrag {
        match self {
            Lock::Ttas => SyncFrag::release(Addr(LOCK_A)),
            Lock::Ticket => SyncFrag::ticket_release(Addr(LOCK_B)),
            Lock::Mcs => SyncFrag::mcs_release(Addr(LOCK_A), Addr(NODE[t])),
            Lock::Clh => SyncFrag::release(Addr(NODE[t])),
        }
    }
}

/// One store-buffer slot: a pending store or a release-ordering marker.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Sb {
    St(u64, u64),
    Rel,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    Acquire,
    CsLoad,
    CsStore,
    Release,
    Done,
}

/// A thread: its live fragment + critical-section driver, the staged
/// (next-to-execute) op, and its store buffer.
#[derive(Debug, Clone)]
struct Thread {
    lock: Lock,
    id: usize,
    frag: Option<SyncFrag>,
    phase: Phase,
    staged: Option<Op>,
    sb: Vec<Sb>,
}

impl Thread {
    fn new(lock: Lock, id: usize, strip: bool) -> Thread {
        let mut t = Thread {
            lock,
            id,
            frag: Some(lock.acquire(id)),
            phase: Phase::Acquire,
            staged: None,
            sb: Vec::new(),
        };
        t.stage(None, strip);
        t
    }

    /// Produces the next op in program order, feeding `last` to a
    /// fragment whose previous op was consume-marked.
    fn next_raw(&mut self, mut last: Option<u64>) -> Option<Op> {
        loop {
            match self.phase {
                Phase::Acquire | Phase::Release => {
                    let frag = self.frag.as_mut().expect("fragment live");
                    match frag.next(last.take()) {
                        FragStep::Emit(op) => return Some(op),
                        FragStep::Done => {
                            self.frag = None;
                            self.phase = match self.phase {
                                Phase::Acquire => Phase::CsLoad,
                                _ => Phase::Done,
                            };
                        }
                    }
                }
                Phase::CsLoad => {
                    self.phase = Phase::CsStore;
                    return Some(Op::Load {
                        addr: Addr(COUNTER),
                        tag: MemTag::Data,
                        consume: true,
                    });
                }
                Phase::CsStore => {
                    let seen = last.take().expect("counter value consumed");
                    self.phase = Phase::Release;
                    self.frag = Some(self.lock.release(self.id));
                    return Some(Op::Store {
                        addr: Addr(COUNTER),
                        value: seen + 1,
                        tag: MemTag::Data,
                    });
                }
                Phase::Done => return None,
            }
        }
    }

    /// Stages the next op; with `strip`, fences are dropped from the
    /// stream (they never consume, so the fragment protocol is intact).
    fn stage(&mut self, mut last: Option<u64>, strip: bool) {
        loop {
            match self.next_raw(last.take()) {
                Some(Op::Fence(_)) if strip => continue,
                op => {
                    self.staged = op;
                    return;
                }
            }
        }
    }

    /// Store-buffer indices eligible to drain: stores with no older
    /// same-address store and no release marker before them.
    fn drainable(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (i, item) in self.sb.iter().enumerate() {
            match item {
                Sb::Rel => break,
                Sb::St(a, _) => {
                    let shadowed = self.sb[..i]
                        .iter()
                        .any(|e| matches!(e, Sb::St(b, _) if b == a));
                    if !shadowed {
                        out.push(i);
                    }
                }
            }
        }
        out
    }

    /// Pops leading release markers (all their predecessors have drained).
    fn normalize(&mut self) {
        while matches!(self.sb.first(), Some(Sb::Rel)) {
            self.sb.remove(0);
        }
    }
}

#[derive(Debug, Clone)]
struct State {
    mem: BTreeMap<u64, u64>,
    threads: Vec<Thread>,
}

impl State {
    fn initial(lock: Lock, strip: bool) -> State {
        State {
            mem: BTreeMap::new(),
            threads: (0..THREADS).map(|t| Thread::new(lock, t, strip)).collect(),
        }
    }

    fn read(&self, t: usize, addr: u64) -> u64 {
        self.threads[t]
            .sb
            .iter()
            .rev()
            .find_map(|e| match e {
                Sb::St(a, v) if *a == addr => Some(*v),
                _ => None,
            })
            .unwrap_or_else(|| self.mem.get(&addr).copied().unwrap_or(0))
    }

    /// Canonical key for the visited set (all fields derive Debug
    /// deterministically; `mem` is ordered).
    fn key(&self) -> String {
        format!("{:?}|{:?}", self.mem, self.threads)
    }

    fn is_terminal(&self) -> bool {
        self.threads
            .iter()
            .all(|t| matches!(t.phase, Phase::Done) && t.staged.is_none() && t.sb.is_empty())
    }

    /// All successor states under the model's nondeterminism.
    fn successors(&self, strip: bool) -> Vec<State> {
        let mut out = Vec::new();
        for i in 0..self.threads.len() {
            // Execute the staged op, if its execution rule allows.
            if let Some(op) = self.threads[i].staged {
                match op {
                    Op::Load { addr, .. } => {
                        let v = self.read(i, addr.0);
                        let mut s = self.clone();
                        s.threads[i].stage(op.consumes().then_some(v), strip);
                        out.push(s);
                    }
                    Op::Store { addr, value, .. } => {
                        let mut s = self.clone();
                        s.threads[i].sb.push(Sb::St(addr.0, value));
                        s.threads[i].stage(None, strip);
                        out.push(s);
                    }
                    Op::Fence(FenceKind::Full) => {
                        if self.threads[i].sb.is_empty() {
                            let mut s = self.clone();
                            s.threads[i].stage(None, strip);
                            out.push(s);
                        }
                    }
                    Op::Fence(FenceKind::Release) => {
                        let mut s = self.clone();
                        s.threads[i].sb.push(Sb::Rel);
                        // A marker with nothing buffered before it orders
                        // nothing: pop it immediately so it cannot wedge
                        // later stores.
                        s.threads[i].normalize();
                        s.threads[i].stage(None, strip);
                        out.push(s);
                    }
                    Op::Fence(FenceKind::Acquire) => {
                        let mut s = self.clone();
                        s.threads[i].stage(None, strip);
                        out.push(s);
                    }
                    Op::Rmw { addr, rmw, .. } => {
                        let blocked = self.threads[i].sb.iter().any(|e| {
                            matches!(e, Sb::Rel) || matches!(e, Sb::St(a, _) if *a == addr.0)
                        });
                        if !blocked {
                            let mut s = self.clone();
                            let old = s.mem.get(&addr.0).copied().unwrap_or(0);
                            s.mem.insert(addr.0, rmw.apply(old));
                            s.threads[i].stage(op.consumes().then_some(old), strip);
                            out.push(s);
                        }
                    }
                    Op::Compute(_) => {
                        let mut s = self.clone();
                        s.threads[i].stage(None, strip);
                        out.push(s);
                    }
                }
            }
            // Drain any eligible buffered store.
            for j in self.threads[i].drainable() {
                let mut s = self.clone();
                let Sb::St(a, v) = s.threads[i].sb.remove(j) else {
                    unreachable!("drainable returns stores");
                };
                s.mem.insert(a, v);
                s.threads[i].normalize();
                out.push(s);
            }
        }
        out
    }
}

/// Exhaustive exploration result over one lock × strip setting.
struct Outcome {
    /// Final counter values over all terminal executions.
    terminals: HashSet<u64>,
    /// Reachable states with no successors that are not clean terminals
    /// (deadlocks: a thread wedged mid-protocol).
    stuck: Vec<String>,
    states: usize,
}

fn explore(lock: Lock, strip: bool) -> Outcome {
    let mut visited: HashSet<String> = HashSet::new();
    let mut stack = vec![State::initial(lock, strip)];
    let mut out = Outcome {
        terminals: HashSet::new(),
        stuck: Vec::new(),
        states: 0,
    };
    while let Some(s) = stack.pop() {
        if !visited.insert(s.key()) {
            continue;
        }
        out.states += 1;
        assert!(
            out.states < 2_000_000,
            "{lock:?} strip={strip}: state space blew up"
        );
        let succs = s.successors(strip);
        if succs.is_empty() {
            if s.is_terminal() {
                out.terminals
                    .insert(s.mem.get(&COUNTER).copied().unwrap_or(0));
            } else {
                out.stuck.push(s.key());
            }
            continue;
        }
        stack.extend(succs);
    }
    out
}

/// With the fences the fragments actually emit, every interleaving the
/// relaxed model can produce keeps the increments mutually exclusive:
/// all executions terminate cleanly with counter exactly `THREADS`.
#[test]
fn every_lock_is_mutually_exclusive_with_emitted_fences() {
    for lock in Lock::all() {
        let out = explore(lock, false);
        assert!(
            out.stuck.is_empty(),
            "{lock:?}: {} deadlocked state(s), first: {}",
            out.stuck.len(),
            out.stuck[0]
        );
        assert_eq!(
            out.terminals,
            HashSet::from([THREADS as u64]),
            "{lock:?}: some interleaving lost an increment ({} states)",
            out.states
        );
    }
}

/// With fences stripped from the same streams, store-order relaxation
/// breaks every lock: some terminal interleaving loses an increment.
/// This is the proof that the fences above are load-bearing.
#[test]
fn every_lock_loses_mutual_exclusion_with_fences_stripped() {
    for lock in Lock::all() {
        let out = explore(lock, true);
        assert!(
            out.terminals.iter().any(|&c| c < THREADS as u64),
            "{lock:?}: no fence-free interleaving lost an increment \
             (terminals {:?} over {} states) — the fences are decorative",
            out.terminals,
            out.states
        );
    }
}
