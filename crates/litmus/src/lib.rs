//! Litmus harness: weak-memory conformance testing for the tenways
//! simulator.
//!
//! The simulator's value rests on its consistency models (SC/TSO/RMO) and
//! InvisiFence-style fence speculation being *correct*. This crate checks
//! that directly, the way real memory-model work does (Alglave et al.'s
//! litmus methodology): run small multi-threaded shapes, collect the
//! final states they can produce, and compare against what the model's
//! axioms permit.
//!
//! The pipeline, one module per stage:
//!
//! * [`parse`] — a small `.litmus`-style text format (per-thread op
//!   lists over named locations, `forbidden:`/`allowed:` final-state
//!   predicates) and its parser;
//! * [`compile`] — turns a parsed test into reactive [`ThreadProgram`]s
//!   whose consumed load values land in shared register cells;
//! * [`explore`] — runs a test across a deterministic grid of timing
//!   perturbations (per-thread skews, DRAM/NoC/directory latencies,
//!   store-buffer depth, width, topology) for every
//!   `(model, speculation mode)` cell, fanning out on the fail-soft
//!   [`SweepRunner`](tenways_bench::SweepRunner);
//! * [`verdict`] — flags any observed `forbidden` state and any
//!   difference between the speculation-on and speculation-off
//!   observable-state sets, each with a replayable
//!   `{test, model, spec, seed, point}` repro;
//! * [`corpus`] — the curated in-tree suite of 12 classic tests
//!   (SB, MP, LB, IRIW, R, S, 2+2W, CoRR and fence/RMW variants).
//!
//! [`ThreadProgram`]: tenways_cpu::ThreadProgram

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod corpus;
pub mod explore;
pub mod parse;
pub mod verdict;

pub use compile::{compile, loc_addr, CompiledTest};
pub use corpus::{corpus, CORPUS};
pub use explore::{
    build_grid, explore, run_point, Exploration, ExploreCell, ExploreOptions, FinalState,
    GridPoint, SPEC_MODES,
};
pub use parse::{
    LitmusOp, LitmusTest, LitmusThread, Observable, ParseError, ParseErrorKind, PredicateKind,
    PredicateRule, RegisterDef,
};
pub use verdict::{judge, AllowedOutcome, ForbiddenViolation, Repro, SpecDivergence, TestVerdict};
