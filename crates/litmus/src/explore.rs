//! Interleaving exploration: runs one litmus test across a deterministic
//! grid of timing perturbations and collects the observed final states.
//!
//! A single run of a litmus test observes one interleaving; the
//! interesting outcomes (store-buffer reordering, stale forwarding) only
//! appear under particular relative timings. The grid perturbs everything
//! that changes relative timing without changing program semantics:
//! per-thread start skews, DRAM/NoC/directory latencies, store-buffer
//! capacity, fetch width and topology. All draws come from a [`DetRng`]
//! keyed by `(seed, test name, point index)`, so a grid point is
//! replayable from `{test, seed, index}` alone.
//!
//! Every `(model, speculation mode)` cell runs the *same* grid, which is
//! what makes the speculation-transparency comparison in
//! [`crate::verdict`] meaningful: any difference between the
//! speculation-on and speculation-off state sets is attributable to
//! speculation, not to sampling different timings.

use std::collections::BTreeMap;
use std::sync::Arc;

use tenways_bench::{SweepJob, SweepOptions, SweepRunner};
use tenways_core::{SpecConfig, SpecMode};
use tenways_cpu::{ConsistencyModel, Machine, MachineSpec, SchedMode};
use tenways_sim::json::{Json, ToJson};
use tenways_sim::{DetRng, MachineConfig};

use crate::compile::{compile, loc_addr};
use crate::parse::LitmusTest;

/// A final state: every register's value (in [`LitmusTest::registers`]
/// order) followed by every location's final memory value.
pub type FinalState = Vec<u64>;

/// One replayable point of the exploration grid.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// Index of the point within the grid.
    pub index: usize,
    /// The base seed the grid was derived from.
    pub seed: u64,
    /// Per-thread start skews, in thread order.
    pub skews: Vec<u64>,
    /// The perturbed hardware description.
    pub machine: MachineConfig,
}

impl ToJson for GridPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("index", Json::from(self.index)),
            ("seed", Json::from(self.seed)),
            (
                "skews",
                Json::arr(self.skews.iter().map(|&s| Json::from(s))),
            ),
            ("machine", self.machine.to_json()),
        ])
    }
}

/// Exploration tuning knobs.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Grid points per `(model, spec mode)` cell.
    pub points: usize,
    /// Base seed for the grid.
    pub seed: u64,
    /// *Across-run* worker threads for the sweep: how many grid points
    /// run concurrently (`None` = available parallelism). Distinct from
    /// `sched`, which may shard each individual run.
    pub workers: Option<usize>,
    /// Per-run cycle limit; a run that does not finish is a failure.
    pub cycle_limit: u64,
    /// Run-loop scheduler for each individual run. Litmus verdicts are
    /// scheduler-independent (every [`SchedMode`] is byte-identical);
    /// non-default modes exist for conformance gating of the schedulers
    /// themselves.
    pub sched: SchedMode,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            points: 32,
            seed: 7,
            workers: None,
            cycle_limit: 1_000_000,
            sched: SchedMode::default(),
        }
    }
}

/// The observations of one `(model, speculation mode)` cell.
#[derive(Debug)]
pub struct ExploreCell {
    /// The consistency model this cell ran under.
    pub model: ConsistencyModel,
    /// The speculation mode this cell ran under.
    pub spec: SpecMode,
    /// Every distinct observed final state, mapped to the first grid-point
    /// index that produced it (the repro handle).
    pub states: BTreeMap<FinalState, usize>,
    /// Failed runs as `(grid-point index, error)`.
    pub failures: Vec<(usize, String)>,
}

/// The full result of exploring one test.
#[derive(Debug)]
pub struct Exploration {
    /// The grid, shared by every cell.
    pub grid: Vec<GridPoint>,
    /// One cell per `(model, spec mode)`, models outer, spec modes inner
    /// in [`SPEC_MODES`] order.
    pub cells: Vec<ExploreCell>,
    /// Total simulator runs dispatched.
    pub runs: usize,
}

impl Exploration {
    /// The cell for `(model, spec)`, if that model was explored.
    pub fn cell(&self, model: ConsistencyModel, spec: SpecMode) -> Option<&ExploreCell> {
        self.cells
            .iter()
            .find(|c| c.model == model && c.spec == spec)
    }
}

/// The speculation modes every test is explored under. `Disabled` is the
/// transparency reference; the other two must not change the observable
/// state set.
pub const SPEC_MODES: [SpecMode; 3] =
    [SpecMode::Disabled, SpecMode::OnDemand, SpecMode::Continuous];

/// Staggered-probe start delay: comfortably more than a store drain plus
/// a fenced load round trip at the default latencies (DRAM 120, NoC 6,
/// directory 12), so the undelayed threads finish before the delayed one
/// starts.
pub const PROBE_SKEW: u64 = 600;

fn spec_config(mode: SpecMode) -> SpecConfig {
    match mode {
        SpecMode::Disabled => SpecConfig::disabled(),
        SpecMode::OnDemand => SpecConfig::on_demand(),
        SpecMode::Continuous => SpecConfig::continuous(),
    }
}

/// Builds the deterministic grid for `test`.
///
/// Point 0 is the unperturbed default machine with zero skews. Points
/// `1..=threads` are *staggered-start probes*: thread `i-1` alone starts
/// [`PROBE_SKEW`] cycles late — long enough for the other threads to run
/// to completion first at default latencies — so every "thread `i` loses
/// the race" outcome is sampled deterministically. Without these, the
/// speculation-on and speculation-off sides (which run the same point at
/// different effective timings) can each sample a different subset of
/// the legal states and trip the transparency oracle spuriously.
/// Remaining points draw from `DetRng(seed → test name → index)`.
pub fn build_grid(test: &LitmusTest, seed: u64, points: usize) -> Vec<GridPoint> {
    let cores = test.threads.len();
    let root = DetRng::seed(seed).split(&test.name);
    (0..points.max(1))
        .map(|index| {
            let mut skews = vec![0u64; cores];
            let mut builder = MachineConfig::builder().cores(cores);
            if (1..=cores).contains(&index) {
                skews[index - 1] = PROBE_SKEW;
            } else if index > 0 {
                let mut rng = root.split_index(index as u64);
                for skew in skews.iter_mut() {
                    *skew = rng.below(161);
                }
                let dram_latency = *rng.choose(&[30u64, 120, 400]).unwrap();
                let noc_latency = *rng.choose(&[1u64, 6, 24]).unwrap();
                let dir_latency = *rng.choose(&[4u64, 12]).unwrap();
                let sb_entries = *rng.choose(&[1usize, 2, 4, 16]).unwrap();
                let width = *rng.choose(&[1usize, 2]).unwrap();
                builder = builder
                    .dram(4, dram_latency, 24)
                    .noc(noc_latency, 2, 2)
                    .directory(4, dir_latency)
                    .sb_entries(sb_entries)
                    .width(width)
                    .mesh(rng.chance(0.25));
            }
            GridPoint {
                index,
                seed,
                skews,
                machine: builder
                    .build()
                    .expect("grid draws stay within valid config space"),
            }
        })
        .collect()
}

/// Runs `test` once at `point` under `(model, spec)` and returns the
/// final state.
///
/// # Errors
///
/// Returns a message if the run hits the cycle limit without finishing.
pub fn run_point(
    test: &LitmusTest,
    point: &GridPoint,
    model: ConsistencyModel,
    spec: SpecMode,
    cycle_limit: u64,
    sched: SchedMode,
) -> Result<FinalState, String> {
    let compiled = compile(test, &point.skews);
    let ms = MachineSpec::baseline(model)
        .with_machine(point.machine.clone())
        .with_spec(spec_config(spec));
    let mut machine = Machine::new(&ms, compiled.programs);
    machine.set_sched(sched);
    for &(loc, value) in &test.init {
        machine.poke(loc_addr(loc), value);
    }
    let summary = machine.run(cycle_limit);
    if !summary.finished {
        return Err(format!(
            "hung: {} not finished after {} cycles (point {}, {model}, spec {})",
            test.name,
            summary.cycles,
            point.index,
            spec.label(),
        ));
    }
    let mut state: FinalState = compiled
        .registers
        .iter()
        .map(|c| c.load(std::sync::atomic::Ordering::Relaxed))
        .collect();
    for loc in 0..test.locations.len() {
        state.push(machine.mem().read(loc_addr(loc)));
    }
    Ok(state)
}

/// Explores `test` across `models` × [`SPEC_MODES`] × the grid, fanning
/// runs out on a [`SweepRunner`] (fail-soft: a hung or panicked run is
/// recorded as that cell's failure, siblings keep going).
pub fn explore(
    test: &LitmusTest,
    models: &[ConsistencyModel],
    opts: &ExploreOptions,
) -> Exploration {
    let grid = build_grid(test, opts.seed, opts.points);
    let shared = Arc::new(test.clone());
    let mut jobs = Vec::new();
    let mut coords = Vec::new();
    let mut cells = Vec::new();
    for &model in models {
        for spec in SPEC_MODES {
            let cell = cells.len();
            cells.push(ExploreCell {
                model,
                spec,
                states: BTreeMap::new(),
                failures: Vec::new(),
            });
            for point in &grid {
                let test = Arc::clone(&shared);
                let point = point.clone();
                let limit = opts.cycle_limit;
                let sched = opts.sched;
                let label = format!(
                    "{}/{}/{}/p{}",
                    test.name,
                    model.label(),
                    spec.label(),
                    point.index
                );
                coords.push((cell, point.index));
                jobs.push(SweepJob::new(label, move || {
                    run_point(&test, &point, model, spec, limit, sched)
                }));
            }
        }
    }
    let runs = jobs.len();
    let runner = SweepRunner::with_options(SweepOptions {
        workers: opts.workers,
        ..SweepOptions::default()
    });
    let batch = runner.run(jobs);
    for ((cell, point), outcome) in coords.into_iter().zip(batch.outcomes) {
        match outcome.result {
            Ok(state) => {
                cells[cell].states.entry(state).or_insert(point);
            }
            Err(err) => cells[cell].failures.push((point, err.to_string())),
        }
    }
    Exploration { grid, cells, runs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb() -> LitmusTest {
        LitmusTest::parse(
            "test SB\nthread P0\nstore x 1\nr0 = load y\nthread P1\nstore y 1\nr1 = load x\nforbidden sc : r0=0 & r1=0\nallowed tso rmo : r0=0 & r1=0\n",
        )
        .unwrap()
    }

    #[test]
    fn grid_is_deterministic_and_point_zero_is_unperturbed() {
        let t = sb();
        let a = build_grid(&t, 7, 8);
        let b = build_grid(&t, 7, 8);
        assert_eq!(a.len(), 8);
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.skews, pb.skews);
            assert_eq!(pa.machine, pb.machine);
        }
        assert_eq!(a[0].skews, vec![0, 0]);
        assert_eq!(
            a[0].machine,
            MachineConfig::builder().cores(2).build().unwrap()
        );
        // Points 1..=threads are the staggered-start probes.
        assert_eq!(a[1].skews, vec![PROBE_SKEW, 0]);
        assert_eq!(a[2].skews, vec![0, PROBE_SKEW]);
        assert_eq!(a[1].machine, a[0].machine);
        assert!(
            a.iter().skip(3).any(|p| p.skews.iter().any(|&s| s > 0)),
            "perturbed points should draw nonzero skews"
        );
    }

    #[test]
    fn different_seeds_draw_different_grids() {
        let t = sb();
        let a = build_grid(&t, 7, 8);
        let b = build_grid(&t, 8, 8);
        assert!(a
            .iter()
            .zip(&b)
            .skip(1)
            .any(|(pa, pb)| pa.skews != pb.skews || pa.machine != pb.machine),);
    }

    #[test]
    fn run_point_replays_to_the_same_state() {
        let t = sb();
        let grid = build_grid(&t, 7, 3);
        for point in &grid {
            let a = run_point(
                &t,
                point,
                ConsistencyModel::Sc,
                SpecMode::Disabled,
                1_000_000,
                SchedMode::default(),
            )
            .unwrap();
            let b = run_point(
                &t,
                point,
                ConsistencyModel::Sc,
                SpecMode::Disabled,
                1_000_000,
                SchedMode::ParallelEpoch { workers: 2 },
            )
            .unwrap();
            assert_eq!(a, b, "point {} must replay deterministically", point.index);
            // Layout: r0, r1, then final x, y — both stores always land.
            assert_eq!(a.len(), 4);
            assert_eq!(&a[2..], &[1, 1]);
        }
    }

    #[test]
    fn explore_covers_every_cell() {
        let t = sb();
        let opts = ExploreOptions {
            points: 4,
            ..ExploreOptions::default()
        };
        let ex = explore(&t, &ConsistencyModel::all(), &opts);
        assert_eq!(ex.cells.len(), 9);
        assert_eq!(ex.runs, 36);
        for cell in &ex.cells {
            assert!(cell.failures.is_empty(), "{:?}", cell.failures);
            assert!(!cell.states.is_empty());
        }
        assert!(ex.cell(ConsistencyModel::Sc, SpecMode::OnDemand).is_some());
    }
}
