//! Compiles a parsed [`LitmusTest`] into runnable [`ThreadProgram`]s.
//!
//! Each named location gets its own cache line (so tests race on
//! coherence, not on false sharing), each register becomes a shared
//! `Arc<AtomicU64>` written when the consumed value flows back through
//! [`ThreadProgram::next_op`], and every thread can be given a `Compute`
//! prefix to skew its start time.
//!
//! Register cells survive speculation rollback: the compiled program's
//! snapshot shares the cells, and rollback re-executes the consuming
//! operations, overwriting any value a squashed path wrote — the
//! committed path's write always lands last.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tenways_cpu::{MemTag, Op, ThreadProgram};
use tenways_sim::Addr;

use crate::parse::{LitmusOp, LitmusTest};

/// Base byte address of litmus location 0.
const LOC_BASE: u64 = 0x4_0000;
/// Byte stride between litmus locations (one 64-byte cache line).
const LOC_STRIDE: u64 = 0x40;

/// The byte address backing location index `idx`.
pub fn loc_addr(idx: usize) -> Addr {
    Addr(LOC_BASE + idx as u64 * LOC_STRIDE)
}

/// Sentinel register cells start from; a finished run overwrites every
/// cell, so seeing it in a final state means the run did not finish.
pub const UNWRITTEN: u64 = u64::MAX;

/// A litmus test compiled against a particular per-thread skew vector.
pub struct CompiledTest {
    /// One program per thread, in [`LitmusTest::threads`] order.
    pub programs: Vec<Box<dyn ThreadProgram>>,
    /// One output cell per register, in [`LitmusTest::registers`] order.
    /// Read after the machine finishes.
    pub registers: Vec<Arc<AtomicU64>>,
}

/// Compiles `test` into per-thread programs.
///
/// `skews[i]` prepends `Compute(skews[i])` to thread `i` (0 means no
/// prefix); missing entries default to 0. All register-producing loads
/// and RMWs are marked `consume`, which is the only channel through
/// which architectural values reach the program.
pub fn compile(test: &LitmusTest, skews: &[u64]) -> CompiledTest {
    let registers: Vec<Arc<AtomicU64>> = test
        .registers
        .iter()
        .map(|_| Arc::new(AtomicU64::new(UNWRITTEN)))
        .collect();
    let programs = test
        .threads
        .iter()
        .enumerate()
        .map(|(tid, thread)| {
            let mut ops: Vec<(Op, Option<usize>)> = Vec::with_capacity(thread.ops.len() + 1);
            let skew = skews.get(tid).copied().unwrap_or(0);
            if skew > 0 {
                ops.push((Op::Compute(skew), None));
            }
            for &lop in &thread.ops {
                ops.push(match lop {
                    LitmusOp::Store { loc, value } => (Op::store(loc_addr(loc), value), None),
                    LitmusOp::Load { reg, loc } => (
                        Op::Load {
                            addr: loc_addr(loc),
                            tag: MemTag::Data,
                            consume: true,
                        },
                        Some(reg),
                    ),
                    LitmusOp::Fence(kind) => (Op::Fence(kind), None),
                    LitmusOp::Rmw { reg, loc, rmw } => (
                        Op::Rmw {
                            addr: loc_addr(loc),
                            rmw,
                            tag: MemTag::Data,
                            consume: true,
                        },
                        Some(reg),
                    ),
                    LitmusOp::Compute(cycles) => (Op::Compute(cycles), None),
                });
            }
            Box::new(LitmusProgram {
                name: format!("{}/{}", test.name, thread.name),
                ops: ops.into(),
                pos: 0,
                pending: None,
                outs: registers.clone(),
            }) as Box<dyn ThreadProgram>
        })
        .collect();
    CompiledTest {
        programs,
        registers,
    }
}

/// A compiled litmus thread: plays its op list in order, routing each
/// consumed value into the register cell recorded alongside the op.
#[derive(Debug, Clone)]
struct LitmusProgram {
    name: String,
    /// `(op, register slot)` pairs; the slot receives the consumed value.
    ops: Arc<[(Op, Option<usize>)]>,
    pos: usize,
    /// Register slot of the in-flight consume op, if any.
    pending: Option<usize>,
    /// Shared with [`CompiledTest::registers`] (global register order).
    outs: Vec<Arc<AtomicU64>>,
}

impl ThreadProgram for LitmusProgram {
    fn next_op(&mut self, last_value: Option<u64>) -> Option<Op> {
        if let Some(v) = last_value {
            if let Some(slot) = self.pending.take() {
                self.outs[slot].store(v, Ordering::Relaxed);
            }
        }
        let &(op, slot) = self.ops.get(self.pos)?;
        self.pos += 1;
        self.pending = slot;
        Some(op)
    }

    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenways_cpu::FenceKind;

    fn sb() -> LitmusTest {
        LitmusTest::parse(
            "test SB\nthread P0\nstore x 1\nr0 = load y\nthread P1\nstore y 1\nr1 = load x\nforbidden sc : r0=0 & r1=0\n",
        )
        .unwrap()
    }

    #[test]
    fn locations_land_on_distinct_lines() {
        assert_eq!(loc_addr(0).0 & 0x3f, 0);
        assert_ne!(loc_addr(0).0 >> 6, loc_addr(1).0 >> 6);
    }

    #[test]
    fn compiled_ops_replay_in_order_with_skew_prefix() {
        let test = sb();
        let compiled = compile(&test, &[5, 0]);
        let mut p0 = compiled.programs.into_iter().next().unwrap();
        assert_eq!(p0.next_op(None), Some(Op::Compute(5)));
        assert_eq!(p0.next_op(None), Some(Op::store(loc_addr(0), 1)));
        assert_eq!(
            p0.next_op(None),
            Some(Op::Load {
                addr: loc_addr(1),
                tag: MemTag::Data,
                consume: true,
            })
        );
        // Final call delivers the consumed value and ends the thread.
        assert_eq!(p0.next_op(Some(9)), None);
        assert_eq!(compiled.registers[0].load(Ordering::Relaxed), 9);
        assert_eq!(
            compiled.registers[1].load(Ordering::Relaxed),
            UNWRITTEN,
            "other thread's register untouched"
        );
    }

    #[test]
    fn zero_skew_emits_no_prefix() {
        let test = sb();
        let compiled = compile(&test, &[]);
        let mut p0 = compiled.programs.into_iter().next().unwrap();
        assert_eq!(p0.next_op(None), Some(Op::store(loc_addr(0), 1)));
    }

    #[test]
    fn snapshot_rollback_reexecutes_and_overwrites() {
        let test = sb();
        let compiled = compile(&test, &[]);
        let mut p = compiled.programs.into_iter().next().unwrap();
        p.next_op(None); // store
        let snap = p.snapshot();
        p.next_op(None); // load (speculative path)
        assert_eq!(p.next_op(Some(7)), None);
        assert_eq!(compiled.registers[0].load(Ordering::Relaxed), 7);
        // Roll back to the snapshot and re-execute: the committed value
        // overwrites the squashed one.
        let mut p = snap;
        p.next_op(None); // load again
        assert_eq!(p.next_op(Some(1)), None);
        assert_eq!(compiled.registers[0].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn rmw_and_fence_compile() {
        let test = LitmusTest::parse(
            "test T\nthread P0\na = faa x 1\nfence acquire\nforbidden sc : a=9\n",
        )
        .unwrap();
        let compiled = compile(&test, &[]);
        let mut p = compiled.programs.into_iter().next().unwrap();
        assert!(matches!(
            p.next_op(None),
            Some(Op::Rmw { consume: true, .. })
        ));
        assert_eq!(p.next_op(Some(4)), Some(Op::Fence(FenceKind::Acquire)));
        assert_eq!(compiled.registers[0].load(Ordering::Relaxed), 4);
    }
}
