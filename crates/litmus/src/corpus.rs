//! The curated in-tree litmus corpus: the classic weak-memory shapes,
//! with `forbidden`/`allowed` predicates derived from the axiomatic
//! models (program order `po`, coherence `co`, reads-from `rf`,
//! from-reads `fr`; an execution is allowed iff the union of the edges
//! the model enforces is acyclic).
//!
//! Conventions: locations start at 0 unless `init`-ed; registers record
//! loaded (or RMW'd-over) values; a predicate on a location name
//! constrains final memory. `allowed` rules are report-only — a grid that
//! never samples the relaxation is not unsound — while any `forbidden`
//! observation is a conformance failure.
//!
//! One simulator-specific note: consumed loads serialize each thread's
//! own loads (the value must return before the next op is fetched), so
//! load–load reordering shapes (LB, IRIW without fences) cannot exhibit
//! their relaxed outcome here under any model. Their `allowed` rules are
//! retained for the report; their `forbidden` rules are still checked
//! for real.

use crate::parse::LitmusTest;

/// Store buffering (Dekker). The hallmark TSO relaxation: each thread's
/// load may bypass its own buffered store, so both loads can read 0.
/// Cycle under SC: `a1 →po a2 →fr b1 →po b2 →fr a1` — SC enforces both
/// W→R `po` edges; TSO/RMO do not.
pub const SB: &str = "\
test SB
thread P0
store x 1
r0 = load y
thread P1
store y 1
r1 = load x
forbidden sc : r0=0 & r1=0
allowed tso rmo : r0=0 & r1=0
";

/// SB with full fences: the fence orders W→R under every model, so the
/// relaxed outcome is forbidden everywhere — the shape fence-speculation
/// must preserve while speculating past the fence.
pub const SB_FENCES: &str = "\
test SB+fences
thread P0
store x 1
fence full
r0 = load y
thread P1
store y 1
fence full
r1 = load x
forbidden sc tso rmo : r0=0 & r1=0
";

/// SB with the stores replaced by atomic swaps. Under TSO, atomics drain
/// the store buffer (they are fencing), restoring SC for this shape; RMO
/// atomics do not fence, so the relaxation survives.
pub const SB_RMWS: &str = "\
test SB+rmws
thread P0
r0 = swap x 1
r1 = load y
thread P1
r2 = swap y 1
r3 = load x
forbidden sc tso : r1=0 & r3=0
allowed rmo : r1=0 & r3=0
";

/// Message passing. Forbidden when W→W and R→R hold (SC, TSO: the FIFO
/// store buffer keeps `x` before `y`); RMO may reorder either side.
pub const MP: &str = "\
test MP
thread P0
store x 1
store y 1
thread P1
r0 = load y
r1 = load x
forbidden sc tso : r0=1 & r1=0
allowed rmo : r0=1 & r1=0
";

/// MP with release/acquire fences — the portable publication idiom; safe
/// under every model.
pub const MP_FENCES: &str = "\
test MP+fences
thread P0
store x 1
fence release
store y 1
thread P1
r0 = load y
fence acquire
r1 = load x
forbidden sc tso rmo : r0=1 & r1=0
";

/// Load buffering: both loads read the other thread's po-later store.
/// Cycle: `rf` + two R→W `po` edges — enforced by SC and TSO (neither
/// reorders R→W), relaxable under RMO.
pub const LB: &str = "\
test LB
thread P0
r0 = load x
store y 1
thread P1
r1 = load y
store x 1
forbidden sc tso : r0=1 & r1=1
allowed rmo : r0=1 & r1=1
";

/// Independent reads of independent writes: the two readers disagree on
/// the order of the two writes. Forbidden under multi-copy-atomic models
/// (SC, TSO); RMO's read side may reorder.
pub const IRIW: &str = "\
test IRIW
thread P0
store x 1
thread P1
store y 1
thread P2
r0 = load x
r1 = load y
thread P3
r2 = load y
r3 = load x
forbidden sc tso : r0=1 & r1=0 & r2=1 & r3=0
allowed rmo : r0=1 & r1=0 & r2=1 & r3=0
";

/// IRIW with full fences between the reader loads: the readers must then
/// agree on a single write order under every model (the directory's
/// per-line serialization provides it).
pub const IRIW_FENCES: &str = "\
test IRIW+fences
thread P0
store x 1
thread P1
store y 1
thread P2
r0 = load x
fence full
r1 = load y
thread P3
r2 = load y
fence full
r3 = load x
forbidden sc tso rmo : r0=1 & r1=0 & r2=1 & r3=0
";

/// Test R: store–store against store–load. `y=2 & r0=0` requires the
/// cycle `a1 →po a2 →co b1 →po b2 →fr a1`; SC enforces every edge, but
/// `b1 →po b2` is W→R — exactly the edge TSO relaxes.
pub const R: &str = "\
test R
thread P0
store x 1
store y 1
thread P1
store y 2
r0 = load x
forbidden sc : y=2 & r0=0
allowed tso rmo : y=2 & r0=0
";

/// Test S: `r0=1 & x=2` needs `a1 →po a2 →rf b1 →po b2 →co a1` — a W→W
/// edge and an R→W edge, both enforced by SC *and* TSO (TSO relaxes only
/// W→R), so S separates TSO from RMO where SB cannot.
pub const S: &str = "\
test S
thread P0
store x 2
store y 1
thread P1
r0 = load y
store x 1
forbidden sc tso : r0=1 & x=2
allowed rmo : r0=1 & x=2
";

/// 2+2W: both locations end at 2, i.e. each thread's *first* store lost
/// the coherence race at one location and won at the other — a pure
/// W→W/`co` cycle, forbidden wherever stores stay in program order.
pub const TWO_PLUS_TWO_W: &str = "\
test 2+2W
thread P0
store x 2
store y 1
thread P1
store y 2
store x 1
forbidden sc tso : x=2 & y=2
allowed rmo : x=2 & y=2
";

/// Coherent read–read: a single location's writes are totally ordered
/// under *every* model, so one thread may never read new-then-old.
pub const CORR: &str = "\
test CoRR
thread P0
store x 1
thread P1
r0 = load x
r1 = load x
forbidden sc tso rmo : r0=1 & r1=0
";

/// The corpus sources, in report order.
pub const CORPUS: [&str; 12] = [
    SB,
    SB_FENCES,
    SB_RMWS,
    MP,
    MP_FENCES,
    LB,
    IRIW,
    IRIW_FENCES,
    R,
    S,
    TWO_PLUS_TWO_W,
    CORR,
];

/// Parses the whole corpus.
///
/// # Panics
///
/// Panics if an in-tree source fails to parse — that is a build bug, and
/// a unit test catches it before any caller can.
pub fn corpus() -> Vec<LitmusTest> {
    CORPUS
        .iter()
        .map(|src| LitmusTest::parse(src).expect("in-tree corpus test must parse"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::PredicateKind;
    use tenways_cpu::ConsistencyModel;

    #[test]
    fn corpus_parses_and_names_are_unique() {
        let tests = corpus();
        assert_eq!(tests.len(), 12);
        let mut names: Vec<&str> = tests.iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12, "corpus names must be unique");
    }

    #[test]
    fn every_test_constrains_every_model() {
        // Each corpus test must carry at least one predicate per model, so
        // no `(test, model)` verdict is vacuous.
        for test in corpus() {
            for model in ConsistencyModel::all() {
                assert!(
                    test.predicates.iter().any(|p| p.models.contains(&model)),
                    "{} has no predicate for {model}",
                    test.name
                );
            }
        }
    }

    #[test]
    fn forbidden_and_allowed_partition_the_models() {
        // Where a test has both rule kinds for the same atom set, no model
        // may appear on both sides.
        for test in corpus() {
            for f in test
                .predicates
                .iter()
                .filter(|p| p.kind == PredicateKind::Forbidden)
            {
                for a in test
                    .predicates
                    .iter()
                    .filter(|p| p.kind == PredicateKind::Allowed && p.text == f.text)
                {
                    for m in &f.models {
                        assert!(
                            !a.models.contains(m),
                            "{}: {m} is both forbidden and allowed for `{}`",
                            test.name,
                            f.text
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn thread_counts_match_the_shapes() {
        let tests = corpus();
        let by_name = |n: &str| tests.iter().find(|t| t.name == n).unwrap();
        assert_eq!(by_name("SB").threads.len(), 2);
        assert_eq!(by_name("IRIW").threads.len(), 4);
        assert_eq!(by_name("IRIW+fences").threads.len(), 4);
        assert_eq!(by_name("CoRR").threads.len(), 2);
    }
}
