//! Verdicts: checks an [`Exploration`] against a test's predicates and
//! the speculation-transparency oracle.
//!
//! Per `(test, model)` the layer checks three things:
//!
//! 1. **Forbidden states.** A final state matching a `forbidden` rule for
//!    the model, observed under *any* speculation mode, is a conformance
//!    failure carrying a replayable `{test, model, spec, grid point}`
//!    repro.
//! 2. **Speculation transparency.** The set of observable final states
//!    with speculation on (on-demand or continuous) must equal the set
//!    with speculation off over the same grid. Any state in the symmetric
//!    difference is a divergence — speculation either leaked a state the
//!    baseline cannot produce or suppressed one it can.
//! 3. **Allowed states** are report-only: observing one shows the
//!    relaxation is actually exercised (useful signal), but a grid that
//!    happens not to sample it is not unsound, so a miss never fails the
//!    test.
//!
//! Any failed run (hang, panic) also fails the verdict — an exploration
//! that could not run its grid certifies nothing.

use tenways_core::SpecMode;
use tenways_cpu::ConsistencyModel;
use tenways_sim::json::{Json, ToJson};

use crate::explore::{Exploration, FinalState, SPEC_MODES};
use crate::parse::{LitmusTest, PredicateKind, PredicateRule};

/// A replayable reference to one grid run.
#[derive(Debug, Clone)]
pub struct Repro {
    /// Test name.
    pub test: String,
    /// Consistency model of the run.
    pub model: ConsistencyModel,
    /// Speculation mode of the run.
    pub spec: SpecMode,
    /// Grid-point index; with [`crate::explore::GridPoint::seed`] this
    /// pins the exact machine config and skews.
    pub point: usize,
    /// The grid's base seed.
    pub seed: u64,
}

impl ToJson for Repro {
    fn to_json(&self) -> Json {
        Json::obj([
            ("test", Json::from(self.test.as_str())),
            ("model", self.model.to_json()),
            ("spec", self.spec.to_json()),
            ("point", Json::from(self.point)),
            ("seed", Json::from(self.seed)),
        ])
    }
}

/// A forbidden final state that was actually observed.
#[derive(Debug, Clone)]
pub struct ForbiddenViolation {
    /// The matched predicate's text.
    pub predicate: String,
    /// The observed state, rendered with observable names.
    pub state: String,
    /// How to reproduce the observation.
    pub repro: Repro,
}

/// A state present under exactly one of `{speculation off, speculation
/// on}` — a transparency break.
#[derive(Debug, Clone)]
pub struct SpecDivergence {
    /// The state only one side observed, rendered with observable names.
    pub state: String,
    /// `true` if speculation produced a state the baseline never did;
    /// `false` if speculation suppressed a baseline state.
    pub leaked: bool,
    /// A run that observed the state (on whichever side has it).
    pub repro: Repro,
}

/// Whether an `allowed` rule's state was actually sampled.
#[derive(Debug, Clone)]
pub struct AllowedOutcome {
    /// The rule's text.
    pub predicate: String,
    /// Whether any run observed a matching state.
    pub hit: bool,
}

/// The full verdict for one `(test, model)`.
#[derive(Debug)]
pub struct TestVerdict {
    /// Test name.
    pub test: String,
    /// The model judged.
    pub model: ConsistencyModel,
    /// Grid points per speculation mode.
    pub points: usize,
    /// Distinct final states observed with speculation off.
    pub baseline_states: usize,
    /// Forbidden-state observations (conformance failures).
    pub forbidden_violations: Vec<ForbiddenViolation>,
    /// Speculation-transparency breaks.
    pub spec_divergences: Vec<SpecDivergence>,
    /// Allowed-rule sampling report.
    pub allowed: Vec<AllowedOutcome>,
    /// Failed runs as `(spec mode, point, error)`.
    pub run_failures: Vec<(SpecMode, usize, String)>,
}

impl TestVerdict {
    /// Whether the model passed: nothing forbidden observed, speculation
    /// transparent, every run completed.
    pub fn passed(&self) -> bool {
        self.forbidden_violations.is_empty()
            && self.spec_divergences.is_empty()
            && self.run_failures.is_empty()
    }
}

impl ToJson for TestVerdict {
    fn to_json(&self) -> Json {
        Json::obj([
            ("test", Json::from(self.test.as_str())),
            ("model", self.model.to_json()),
            (
                "status",
                Json::from(if self.passed() { "ok" } else { "failed" }),
            ),
            ("points", Json::from(self.points)),
            ("baseline_states", Json::from(self.baseline_states)),
            (
                "forbidden_violations",
                Json::arr(self.forbidden_violations.iter().map(|v| {
                    Json::obj([
                        ("predicate", Json::from(v.predicate.as_str())),
                        ("state", Json::from(v.state.as_str())),
                        ("repro", v.repro.to_json()),
                    ])
                })),
            ),
            (
                "spec_divergences",
                Json::arr(self.spec_divergences.iter().map(|d| {
                    Json::obj([
                        ("state", Json::from(d.state.as_str())),
                        ("leaked", Json::from(d.leaked)),
                        ("repro", d.repro.to_json()),
                    ])
                })),
            ),
            (
                "allowed",
                Json::arr(self.allowed.iter().map(|a| {
                    Json::obj([
                        ("predicate", Json::from(a.predicate.as_str())),
                        ("hit", Json::from(a.hit)),
                    ])
                })),
            ),
            (
                "run_failures",
                Json::arr(self.run_failures.iter().map(|(spec, point, err)| {
                    Json::obj([
                        ("spec", spec.to_json()),
                        ("point", Json::from(*point)),
                        ("error", Json::from(err.as_str())),
                    ])
                })),
            ),
        ])
    }
}

fn rules_for(
    test: &LitmusTest,
    kind: PredicateKind,
    model: ConsistencyModel,
) -> impl Iterator<Item = &PredicateRule> {
    test.predicates
        .iter()
        .filter(move |r| r.kind == kind && r.models.contains(&model))
}

/// Judges one exploration: one [`TestVerdict`] per model explored.
pub fn judge(test: &LitmusTest, ex: &Exploration) -> Vec<TestVerdict> {
    let seed = ex.grid.first().map(|p| p.seed).unwrap_or(0);
    let models: Vec<ConsistencyModel> = {
        let mut seen = Vec::new();
        for cell in &ex.cells {
            if !seen.contains(&cell.model) {
                seen.push(cell.model);
            }
        }
        seen
    };
    models
        .into_iter()
        .map(|model| {
            let repro = |spec: SpecMode, point: usize| Repro {
                test: test.name.clone(),
                model,
                spec,
                point,
                seed,
            };
            let mut verdict = TestVerdict {
                test: test.name.clone(),
                model,
                points: ex.grid.len(),
                baseline_states: 0,
                forbidden_violations: Vec::new(),
                spec_divergences: Vec::new(),
                allowed: Vec::new(),
                run_failures: Vec::new(),
            };

            // 1. Forbidden states, under every speculation mode.
            for spec in SPEC_MODES {
                let Some(cell) = ex.cell(model, spec) else {
                    continue;
                };
                for rule in rules_for(test, PredicateKind::Forbidden, model) {
                    for (state, &point) in &cell.states {
                        if test.matches(rule, state) {
                            verdict.forbidden_violations.push(ForbiddenViolation {
                                predicate: rule.text.clone(),
                                state: test.render_state(state),
                                repro: repro(spec, point),
                            });
                        }
                    }
                }
                for (point, err) in &cell.failures {
                    verdict.run_failures.push((spec, *point, err.clone()));
                }
            }

            // 2. Speculation transparency: set equality against Disabled.
            if let Some(baseline) = ex.cell(model, SpecMode::Disabled) {
                verdict.baseline_states = baseline.states.len();
                for spec in [SpecMode::OnDemand, SpecMode::Continuous] {
                    let Some(cell) = ex.cell(model, spec) else {
                        continue;
                    };
                    for (state, &point) in &cell.states {
                        if !baseline.states.contains_key(state) {
                            verdict.spec_divergences.push(SpecDivergence {
                                state: test.render_state(state),
                                leaked: true,
                                repro: repro(spec, point),
                            });
                        }
                    }
                    for (state, &point) in &baseline.states {
                        if !cell.states.contains_key(state) {
                            verdict.spec_divergences.push(SpecDivergence {
                                state: test.render_state(state),
                                leaked: false,
                                repro: repro(SpecMode::Disabled, point),
                            });
                        }
                    }
                }
            }

            // 3. Allowed states: report-only sampling check over all modes.
            for rule in rules_for(test, PredicateKind::Allowed, model) {
                let hit = SPEC_MODES.iter().any(|&spec| {
                    ex.cell(model, spec).is_some_and(|cell| {
                        cell.states
                            .keys()
                            .any(|s: &FinalState| test.matches(rule, s))
                    })
                });
                verdict.allowed.push(AllowedOutcome {
                    predicate: rule.text.clone(),
                    hit,
                });
            }
            verdict
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{build_grid, Exploration, ExploreCell};
    use std::collections::BTreeMap;

    fn sb() -> LitmusTest {
        LitmusTest::parse(
            "test SB\nthread P0\nstore x 1\nr0 = load y\nthread P1\nstore y 1\nr1 = load x\nforbidden sc : r0=0 & r1=0\nallowed tso rmo : r0=0 & r1=0\n",
        )
        .unwrap()
    }

    fn exploration(
        test: &LitmusTest,
        model: ConsistencyModel,
        per_spec: [Vec<FinalState>; 3],
    ) -> Exploration {
        let grid = build_grid(test, 7, 2);
        let cells = SPEC_MODES
            .iter()
            .zip(per_spec)
            .map(|(&spec, states)| ExploreCell {
                model,
                spec,
                states: states
                    .into_iter()
                    .map(|s| (s, 0))
                    .collect::<BTreeMap<_, _>>(),
                failures: Vec::new(),
            })
            .collect();
        Exploration {
            grid,
            cells,
            runs: 6,
        }
    }

    #[test]
    fn forbidden_observation_fails_with_repro() {
        let t = sb();
        // State layout: r0, r1, x, y. (0,0,1,1) is forbidden under SC.
        let bad = vec![0, 0, 1, 1];
        let ex = exploration(
            &t,
            ConsistencyModel::Sc,
            [vec![bad.clone()], vec![bad.clone()], vec![bad.clone()]],
        );
        let verdicts = judge(&t, &ex);
        assert_eq!(verdicts.len(), 1);
        let v = &verdicts[0];
        assert!(!v.passed());
        assert_eq!(
            v.forbidden_violations.len(),
            3,
            "flagged under each spec mode"
        );
        assert_eq!(v.forbidden_violations[0].state, "r0=0 r1=0 x=1 y=1");
        assert_eq!(v.forbidden_violations[0].repro.test, "SB");
    }

    #[test]
    fn spec_divergence_is_detected_both_ways() {
        let t = sb();
        let a = vec![1, 0, 1, 1];
        let b = vec![0, 1, 1, 1];
        // Baseline sees {a}; on-demand sees {a, b} (leak); continuous sees
        // {} (suppression).
        let ex = exploration(
            &t,
            ConsistencyModel::Tso,
            [vec![a.clone()], vec![a.clone(), b.clone()], vec![]],
        );
        let v = &judge(&t, &ex)[0];
        assert!(!v.passed());
        assert_eq!(v.spec_divergences.len(), 2);
        assert!(v.spec_divergences.iter().any(|d| d.leaked));
        assert!(v.spec_divergences.iter().any(|d| !d.leaked));
        assert!(
            v.forbidden_violations.is_empty(),
            "nothing forbidden under TSO"
        );
    }

    #[test]
    fn clean_exploration_passes_and_reports_allowed_hits() {
        let t = sb();
        let sc_only = vec![1, 0, 1, 1];
        let relaxed = vec![0, 0, 1, 1];
        let states = vec![sc_only.clone(), relaxed.clone()];
        let ex = exploration(
            &t,
            ConsistencyModel::Tso,
            [states.clone(), states.clone(), states],
        );
        let v = &judge(&t, &ex)[0];
        assert!(v.passed());
        assert_eq!(v.baseline_states, 2);
        assert_eq!(v.allowed.len(), 1);
        assert!(v.allowed[0].hit, "the relaxed SB outcome was sampled");
        let json = v.to_json().pretty();
        assert!(json.contains("\"status\": \"ok\""));
    }

    #[test]
    fn run_failures_fail_the_verdict() {
        let t = sb();
        let ok = vec![1, 1, 1, 1];
        let mut ex = exploration(
            &t,
            ConsistencyModel::Sc,
            [vec![ok.clone()], vec![ok.clone()], vec![ok]],
        );
        ex.cells[1].failures.push((1, "hung".into()));
        let v = &judge(&t, &ex)[0];
        assert!(!v.passed());
        assert_eq!(v.run_failures.len(), 1);
    }
}
