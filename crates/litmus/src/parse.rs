//! The `.litmus` text format: AST ([`LitmusTest`]) and parser
//! ([`LitmusTest::parse`]).
//!
//! The format is line-oriented. `#` starts a comment, blank lines are
//! ignored, and a test reads top to bottom as: a `test <name>` header,
//! optional `init` lines, one or more `thread` sections, then the
//! final-state predicates.
//!
//! ```text
//! test SB                     # header, mandatory first line
//! init x 0                    # optional; locations default to 0
//!
//! thread P0
//! store x 1
//! r0 = load y
//!
//! thread P1
//! store y 1
//! r1 = load x
//!
//! forbidden sc : r0=0 & r1=0
//! allowed tso rmo : r0=0 & r1=0
//! ```
//!
//! Per-thread operations:
//!
//! | syntax | meaning |
//! |--------|---------|
//! | `store <loc> <v>` | plain store |
//! | `<reg> = load <loc>` | load into a register (recorded in the final state) |
//! | `fence` / `fence full` / `fence acquire` / `fence release` | memory fence |
//! | `<reg> = faa <loc> <n>` | atomic fetch-add, register gets the old value |
//! | `<reg> = swap <loc> <v>` | atomic exchange, register gets the old value |
//! | `<reg> = cas <loc> <expected> <desired>` | compare-and-swap, register gets the old value |
//! | `compute <n>` | `n` cycles of local computation (explicit skew) |
//!
//! Locations are declared implicitly by first use in an `init` line or an
//! operation; each gets its own cache line. Registers are declared by
//! assignment and must be unique across the whole test (they name columns
//! of the final state). Predicates are conjunctions of `name=value` atoms
//! over registers and locations (a location atom constrains the *final
//! memory value*), attached to one or more consistency models.

use tenways_cpu::ConsistencyModel;
use tenways_cpu::FenceKind;
use tenways_cpu::RmwOp;

/// A parse failure, locating the offending line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The ways a `.litmus` document can be malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The first non-blank line was not `test <name>`.
    MissingHeader,
    /// An operation line used an unknown opcode.
    UnknownOpcode(String),
    /// An operation line matched an opcode but not its shape.
    MalformedOp(String),
    /// An operation appeared before any `thread` section.
    OpOutsideThread,
    /// A number failed to parse as an unsigned integer.
    BadInteger(String),
    /// A predicate named something that is neither a register nor a
    /// location.
    UnknownName(String),
    /// A predicate line was not `<kind> <models> : a=v & b=v ...`.
    MalformedPredicate(String),
    /// A predicate named a consistency model that does not exist.
    UnknownModel(String),
    /// A register was assigned in two different operations.
    DuplicateRegister(String),
    /// A thread name was reused.
    DuplicateThread(String),
    /// The test declared no threads.
    NoThreads,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "litmus parse error at line {}: ", self.line)?;
        match &self.kind {
            ParseErrorKind::MissingHeader => write!(f, "expected `test <name>` header"),
            ParseErrorKind::UnknownOpcode(op) => write!(f, "unknown opcode `{op}`"),
            ParseErrorKind::MalformedOp(line) => write!(f, "malformed operation `{line}`"),
            ParseErrorKind::OpOutsideThread => {
                write!(f, "operation before the first `thread` section")
            }
            ParseErrorKind::BadInteger(tok) => write!(f, "`{tok}` is not an unsigned integer"),
            ParseErrorKind::UnknownName(name) => {
                write!(f, "unknown location or register `{name}` in predicate")
            }
            ParseErrorKind::MalformedPredicate(text) => {
                write!(
                    f,
                    "malformed predicate `{text}` (expected `name=value & ...`)"
                )
            }
            ParseErrorKind::UnknownModel(m) => {
                write!(f, "unknown model `{m}` (expected sc, tso or rmo)")
            }
            ParseErrorKind::DuplicateRegister(r) => {
                write!(f, "register `{r}` is assigned more than once")
            }
            ParseErrorKind::DuplicateThread(t) => write!(f, "duplicate thread `{t}`"),
            ParseErrorKind::NoThreads => write!(f, "test has no `thread` sections"),
        }
    }
}

impl std::error::Error for ParseError {}

/// One operation of a litmus thread, over location/register *indices*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LitmusOp {
    /// Plain store of `value` to location `loc`.
    Store {
        /// Index into [`LitmusTest::locations`].
        loc: usize,
        /// Value stored.
        value: u64,
    },
    /// Load location `loc` into register `reg`.
    Load {
        /// Index into [`LitmusTest::registers`].
        reg: usize,
        /// Index into [`LitmusTest::locations`].
        loc: usize,
    },
    /// A memory fence.
    Fence(FenceKind),
    /// Atomic read-modify-write; `reg` receives the old value.
    Rmw {
        /// Index into [`LitmusTest::registers`].
        reg: usize,
        /// Index into [`LitmusTest::locations`].
        loc: usize,
        /// The atomic function.
        rmw: RmwOp,
    },
    /// Local computation for `cycles` (explicit timing skew).
    Compute(u64),
}

/// One thread of a litmus test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LitmusThread {
    /// Thread name (`P0`, `writer`, ...).
    pub name: String,
    /// Program-order operation list.
    pub ops: Vec<LitmusOp>,
}

/// A register declaration (by assignment) within a test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterDef {
    /// Register name, unique across the test.
    pub name: String,
    /// Index of the owning thread.
    pub thread: usize,
}

/// Something a final-state predicate can constrain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observable {
    /// A register's final value (index into [`LitmusTest::registers`]).
    Reg(usize),
    /// A location's final memory value (index into
    /// [`LitmusTest::locations`]).
    Loc(usize),
}

/// Whether a predicate marks states the model must forbid or may allow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredicateKind {
    /// Observing a matching state under a listed model is a conformance
    /// failure.
    Forbidden,
    /// A matching state is legal under the listed models; observing one is
    /// reported (it shows the relaxation is actually exercised) but never
    /// fails the test.
    Allowed,
}

impl PredicateKind {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PredicateKind::Forbidden => "forbidden",
            PredicateKind::Allowed => "allowed",
        }
    }
}

/// One `forbidden`/`allowed` rule: a conjunction of `observable = value`
/// atoms, attached to one or more consistency models.
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateRule {
    /// Forbidden or allowed.
    pub kind: PredicateKind,
    /// The models the rule applies to.
    pub models: Vec<ConsistencyModel>,
    /// The conjunction: every atom must hold for the rule to match.
    pub atoms: Vec<(Observable, u64)>,
    /// The original predicate text (for reports).
    pub text: String,
}

/// A parsed litmus test.
#[derive(Debug, Clone, PartialEq)]
pub struct LitmusTest {
    /// Test name from the header.
    pub name: String,
    /// Declared locations, in first-use order.
    pub locations: Vec<String>,
    /// Non-zero initial values as `(location index, value)` pairs.
    pub init: Vec<(usize, u64)>,
    /// The threads, in declaration order.
    pub threads: Vec<LitmusThread>,
    /// All registers, in (thread, program-order) declaration order. The
    /// final state is this list's values followed by every location's
    /// final memory value.
    pub registers: Vec<RegisterDef>,
    /// The final-state rules.
    pub predicates: Vec<PredicateRule>,
}

impl LitmusTest {
    /// Parses one `.litmus` document.
    ///
    /// # Errors
    ///
    /// Returns the first [`ParseError`] encountered, with its 1-based line
    /// number.
    pub fn parse(text: &str) -> Result<LitmusTest, ParseError> {
        Parser::default().parse(text)
    }

    /// The observable column names: every register, then every location
    /// (a location column is the final memory value).
    pub fn observables(&self) -> Vec<String> {
        self.registers
            .iter()
            .map(|r| r.name.clone())
            .chain(self.locations.iter().cloned())
            .collect()
    }

    /// Renders a final state (as produced by the exploration engine) using
    /// the observable names: `"r0=0 r1=1 x=1 y=1"`.
    pub fn render_state(&self, state: &[u64]) -> String {
        self.observables()
            .iter()
            .zip(state)
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Whether `state` satisfies every atom of `rule`.
    pub fn matches(&self, rule: &PredicateRule, state: &[u64]) -> bool {
        rule.atoms.iter().all(|&(obs, want)| {
            let idx = match obs {
                Observable::Reg(r) => r,
                Observable::Loc(l) => self.registers.len() + l,
            };
            state.get(idx) == Some(&want)
        })
    }
}

#[derive(Default)]
struct Parser {
    test: Option<LitmusTest>,
}

impl Parser {
    fn parse(mut self, text: &str) -> Result<LitmusTest, ParseError> {
        let mut current_thread: Option<usize> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |kind| ParseError {
                line: line_no,
                kind,
            };
            let tokens: Vec<&str> = line.split_whitespace().collect();
            let Some(test) = self.test.as_mut() else {
                // The first meaningful line must be the header.
                if tokens.len() == 2 && tokens[0] == "test" {
                    self.test = Some(LitmusTest {
                        name: tokens[1].to_string(),
                        locations: Vec::new(),
                        init: Vec::new(),
                        threads: Vec::new(),
                        registers: Vec::new(),
                        predicates: Vec::new(),
                    });
                    continue;
                }
                return Err(err(ParseErrorKind::MissingHeader));
            };
            match tokens[0] {
                "init" => {
                    let [_, loc, value] = tokens[..] else {
                        return Err(err(ParseErrorKind::MalformedOp(line.to_string())));
                    };
                    let loc = intern(&mut test.locations, loc);
                    let value = parse_u64(value, line_no)?;
                    test.init.retain(|&(l, _)| l != loc);
                    test.init.push((loc, value));
                }
                "thread" => {
                    let [_, name] = tokens[..] else {
                        return Err(err(ParseErrorKind::MalformedOp(line.to_string())));
                    };
                    if test.threads.iter().any(|t| t.name == name) {
                        return Err(err(ParseErrorKind::DuplicateThread(name.to_string())));
                    }
                    test.threads.push(LitmusThread {
                        name: name.to_string(),
                        ops: Vec::new(),
                    });
                    current_thread = Some(test.threads.len() - 1);
                }
                "forbidden" | "allowed" => {
                    let rule = parse_predicate(test, line, line_no)?;
                    test.predicates.push(rule);
                    current_thread = None;
                }
                _ => {
                    let Some(tid) = current_thread else {
                        return Err(err(ParseErrorKind::OpOutsideThread));
                    };
                    let op = parse_op(test, tid, &tokens, line, line_no)?;
                    test.threads[tid].ops.push(op);
                }
            }
        }
        let test = self.test.ok_or(ParseError {
            line: 1,
            kind: ParseErrorKind::MissingHeader,
        })?;
        if test.threads.is_empty() {
            return Err(ParseError {
                line: 1,
                kind: ParseErrorKind::NoThreads,
            });
        }
        Ok(test)
    }
}

/// Returns the index of `name` in `pool`, appending it if new.
fn intern(pool: &mut Vec<String>, name: &str) -> usize {
    match pool.iter().position(|n| n == name) {
        Some(i) => i,
        None => {
            pool.push(name.to_string());
            pool.len() - 1
        }
    }
}

fn parse_u64(token: &str, line: usize) -> Result<u64, ParseError> {
    token.parse().map_err(|_| ParseError {
        line,
        kind: ParseErrorKind::BadInteger(token.to_string()),
    })
}

/// Declares a register, rejecting duplicates (they name final-state
/// columns, so reuse would be ambiguous).
fn declare_register(
    test: &mut LitmusTest,
    thread: usize,
    name: &str,
    line: usize,
) -> Result<usize, ParseError> {
    if test.registers.iter().any(|r| r.name == name) {
        return Err(ParseError {
            line,
            kind: ParseErrorKind::DuplicateRegister(name.to_string()),
        });
    }
    test.registers.push(RegisterDef {
        name: name.to_string(),
        thread,
    });
    Ok(test.registers.len() - 1)
}

fn parse_op(
    test: &mut LitmusTest,
    thread: usize,
    tokens: &[&str],
    line_text: &str,
    line: usize,
) -> Result<LitmusOp, ParseError> {
    let err = |kind| ParseError { line, kind };
    let malformed = || err(ParseErrorKind::MalformedOp(line_text.to_string()));
    // Register-assigning form: `<reg> = <opcode> <operands...>`.
    if tokens.get(1) == Some(&"=") {
        if tokens.len() < 3 {
            return Err(malformed());
        }
        let reg_name = tokens[0];
        let opcode = tokens[2];
        let rest = &tokens[3..];
        let op = match (opcode, rest) {
            ("load", [loc]) => {
                let loc = intern(&mut test.locations, loc);
                let reg = declare_register(test, thread, reg_name, line)?;
                LitmusOp::Load { reg, loc }
            }
            ("faa", [loc, n]) => {
                let loc = intern(&mut test.locations, loc);
                let n = parse_u64(n, line)?;
                let reg = declare_register(test, thread, reg_name, line)?;
                LitmusOp::Rmw {
                    reg,
                    loc,
                    rmw: RmwOp::FetchAdd(n),
                }
            }
            ("swap", [loc, v]) => {
                let loc = intern(&mut test.locations, loc);
                let v = parse_u64(v, line)?;
                let reg = declare_register(test, thread, reg_name, line)?;
                LitmusOp::Rmw {
                    reg,
                    loc,
                    rmw: RmwOp::Swap(v),
                }
            }
            ("cas", [loc, expected, desired]) => {
                let loc = intern(&mut test.locations, loc);
                let expected = parse_u64(expected, line)?;
                let desired = parse_u64(desired, line)?;
                let reg = declare_register(test, thread, reg_name, line)?;
                LitmusOp::Rmw {
                    reg,
                    loc,
                    rmw: RmwOp::Cas { expected, desired },
                }
            }
            ("load" | "faa" | "swap" | "cas", _) => return Err(malformed()),
            _ => return Err(err(ParseErrorKind::UnknownOpcode(opcode.to_string()))),
        };
        return Ok(op);
    }
    match (tokens[0], &tokens[1..]) {
        ("store", [loc, value]) => {
            let loc = intern(&mut test.locations, loc);
            let value = parse_u64(value, line)?;
            Ok(LitmusOp::Store { loc, value })
        }
        ("fence", []) | ("fence", ["full"]) => Ok(LitmusOp::Fence(FenceKind::Full)),
        ("fence", ["acquire"]) => Ok(LitmusOp::Fence(FenceKind::Acquire)),
        ("fence", ["release"]) => Ok(LitmusOp::Fence(FenceKind::Release)),
        ("compute", [n]) => Ok(LitmusOp::Compute(parse_u64(n, line)?)),
        ("store" | "fence" | "compute", _) => Err(malformed()),
        (opcode, _) => Err(err(ParseErrorKind::UnknownOpcode(opcode.to_string()))),
    }
}

fn parse_predicate(
    test: &LitmusTest,
    line_text: &str,
    line: usize,
) -> Result<PredicateRule, ParseError> {
    let err = |kind| ParseError { line, kind };
    let Some((head, pred)) = line_text.split_once(':') else {
        return Err(err(ParseErrorKind::MalformedPredicate(
            line_text.to_string(),
        )));
    };
    let mut head_tokens = head.split_whitespace();
    let kind = match head_tokens.next() {
        Some("forbidden") => PredicateKind::Forbidden,
        Some("allowed") => PredicateKind::Allowed,
        _ => unreachable!("dispatched on the first token"),
    };
    let mut models = Vec::new();
    for m in head_tokens {
        let model = ConsistencyModel::from_label(m)
            .ok_or_else(|| err(ParseErrorKind::UnknownModel(m.to_string())))?;
        if !models.contains(&model) {
            models.push(model);
        }
    }
    if models.is_empty() {
        return Err(err(ParseErrorKind::MalformedPredicate(
            line_text.to_string(),
        )));
    }
    let pred = pred.trim();
    if pred.is_empty() {
        return Err(err(ParseErrorKind::MalformedPredicate(
            line_text.to_string(),
        )));
    }
    let mut atoms = Vec::new();
    for atom in pred.split('&') {
        let atom = atom.trim();
        let Some((name, value)) = atom.split_once('=') else {
            return Err(err(ParseErrorKind::MalformedPredicate(atom.to_string())));
        };
        let (name, value) = (name.trim(), value.trim());
        if name.is_empty() || value.is_empty() {
            return Err(err(ParseErrorKind::MalformedPredicate(atom.to_string())));
        }
        let obs = if let Some(r) = test.registers.iter().position(|r| r.name == name) {
            Observable::Reg(r)
        } else if let Some(l) = test.locations.iter().position(|l| l == name) {
            Observable::Loc(l)
        } else {
            return Err(err(ParseErrorKind::UnknownName(name.to_string())));
        };
        atoms.push((obs, parse_u64(value, line)?));
    }
    Ok(PredicateRule {
        kind,
        models,
        atoms,
        text: pred.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SB: &str = "\
test SB
thread P0
store x 1
r0 = load y
thread P1
store y 1
r1 = load x
forbidden sc : r0=0 & r1=0
allowed tso rmo : r0=0 & r1=0
";

    #[test]
    fn parses_the_sb_shape() {
        let t = LitmusTest::parse(SB).unwrap();
        assert_eq!(t.name, "SB");
        assert_eq!(t.locations, vec!["x", "y"]);
        assert_eq!(t.threads.len(), 2);
        assert_eq!(
            t.threads[0].ops,
            vec![
                LitmusOp::Store { loc: 0, value: 1 },
                LitmusOp::Load { reg: 0, loc: 1 }
            ]
        );
        assert_eq!(t.registers.len(), 2);
        assert_eq!(t.registers[1].name, "r1");
        assert_eq!(t.registers[1].thread, 1);
        assert_eq!(t.predicates.len(), 2);
        assert_eq!(t.predicates[0].kind, PredicateKind::Forbidden);
        assert_eq!(t.predicates[0].models, vec![ConsistencyModel::Sc]);
        assert_eq!(
            t.predicates[1].models,
            vec![ConsistencyModel::Tso, ConsistencyModel::Rmo]
        );
    }

    #[test]
    fn state_rendering_and_matching() {
        let t = LitmusTest::parse(SB).unwrap();
        // State layout: r0, r1, then final x, y.
        let state = [0, 0, 1, 1];
        assert_eq!(t.render_state(&state), "r0=0 r1=0 x=1 y=1");
        assert!(t.matches(&t.predicates[0], &state));
        assert!(!t.matches(&t.predicates[0], &[0, 1, 1, 1]));
    }

    #[test]
    fn rmw_fence_compute_and_init_forms() {
        let t = LitmusTest::parse(
            "test T\ninit x 7\nthread P0\ncompute 3\na = faa x 2\nb = swap y 9\nc = cas z 0 1\nfence\nfence acquire\nfence release\nforbidden sc : a=7\n",
        )
        .unwrap();
        assert_eq!(t.init, vec![(0, 7)]);
        assert_eq!(t.threads[0].ops.len(), 7);
        assert_eq!(t.threads[0].ops[0], LitmusOp::Compute(3));
        assert_eq!(
            t.threads[0].ops[1],
            LitmusOp::Rmw {
                reg: 0,
                loc: 0,
                rmw: RmwOp::FetchAdd(2)
            }
        );
        assert_eq!(t.threads[0].ops[4], LitmusOp::Fence(FenceKind::Full));
        assert_eq!(t.threads[0].ops[5], LitmusOp::Fence(FenceKind::Acquire));
        assert_eq!(t.threads[0].ops[6], LitmusOp::Fence(FenceKind::Release));
        assert_eq!(t.locations, vec!["x", "y", "z"]);
    }

    #[test]
    fn predicate_on_final_memory() {
        let t = LitmusTest::parse(
            "test T\nthread P0\nstore x 1\nstore y 1\nthread P1\nstore y 2\nr0 = load x\nforbidden sc : y=2 & r0=0\n",
        )
        .unwrap();
        let rule = &t.predicates[0];
        assert_eq!(rule.atoms[0].0, Observable::Loc(1));
        assert_eq!(rule.atoms[1].0, Observable::Reg(0));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let t = LitmusTest::parse(
            "# leading comment\n\ntest T  # trailing\nthread P0\nstore x 1  # store\n",
        )
        .unwrap();
        assert_eq!(t.name, "T");
        assert_eq!(t.threads[0].ops.len(), 1);
    }
}
