//! Parser error paths, with exact error-message assertions: the messages
//! are part of the format's user interface (they point at the offending
//! line), so changing them is a breaking change this suite makes visible.

use tenways_litmus::{LitmusTest, ParseErrorKind};

fn err(src: &str) -> (usize, ParseErrorKind, String) {
    let e = LitmusTest::parse(src).expect_err("source must not parse");
    let msg = e.to_string();
    (e.line, e.kind, msg)
}

#[test]
fn bad_opcode_is_located_and_named() {
    let (line, kind, msg) = err("test T\nthread P0\nstroe x 1\n");
    assert_eq!(line, 3);
    assert_eq!(kind, ParseErrorKind::UnknownOpcode("stroe".into()));
    assert_eq!(msg, "litmus parse error at line 3: unknown opcode `stroe`");
}

#[test]
fn bad_register_opcode_is_distinct_from_shape_errors() {
    let (line, kind, msg) = err("test T\nthread P0\nr0 = lod x\n");
    assert_eq!(line, 3);
    assert_eq!(kind, ParseErrorKind::UnknownOpcode("lod".into()));
    assert_eq!(msg, "litmus parse error at line 3: unknown opcode `lod`");
}

#[test]
fn unknown_location_in_predicate() {
    let (line, kind, msg) = err("test T\nthread P0\nstore x 1\nforbidden sc : z=0\n");
    assert_eq!(line, 4);
    assert_eq!(kind, ParseErrorKind::UnknownName("z".into()));
    assert_eq!(
        msg,
        "litmus parse error at line 4: unknown location or register `z` in predicate"
    );
}

#[test]
fn malformed_predicate_without_colon() {
    let (line, kind, msg) = err("test T\nthread P0\nstore x 1\nforbidden sc x=0\n");
    assert_eq!(line, 4);
    assert_eq!(
        kind,
        ParseErrorKind::MalformedPredicate("forbidden sc x=0".into())
    );
    assert_eq!(
        msg,
        "litmus parse error at line 4: malformed predicate `forbidden sc x=0` (expected `name=value & ...`)"
    );
}

#[test]
fn malformed_predicate_atom_without_equals() {
    let (line, kind, _) = err("test T\nthread P0\nstore x 1\nforbidden sc : x\n");
    assert_eq!(line, 4);
    assert_eq!(kind, ParseErrorKind::MalformedPredicate("x".into()));
}

#[test]
fn predicate_with_unknown_model() {
    let (line, kind, msg) = err("test T\nthread P0\nstore x 1\nforbidden arm : x=0\n");
    assert_eq!(line, 4);
    assert_eq!(kind, ParseErrorKind::UnknownModel("arm".into()));
    assert_eq!(
        msg,
        "litmus parse error at line 4: unknown model `arm` (expected sc, tso or rmo)"
    );
}

#[test]
fn predicate_with_no_models() {
    let (line, kind, _) = err("test T\nthread P0\nstore x 1\nforbidden : x=0\n");
    assert_eq!(line, 4);
    assert_eq!(
        kind,
        ParseErrorKind::MalformedPredicate("forbidden : x=0".into())
    );
}

#[test]
fn missing_header() {
    let (line, kind, msg) = err("thread P0\nstore x 1\n");
    assert_eq!(line, 1);
    assert_eq!(kind, ParseErrorKind::MissingHeader);
    assert_eq!(
        msg,
        "litmus parse error at line 1: expected `test <name>` header"
    );
}

#[test]
fn op_before_any_thread_section() {
    let (line, kind, msg) = err("test T\nstore x 1\n");
    assert_eq!(line, 2);
    assert_eq!(kind, ParseErrorKind::OpOutsideThread);
    assert_eq!(
        msg,
        "litmus parse error at line 2: operation before the first `thread` section"
    );
}

#[test]
fn bad_integer_in_store() {
    let (line, kind, msg) = err("test T\nthread P0\nstore x one\n");
    assert_eq!(line, 3);
    assert_eq!(kind, ParseErrorKind::BadInteger("one".into()));
    assert_eq!(
        msg,
        "litmus parse error at line 3: `one` is not an unsigned integer"
    );
}

#[test]
fn malformed_store_shape() {
    let (line, kind, _) = err("test T\nthread P0\nstore x\n");
    assert_eq!(line, 3);
    assert_eq!(kind, ParseErrorKind::MalformedOp("store x".into()));
}

#[test]
fn duplicate_register_assignment() {
    let (line, kind, msg) = err("test T\nthread P0\nr0 = load x\nr0 = load y\n");
    assert_eq!(line, 4);
    assert_eq!(kind, ParseErrorKind::DuplicateRegister("r0".into()));
    assert_eq!(
        msg,
        "litmus parse error at line 4: register `r0` is assigned more than once"
    );
}

#[test]
fn duplicate_thread_name() {
    let (line, kind, _) = err("test T\nthread P0\nstore x 1\nthread P0\n");
    assert_eq!(line, 4);
    assert_eq!(kind, ParseErrorKind::DuplicateThread("P0".into()));
}

#[test]
fn empty_test_has_no_threads() {
    let (line, kind, msg) = err("test T\n");
    assert_eq!(line, 1);
    assert_eq!(kind, ParseErrorKind::NoThreads);
    assert_eq!(
        msg,
        "litmus parse error at line 1: test has no `thread` sections"
    );
}

#[test]
fn errors_are_std_error() {
    let e = LitmusTest::parse("").unwrap_err();
    let _: &dyn std::error::Error = &e;
}
