//! The corpus conformance gate: every in-tree litmus test, explored
//! across the full `(model, speculation mode)` matrix on the real
//! simulator, must produce a clean verdict — no forbidden state observed,
//! and speculation-on observable-state sets identical to speculation-off.
//!
//! This is the tier-1 enforcement of the acceptance criteria; `tenways
//! litmus --corpus` in ci.sh re-checks the same property through the CLI.

use tenways_cpu::{ConsistencyModel, SchedMode};
use tenways_litmus::{corpus, explore, judge, ExploreOptions, SPEC_MODES};

/// Grid points per cell; trimmed under `TENWAYS_FAST=1` (smoke runs).
fn points() -> usize {
    if std::env::var("TENWAYS_FAST").is_ok_and(|v| v == "1") {
        12
    } else {
        24
    }
}

fn options() -> ExploreOptions {
    ExploreOptions {
        points: points(),
        ..ExploreOptions::default()
    }
}

#[test]
fn corpus_has_the_twelve_classic_shapes() {
    let names: Vec<String> = corpus().into_iter().map(|t| t.name).collect();
    assert_eq!(
        names,
        [
            "SB",
            "SB+fences",
            "SB+rmws",
            "MP",
            "MP+fences",
            "LB",
            "IRIW",
            "IRIW+fences",
            "R",
            "S",
            "2+2W",
            "CoRR"
        ]
    );
}

#[test]
fn full_corpus_passes_under_every_model_and_spec_mode() {
    let opts = options();
    let mut failures = Vec::new();
    for test in corpus() {
        let ex = explore(&test, &ConsistencyModel::all(), &opts);
        assert_eq!(
            ex.cells.len(),
            ConsistencyModel::all().len() * SPEC_MODES.len()
        );
        for verdict in judge(&test, &ex) {
            if !verdict.passed() {
                failures.push(format!(
                    "{}/{}: {} forbidden, {} divergences, {} run failures — {:?} {:?} {:?}",
                    verdict.test,
                    verdict.model,
                    verdict.forbidden_violations.len(),
                    verdict.spec_divergences.len(),
                    verdict.run_failures.len(),
                    verdict.forbidden_violations,
                    verdict.spec_divergences,
                    verdict.run_failures,
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "conformance failures:\n{}",
        failures.join("\n")
    );
}

#[test]
fn full_corpus_is_clean_and_unchanged_under_parallel_epoch() {
    // The epoch-parallel scheduler must not perturb weak-memory behavior:
    // per test and model, the observable state *sets* (and the verdicts
    // derived from them) must match the sequential exploration exactly.
    let seq_opts = options();
    let par_opts = ExploreOptions {
        sched: SchedMode::ParallelEpoch { workers: 2 },
        ..options()
    };
    for test in corpus() {
        let seq = explore(&test, &ConsistencyModel::all(), &seq_opts);
        let par = explore(&test, &ConsistencyModel::all(), &par_opts);
        for (s, p) in seq.cells.iter().zip(&par.cells) {
            assert!(
                p.failures.is_empty(),
                "{}/{}/{}: runs failed under parallel-epoch: {:?}",
                test.name,
                p.model,
                p.spec.label(),
                p.failures
            );
            assert_eq!(
                s.states,
                p.states,
                "{}/{}/{}: state set diverged under parallel-epoch",
                test.name,
                s.model,
                s.spec.label()
            );
        }
        for verdict in judge(&test, &par) {
            assert!(
                verdict.passed(),
                "{}/{} failed under parallel-epoch: {:?} {:?} {:?}",
                verdict.test,
                verdict.model,
                verdict.forbidden_violations,
                verdict.spec_divergences,
                verdict.run_failures
            );
        }
    }
}

#[test]
fn sb_relaxation_is_actually_sampled_under_tso() {
    // `allowed` rules are report-only in general, but SB's relaxed outcome
    // is the one relaxation this simulator is known to exhibit (the store
    // buffer forwards while the store is in flight) — if the grid stops
    // sampling it, the harness has lost its teeth and this test says so.
    let test = corpus().remove(0);
    assert_eq!(test.name, "SB");
    let ex = explore(&test, &[ConsistencyModel::Tso], &options());
    let verdicts = judge(&test, &ex);
    let v = verdicts
        .iter()
        .find(|v| v.model == ConsistencyModel::Tso)
        .unwrap();
    assert!(
        v.passed(),
        "{:?} {:?}",
        v.forbidden_violations,
        v.spec_divergences
    );
    assert_eq!(v.allowed.len(), 1);
    assert!(
        v.allowed[0].hit,
        "the grid never observed SB's r0=0 & r1=0 under TSO"
    );
}
