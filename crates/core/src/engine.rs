//! The fence-speculation policy state machine: [`SpecEngine`].

use tenways_sim::json::{Json, ToJson};
use tenways_sim::{Cycle, Histogram, StatSet};

/// How aggressively the core speculates past ordering stalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecMode {
    /// Never speculate — the conventional stalling baseline.
    Disabled,
    /// Open an epoch only when an ordering stall would otherwise occur, and
    /// commit as soon as the drain conditions clear.
    OnDemand,
    /// Like on-demand, but keep the epoch open after conditions clear until
    /// `commit_interval` speculative operations have accumulated —
    /// decoupling consistency enforcement from the core at the cost of a
    /// longer violation-exposure window.
    Continuous,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecConfig {
    /// Operating mode.
    pub mode: SpecMode,
    /// Continuous mode: minimum speculative ops per epoch before an
    /// eligible commit is taken.
    pub commit_interval: u64,
    /// Optional cap on speculative *stores* per epoch. `Some(n)` models a
    /// per-store-granularity design (ASO-like) whose CAM holds `n` entries:
    /// when the cap is hit the engine refuses to extend the epoch and the
    /// core must stall until commit. `None` models block-granularity
    /// tracking (InvisiFence), which has no such limit.
    pub max_spec_stores: Option<u64>,
    /// Maximum speculative ops per epoch. Once reached, further ordering
    /// stalls are refused (the core stalls until the epoch commits), which
    /// bounds both the commit horizon and the work lost to a rollback.
    pub max_epoch_ops: u64,
    /// Adaptive contention backoff: after each rollback, the next
    /// `2^consecutive_rollbacks` ordering stalls (capped) execute
    /// non-speculatively, so sustained conflicts degrade gracefully toward
    /// the stalling baseline instead of thrashing.
    pub adaptive_backoff: bool,
}

impl SpecConfig {
    /// The conventional baseline (no speculation).
    pub fn disabled() -> Self {
        SpecConfig {
            mode: SpecMode::Disabled,
            commit_interval: 64,
            max_spec_stores: None,
            max_epoch_ops: 128,
            adaptive_backoff: true,
        }
    }

    /// InvisiFence on-demand mode.
    pub fn on_demand() -> Self {
        SpecConfig {
            mode: SpecMode::OnDemand,
            ..SpecConfig::disabled()
        }
    }

    /// InvisiFence continuous mode.
    pub fn continuous() -> Self {
        SpecConfig {
            mode: SpecMode::Continuous,
            ..SpecConfig::disabled()
        }
    }

    /// A per-store-granularity comparator with an `n`-entry store CAM.
    pub fn per_store(n: u64) -> Self {
        SpecConfig {
            max_spec_stores: Some(n),
            ..SpecConfig::on_demand()
        }
    }

    /// Disables the adaptive contention backoff (ablation).
    pub fn without_adaptive_backoff(mut self) -> Self {
        self.adaptive_backoff = false;
        self
    }

    /// Sets the per-epoch op cap (ablation).
    pub fn with_max_epoch_ops(mut self, n: u64) -> Self {
        self.max_epoch_ops = n.max(1);
        self
    }
}

impl Default for SpecConfig {
    fn default() -> Self {
        SpecConfig::on_demand()
    }
}

/// A condition that must hold before a speculative epoch may commit.
///
/// Sequence numbers are the integrating core's global operation sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainCond {
    /// No store older than `seq` may remain in the store buffer.
    NoStoresBefore(u64),
    /// No load older than `seq` may still be outstanding.
    NoLoadsBefore(u64),
    /// Operation `seq` itself must have completed.
    OpDone(u64),
}

/// How an epoch ended (for stats and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochEnd {
    /// All conditions satisfied; marks flash-cleared.
    Committed,
    /// A conflict or overflow forced a rollback.
    RolledBack,
}

/// Adds `cond` to the set, exploiting monotonicity: `NoStoresBefore(s2)`
/// subsumes `NoStoresBefore(s1)` for `s1 <= s2` (likewise for loads), so at
/// most one of each `*Before` variant is retained. Keeps long SC epochs at
/// O(1) conditions instead of O(ops).
fn push_merged(conditions: &mut Vec<DrainCond>, cond: DrainCond) {
    match cond {
        DrainCond::NoStoresBefore(s) => {
            for c in conditions.iter_mut() {
                if let DrainCond::NoStoresBefore(old) = c {
                    *old = (*old).max(s);
                    return;
                }
            }
            conditions.push(cond);
        }
        DrainCond::NoLoadsBefore(s) => {
            for c in conditions.iter_mut() {
                if let DrainCond::NoLoadsBefore(old) = c {
                    *old = (*old).max(s);
                    return;
                }
            }
            conditions.push(cond);
        }
        DrainCond::OpDone(_) => conditions.push(cond),
    }
}

#[derive(Debug)]
enum State {
    Idle,
    Active {
        start_seq: u64,
        started_at: Cycle,
        conditions: Vec<DrainCond>,
        spec_ops: u64,
        spec_stores: u64,
    },
}

/// The post-retirement speculation policy state machine.
///
/// The integrating core drives it with five calls:
///
/// 1. [`request_speculation`](Self::request_speculation) when an op would
///    stall for ordering — `true` means "proceed speculatively".
/// 2. [`note_spec_op`](Self::note_spec_op) /
///    [`note_spec_store`](Self::note_spec_store) as speculative ops retire.
/// 3. [`try_commit`](Self::try_commit) each cycle with a condition checker.
/// 4. [`on_violation`](Self::on_violation) when the L1 reports a conflict —
///    `true` means the core must roll back to the epoch's checkpoint.
/// 5. [`backoff_cleared`](Self::backoff_cleared) after the re-executed
///    ordering point completes non-speculatively.
#[derive(Debug)]
pub struct SpecEngine {
    config: SpecConfig,
    state: State,
    /// After a rollback, refuse to speculate until the offending ordering
    /// point has been executed non-speculatively (forward progress).
    backoff: bool,
    /// Consecutive rollbacks without an intervening commit.
    consec_rollbacks: u32,
    /// Remaining ordering stalls to serve non-speculatively (adaptive
    /// contention backoff).
    suppressed_stalls: u64,
    /// Rollbacks and commits in the current sampling window.
    window_rollbacks: u32,
    window_commits: u32,
    /// Escalation level of the rate throttle (suppression grows 4x per
    /// consecutive hostile window, decays on clean windows).
    throttle_level: u32,
    stats: StatSet,
    depth_hist: Histogram,
    epoch_cycles_hist: Histogram,
}

impl SpecEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: SpecConfig) -> Self {
        SpecEngine {
            config,
            state: State::Idle,
            backoff: false,
            consec_rollbacks: 0,
            suppressed_stalls: 0,
            window_rollbacks: 0,
            window_commits: 0,
            throttle_level: 0,
            stats: StatSet::new(),
            depth_hist: Histogram::new(256, 1),
            epoch_cycles_hist: Histogram::new(256, 8),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> SpecConfig {
        self.config
    }

    /// Whether a speculative epoch is open.
    pub fn speculating(&self) -> bool {
        matches!(self.state, State::Active { .. })
    }

    /// First speculative sequence number of the open epoch, if any.
    pub fn epoch_start(&self) -> Option<u64> {
        match &self.state {
            State::Idle => None,
            State::Active { start_seq, .. } => Some(*start_seq),
        }
    }

    /// Whether the engine is in post-rollback backoff (must not speculate).
    pub fn in_backoff(&self) -> bool {
        self.backoff
    }

    /// An op at `seq` would stall on `cond`. Returns `true` if the core
    /// should bypass the stall speculatively. Opens an epoch (checkpoint!)
    /// if none is active; extends the active epoch otherwise.
    ///
    /// Returns `false` when speculation is disabled, the engine is in
    /// backoff, or a per-store cap has been exhausted.
    pub fn request_speculation(&mut self, now: Cycle, seq: u64, cond: DrainCond) -> bool {
        if self.config.mode == SpecMode::Disabled {
            return false;
        }
        match &mut self.state {
            State::Active {
                conditions,
                spec_stores,
                spec_ops,
                ..
            } => {
                if let Some(cap) = self.config.max_spec_stores {
                    if *spec_stores >= cap {
                        self.stats.bump("spec.cap_refusals");
                        return false;
                    }
                }
                if *spec_ops >= self.config.max_epoch_ops {
                    // Epoch at capacity: bound the commit horizon (and the
                    // damage a rollback can do) by refusing the extension.
                    self.stats.bump("spec.epoch_cap_refusals");
                    return false;
                }
                push_merged(conditions, cond);
                self.stats.bump("spec.epoch_extensions");
                true
            }
            State::Idle => {
                if self.backoff {
                    self.stats.bump("spec.backoff_refusals");
                    return false;
                }
                if self.suppressed_stalls > 0 {
                    self.suppressed_stalls -= 1;
                    self.stats.bump("spec.adaptive_refusals");
                    return false;
                }
                self.state = State::Active {
                    start_seq: seq,
                    started_at: now,
                    conditions: vec![cond],
                    spec_ops: 0,
                    spec_stores: 0,
                };
                self.stats.bump("spec.epochs");
                true
            }
        }
    }

    /// How many more *refused* [`request_speculation`] calls stand between
    /// the current state and one that would be granted, when that count is
    /// finite: only the adaptive-suppression counter ticks down one refusal
    /// at a time. Cap and backoff refusals repeat indefinitely until an
    /// external event (commit, rollback, backoff clear) changes the state,
    /// and return `None`.
    ///
    /// Fast-forward uses this as the engine's event horizon: a core whose
    /// only per-cycle action is a suppressed speculation request will be
    /// granted after exactly `refusal_horizon()` more refusals.
    ///
    /// [`request_speculation`]: Self::request_speculation
    pub fn refusal_horizon(&self) -> Option<u64> {
        match self.state {
            // `suppressed_stalls` may already be 0 here (the observed
            // refusal spent the last suppression); the next request is then
            // granted immediately — horizon zero, nothing to skip.
            State::Idle if self.config.mode != SpecMode::Disabled && !self.backoff => {
                Some(self.suppressed_stalls)
            }
            _ => None,
        }
    }

    /// Replays `n` identical refused [`request_speculation`] calls in one
    /// shot — exactly the per-call effects (refusal stats, adaptive
    /// countdown) the live path would have applied over `n` quiescent
    /// cycles. The engine state must still be the one that produced the
    /// original refusal.
    ///
    /// [`request_speculation`]: Self::request_speculation
    pub fn skip_idle_refusals(&mut self, n: u64) {
        if n == 0 || self.config.mode == SpecMode::Disabled {
            return;
        }
        match &self.state {
            State::Active {
                spec_stores,
                spec_ops,
                ..
            } => {
                if self
                    .config
                    .max_spec_stores
                    .is_some_and(|cap| *spec_stores >= cap)
                {
                    self.stats.bump_by("spec.cap_refusals", n);
                } else if *spec_ops >= self.config.max_epoch_ops {
                    self.stats.bump_by("spec.epoch_cap_refusals", n);
                } else {
                    debug_assert!(false, "replaying refusals the engine would grant");
                }
            }
            State::Idle => {
                if self.backoff {
                    self.stats.bump_by("spec.backoff_refusals", n);
                } else if self.suppressed_stalls > 0 {
                    debug_assert!(
                        n <= self.suppressed_stalls,
                        "replay must stop at the suppression horizon"
                    );
                    self.suppressed_stalls -= n.min(self.suppressed_stalls);
                    self.stats.bump_by("spec.adaptive_refusals", n);
                } else {
                    debug_assert!(false, "replaying refusals the engine would grant");
                }
            }
        }
    }

    /// Replays `n` identical *granted* epoch extensions — the per-call
    /// bump a blocked-but-speculating op repeats every quiescent cycle.
    /// (The merged drain condition is already in place from the observed
    /// cycle; re-merging it is a no-op for timing and commit behavior.)
    pub fn skip_idle_extensions(&mut self, n: u64) {
        if n > 0 {
            debug_assert!(self.speculating(), "extensions need an open epoch");
            self.stats.bump_by("spec.epoch_extensions", n);
        }
    }

    /// Records a speculative operation retiring under the open epoch.
    pub fn note_spec_op(&mut self) {
        if let State::Active { spec_ops, .. } = &mut self.state {
            *spec_ops += 1;
        }
    }

    /// Records a speculative store. Returns `false` if this store exceeds a
    /// per-store cap — the core must hold the store (stall) until commit.
    pub fn note_spec_store(&mut self) -> bool {
        if let State::Active { spec_stores, .. } = &mut self.state {
            if let Some(cap) = self.config.max_spec_stores {
                if *spec_stores >= cap {
                    self.stats.bump("spec.store_cap_stalls");
                    return false;
                }
            }
            *spec_stores += 1;
        }
        true
    }

    /// Attempts to commit the open epoch: `check` must report whether each
    /// drain condition currently holds. Returns `true` on commit (the core
    /// must then flash-clear its L1 marks and drop the checkpoint).
    ///
    /// Continuous mode defers an eligible commit until the epoch has
    /// accumulated `commit_interval` speculative ops.
    pub fn try_commit(&mut self, now: Cycle, check: &mut dyn FnMut(&DrainCond) -> bool) -> bool {
        let State::Active {
            conditions,
            spec_ops,
            started_at,
            ..
        } = &mut self.state
        else {
            return false;
        };
        conditions.retain(|c| !check(c));
        if !conditions.is_empty() {
            return false;
        }
        if self.config.mode == SpecMode::Continuous && *spec_ops < self.config.commit_interval {
            return false;
        }
        let depth = *spec_ops;
        let lived = now - *started_at;
        self.state = State::Idle;
        self.consec_rollbacks = 0;
        self.window_commits += 1;
        self.update_rate_throttle();
        self.stats.bump("spec.commits");
        self.stats.bump_by("spec.committed_ops", depth);
        self.depth_hist.record(depth);
        self.epoch_cycles_hist.record(lived);
        true
    }

    /// A conflict (or marked-line eviction) was reported. Returns `true` if
    /// an epoch was active — the core must roll back to its checkpoint and
    /// re-execute the ordering point non-speculatively (backoff engaged).
    pub fn on_violation(&mut self, now: Cycle) -> bool {
        let State::Active {
            spec_ops,
            started_at,
            ..
        } = &self.state
        else {
            // Violation raced with a commit that already cleared the marks;
            // nothing to roll back.
            self.stats.bump("spec.stale_violations");
            return false;
        };
        let wasted_ops = *spec_ops;
        let wasted_cycles = now - *started_at;
        self.state = State::Idle;
        self.backoff = true;
        if self.config.adaptive_backoff {
            self.consec_rollbacks = (self.consec_rollbacks + 1).min(8);
            self.suppressed_stalls = self.suppressed_stalls.max(1u64 << self.consec_rollbacks);
            self.window_rollbacks += 1;
            self.update_rate_throttle();
        }
        self.stats.bump("spec.rollbacks");
        self.stats.bump_by("spec.wasted_ops", wasted_ops);
        self.stats.bump_by("spec.wasted_cycles", wasted_cycles);
        true
    }

    /// Windowed rollback-rate throttle: when more than a third of the last
    /// 32 epochs rolled back, speculation is clearly losing — serve a long
    /// stretch of stalls non-speculatively, then re-probe. This is what
    /// makes pathologically conflicting phases degrade to the stalling
    /// baseline instead of thrashing ("do no harm").
    fn update_rate_throttle(&mut self) {
        if !self.config.adaptive_backoff {
            return;
        }
        let total = self.window_rollbacks + self.window_commits;
        if total < 32 {
            return;
        }
        if self.window_rollbacks * 3 >= total {
            self.throttle_level = (self.throttle_level + 1).min(8);
            self.suppressed_stalls = self
                .suppressed_stalls
                .max(1024u64 << (2 * self.throttle_level).min(16));
            self.stats.bump("spec.rate_throttles");
        } else {
            self.throttle_level = self.throttle_level.saturating_sub(1);
        }
        self.window_rollbacks = 0;
        self.window_commits = 0;
    }

    /// The re-executed ordering point completed non-speculatively; normal
    /// speculation may resume.
    pub fn backoff_cleared(&mut self) {
        if self.backoff {
            self.backoff = false;
            self.stats.bump("spec.backoffs_cleared");
        }
    }

    /// Aborts any open epoch at end of simulation (counted separately).
    pub fn drain_at_end(&mut self) {
        if self.speculating() {
            self.state = State::Idle;
            self.stats.bump("spec.epochs_open_at_end");
        }
    }

    /// Engine statistics (epochs, commits, rollbacks, wasted work, ...).
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// Distribution of committed-epoch depths (speculative ops per epoch).
    pub fn depth_histogram(&self) -> &Histogram {
        &self.depth_hist
    }

    /// Distribution of committed-epoch lifetimes in cycles.
    pub fn epoch_cycles_histogram(&self) -> &Histogram {
        &self.epoch_cycles_hist
    }
}

impl SpecMode {
    /// The label used in serialized configs ("disabled" / "on-demand" /
    /// "continuous").
    pub fn label(self) -> &'static str {
        match self {
            SpecMode::Disabled => "disabled",
            SpecMode::OnDemand => "on-demand",
            SpecMode::Continuous => "continuous",
        }
    }

    /// Inverse of [`Self::label`]; also accepts common CLI spellings.
    pub fn from_label(label: &str) -> Option<SpecMode> {
        match label.to_ascii_lowercase().as_str() {
            "disabled" | "off" => Some(SpecMode::Disabled),
            "on-demand" | "ondemand" => Some(SpecMode::OnDemand),
            "continuous" => Some(SpecMode::Continuous),
            _ => None,
        }
    }
}

impl ToJson for SpecMode {
    fn to_json(&self) -> Json {
        Json::Str(self.label().to_string())
    }
}

impl ToJson for SpecConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("mode", self.mode.to_json()),
            ("commit_interval", Json::U64(self.commit_interval)),
            (
                "max_spec_stores",
                match self.max_spec_stores {
                    Some(n) => Json::U64(n),
                    None => Json::Null,
                },
            ),
            ("max_epoch_ops", Json::U64(self.max_epoch_ops)),
            ("adaptive_backoff", Json::Bool(self.adaptive_backoff)),
        ])
    }
}

impl SpecConfig {
    /// Parses the CLI shorthand `off | on-demand | continuous |
    /// per-store:<N>` into a full configuration.
    pub fn from_flag(flag: &str) -> Result<SpecConfig, String> {
        let flag = flag.to_ascii_lowercase();
        if let Some(n) = flag.strip_prefix("per-store:") {
            let n: u64 = n
                .parse()
                .map_err(|_| format!("bad per-store count `{n}`"))?;
            return Ok(SpecConfig::per_store(n));
        }
        match SpecMode::from_label(&flag) {
            Some(SpecMode::Disabled) => Ok(SpecConfig::disabled()),
            Some(SpecMode::OnDemand) => Ok(SpecConfig::on_demand()),
            Some(SpecMode::Continuous) => Ok(SpecConfig::continuous()),
            None => Err(format!("unknown spec mode `{flag}`")),
        }
    }

    /// Overlays fields from a JSON object (or a CLI-shorthand string) onto
    /// `self`. Absent keys keep their current value.
    pub fn apply_json(&mut self, doc: &Json) -> Result<(), String> {
        if let Some(flag) = doc.as_str() {
            *self = SpecConfig::from_flag(flag)?;
            return Ok(());
        }
        let pairs = doc
            .as_object()
            .ok_or_else(|| format!("spec section must be an object, got {}", doc.type_name()))?;
        for (key, value) in pairs {
            match key.as_str() {
                "mode" => {
                    let label = value.as_str().ok_or("spec.mode must be a string")?;
                    self.mode = SpecMode::from_label(label)
                        .ok_or_else(|| format!("unknown spec mode `{label}`"))?;
                }
                "commit_interval" => {
                    self.commit_interval = value
                        .as_u64()
                        .ok_or("spec.commit_interval must be an integer")?
                }
                "max_spec_stores" => {
                    self.max_spec_stores = match value {
                        Json::Null => None,
                        v => Some(
                            v.as_u64()
                                .ok_or("spec.max_spec_stores must be an integer or null")?,
                        ),
                    }
                }
                "max_epoch_ops" => {
                    self.max_epoch_ops = value
                        .as_u64()
                        .ok_or("spec.max_epoch_ops must be an integer")?
                }
                "adaptive_backoff" => {
                    self.adaptive_backoff = value
                        .as_bool()
                        .ok_or("spec.adaptive_backoff must be a bool")?
                }
                other => return Err(format!("unknown spec field `{other}`")),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cy(c: u64) -> Cycle {
        Cycle::new(c)
    }

    #[test]
    fn disabled_never_speculates() {
        let mut e = SpecEngine::new(SpecConfig::disabled());
        assert!(!e.request_speculation(cy(0), 1, DrainCond::NoStoresBefore(1)));
        assert!(!e.speculating());
    }

    #[test]
    fn on_demand_epoch_lifecycle() {
        let mut e = SpecEngine::new(SpecConfig::on_demand());
        assert!(e.request_speculation(cy(10), 5, DrainCond::NoStoresBefore(5)));
        assert!(e.speculating());
        assert_eq!(e.epoch_start(), Some(5));
        e.note_spec_op();
        e.note_spec_op();
        // Condition not yet met: no commit.
        assert!(!e.try_commit(cy(20), &mut |_| false));
        assert!(e.speculating());
        // Condition met: commit.
        assert!(e.try_commit(cy(30), &mut |_| true));
        assert!(!e.speculating());
        assert_eq!(e.stats().get("spec.commits"), 1);
        assert_eq!(e.stats().get("spec.committed_ops"), 2);
        assert_eq!(e.depth_histogram().count(), 1);
    }

    #[test]
    fn nested_stalls_extend_the_epoch() {
        let mut e = SpecEngine::new(SpecConfig::on_demand());
        assert!(e.request_speculation(cy(0), 5, DrainCond::NoStoresBefore(5)));
        assert!(e.request_speculation(cy(5), 9, DrainCond::OpDone(9)));
        assert_eq!(e.epoch_start(), Some(5), "epoch start is the first stall");
        // Only one condition satisfied: stay speculative.
        let mut only_first = |c: &DrainCond| matches!(c, DrainCond::NoStoresBefore(_));
        assert!(!e.try_commit(cy(10), &mut only_first));
        // Satisfied conditions are retained as cleared: now clear the rest.
        assert!(e.try_commit(cy(12), &mut |_| true));
        assert_eq!(e.stats().get("spec.epoch_extensions"), 1);
    }

    #[test]
    fn violation_rolls_back_and_engages_backoff() {
        let mut e = SpecEngine::new(SpecConfig::on_demand().without_adaptive_backoff());
        assert!(e.request_speculation(cy(0), 1, DrainCond::NoLoadsBefore(1)));
        e.note_spec_op();
        assert!(e.on_violation(cy(50)));
        assert!(!e.speculating());
        assert!(e.in_backoff());
        assert_eq!(e.stats().get("spec.rollbacks"), 1);
        assert_eq!(e.stats().get("spec.wasted_ops"), 1);
        assert_eq!(e.stats().get("spec.wasted_cycles"), 50);
        // Backoff refuses new epochs until cleared.
        assert!(!e.request_speculation(cy(60), 7, DrainCond::OpDone(7)));
        e.backoff_cleared();
        assert!(e.request_speculation(cy(70), 9, DrainCond::OpDone(9)));
    }

    #[test]
    fn violation_without_epoch_is_stale() {
        let mut e = SpecEngine::new(SpecConfig::on_demand());
        assert!(!e.on_violation(cy(5)));
        assert_eq!(e.stats().get("spec.stale_violations"), 1);
        assert!(!e.in_backoff());
    }

    #[test]
    fn continuous_mode_defers_commit() {
        let mut e = SpecEngine::new(SpecConfig {
            mode: SpecMode::Continuous,
            commit_interval: 4,
            ..SpecConfig::continuous()
        });
        assert!(e.request_speculation(cy(0), 1, DrainCond::OpDone(1)));
        e.note_spec_op();
        // Conditions clear but interval not reached: stays open.
        assert!(!e.try_commit(cy(10), &mut |_| true));
        for _ in 0..3 {
            e.note_spec_op();
        }
        assert!(e.try_commit(cy(20), &mut |_| true));
    }

    #[test]
    fn per_store_cap_limits_epoch() {
        let mut e = SpecEngine::new(SpecConfig::per_store(2));
        assert!(e.request_speculation(cy(0), 1, DrainCond::OpDone(1)));
        assert!(e.note_spec_store());
        assert!(e.note_spec_store());
        assert!(!e.note_spec_store(), "third store exceeds the CAM");
        assert_eq!(e.stats().get("spec.store_cap_stalls"), 1);
        // Extending the epoch via a new stall is also refused at the cap.
        assert!(!e.request_speculation(cy(5), 9, DrainCond::OpDone(9)));
        assert_eq!(e.stats().get("spec.cap_refusals"), 1);
    }

    #[test]
    fn commit_checks_conditions_incrementally() {
        let mut e = SpecEngine::new(SpecConfig::on_demand());
        assert!(e.request_speculation(cy(0), 1, DrainCond::NoStoresBefore(1)));
        assert!(e.request_speculation(cy(1), 2, DrainCond::NoLoadsBefore(2)));
        let mut calls = 0;
        let mut check = |_: &DrainCond| {
            calls += 1;
            false
        };
        assert!(!e.try_commit(cy(2), &mut check));
        assert_eq!(calls, 2, "both conditions polled");
    }

    #[test]
    fn drain_at_end_closes_epoch() {
        let mut e = SpecEngine::new(SpecConfig::on_demand());
        assert!(e.request_speculation(cy(0), 1, DrainCond::OpDone(1)));
        e.drain_at_end();
        assert!(!e.speculating());
        assert_eq!(e.stats().get("spec.epochs_open_at_end"), 1);
    }

    #[test]
    fn adaptive_backoff_suppresses_stalls_exponentially() {
        let mut e = SpecEngine::new(SpecConfig::on_demand());
        // First rollback: suppress 2 stalls.
        assert!(e.request_speculation(cy(0), 1, DrainCond::OpDone(1)));
        assert!(e.on_violation(cy(1)));
        e.backoff_cleared();
        assert!(!e.request_speculation(cy(2), 5, DrainCond::OpDone(5)));
        assert!(!e.request_speculation(cy(3), 6, DrainCond::OpDone(6)));
        assert!(e.request_speculation(cy(4), 7, DrainCond::OpDone(7)));
        // Second consecutive rollback: suppress 4.
        assert!(e.on_violation(cy(5)));
        e.backoff_cleared();
        for seq in 10..14 {
            assert!(!e.request_speculation(cy(6), seq, DrainCond::OpDone(seq)));
        }
        assert!(e.request_speculation(cy(7), 20, DrainCond::OpDone(20)));
        // A commit resets the streak.
        assert!(e.try_commit(cy(8), &mut |_| true));
        assert!(!e.on_violation(cy(9)), "idle: stale");
        assert_eq!(e.stats().get("spec.adaptive_refusals"), 6);
    }

    #[test]
    fn epoch_op_cap_refuses_extensions() {
        let mut e = SpecEngine::new(SpecConfig::on_demand().with_max_epoch_ops(3));
        assert!(e.request_speculation(cy(0), 1, DrainCond::OpDone(1)));
        for _ in 0..3 {
            e.note_spec_op();
        }
        assert!(!e.request_speculation(cy(1), 9, DrainCond::OpDone(9)));
        assert_eq!(e.stats().get("spec.epoch_cap_refusals"), 1);
        // Commit, then a fresh epoch is allowed again.
        assert!(e.try_commit(cy(2), &mut |_| true));
        assert!(e.request_speculation(cy(3), 10, DrainCond::OpDone(10)));
    }

    #[test]
    fn epoch_cycle_histogram_records_lifetime() {
        let mut e = SpecEngine::new(SpecConfig::on_demand());
        assert!(e.request_speculation(cy(100), 1, DrainCond::OpDone(1)));
        assert!(e.try_commit(cy(180), &mut |_| true));
        assert_eq!(e.epoch_cycles_histogram().count(), 1);
        assert_eq!(e.epoch_cycles_histogram().max(), 80);
    }
}
