//! Hardware storage-cost models for the speculation designs (Figure 6).
//!
//! The central quantitative claim of the block-granularity design is that
//! its dedicated state is *independent of speculation depth*: two bits per
//! L1 line plus one register checkpoint, roughly one kilobyte for a 32 KB
//! L1. Per-store designs instead carry a CAM entry per speculative store,
//! so their state grows linearly with the depth they want to support. The
//! functions here compute both curves so the storage figure can be
//! regenerated (and unit-tested) exactly.

/// Storage accounting for one design point, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageBits {
    /// State that exists regardless of speculation depth.
    pub fixed_bits: u64,
    /// State proportional to the supported speculation depth.
    pub per_depth_bits: u64,
}

impl StorageBits {
    /// Total bits when supporting `depth` speculative stores.
    pub fn total_at_depth(&self, depth: u64) -> u64 {
        self.fixed_bits + self.per_depth_bits * depth
    }

    /// Total bytes at `depth` (rounded up).
    pub fn bytes_at_depth(&self, depth: u64) -> u64 {
        self.total_at_depth(depth).div_ceil(8)
    }
}

/// Architectural register checkpoint size in bits: 32 integer + 32 FP
/// 64-bit registers plus ~64 bits of control state.
pub const CHECKPOINT_BITS: u64 = (32 + 32) * 64 + 64;

/// Block-granularity (InvisiFence-style) speculation state for an L1 with
/// `l1_blocks` lines: two mark bits per line plus one checkpoint. Depth
/// contributes nothing.
pub fn block_granularity(l1_blocks: u64) -> StorageBits {
    StorageBits {
        fixed_bits: 2 * l1_blocks + CHECKPOINT_BITS,
        per_depth_bits: 0,
    }
}

/// Per-store-granularity (ASO/store-queue-extension style) state: each
/// speculative store holds a CAM entry of `addr_bits` tag, a 64-byte data
/// block-merge buffer is not needed, but data (64-bit), and ~8 bits of
/// metadata; plus the same checkpoint.
pub fn per_store_granularity(addr_bits: u64) -> StorageBits {
    StorageBits {
        fixed_bits: CHECKPOINT_BITS,
        per_depth_bits: addr_bits + 64 + 8,
    }
}

/// Convenience: the canonical comparison rows for depths `1..=max_depth`
/// (powers of two), for a 32 KB / 64 B L1 and 48-bit physical addresses.
///
/// Returns `(depth, block_granularity_bytes, per_store_bytes)` rows.
pub fn canonical_comparison(max_depth: u64) -> Vec<(u64, u64, u64)> {
    let block = block_granularity(32 * 1024 / 64);
    let per_store = per_store_granularity(48);
    let mut rows = Vec::new();
    let mut d = 1;
    while d <= max_depth {
        rows.push((d, block.bytes_at_depth(d), per_store.bytes_at_depth(d)));
        d *= 2;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_granularity_is_depth_independent() {
        let s = block_granularity(512);
        assert_eq!(s.total_at_depth(1), s.total_at_depth(512));
        // 512 lines * 2 bits + checkpoint ≈ 1 KB claim:
        assert!(
            s.bytes_at_depth(0) < 1024,
            "got {} bytes",
            s.bytes_at_depth(0)
        );
        assert!(s.bytes_at_depth(0) > 512);
    }

    #[test]
    fn per_store_grows_linearly() {
        let s = per_store_granularity(48);
        let d64 = s.total_at_depth(64);
        let d128 = s.total_at_depth(128);
        assert_eq!(d128 - d64, 64 * s.per_depth_bits);
    }

    #[test]
    fn crossover_exists_and_is_shallow() {
        // Per-store designs exceed the block-granularity budget at modest
        // depths — the paper's storage argument.
        let block = block_granularity(512);
        let per_store = per_store_granularity(48);
        let crossover = (1..1024)
            .find(|&d| per_store.total_at_depth(d) > block.total_at_depth(d))
            .expect("per-store must eventually exceed fixed cost");
        assert!(crossover < 64, "crossover at depth {crossover}");
    }

    #[test]
    fn canonical_rows_are_monotone() {
        let rows = canonical_comparison(512);
        assert_eq!(rows.first().unwrap().0, 1);
        assert_eq!(rows.last().unwrap().0, 512);
        for w in rows.windows(2) {
            assert_eq!(w[0].1, w[1].1, "block-granularity flat");
            assert!(w[0].2 < w[1].2, "per-store strictly growing");
        }
    }

    #[test]
    fn bytes_round_up() {
        let s = StorageBits {
            fixed_bits: 9,
            per_depth_bits: 0,
        };
        assert_eq!(s.bytes_at_depth(0), 2);
    }
}
