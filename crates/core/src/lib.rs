//! The paper's primary contribution: **performance-transparent memory
//! ordering via post-retirement fence speculation** ("InvisiFence-style").
//!
//! A conventional core enforces its memory consistency model by *stalling*:
//! at a fence (or an atomic under TSO, or every memory operation under SC)
//! the pipeline waits until older stores have drained and older loads have
//! completed. This crate implements the alternative the calibration bands
//! point at: instead of stalling, the core **checkpoints and speculates
//! past the ordering point**, tracking its speculative footprint at *block
//! granularity* in the L1 (two bits per line — storage independent of
//! speculation depth), and
//!
//! * **commits** by flash-clearing the bits once the original drain
//!   condition has been satisfied — no global arbitration, or
//! * **rolls back** when the coherence protocol reports a conflicting
//!   remote access (invalidation / downgrade) or a marked line is evicted,
//!   after which the offending ordering point is re-executed
//!   non-speculatively once (the forward-progress backoff).
//!
//! The crate is deliberately independent of any particular core
//! microarchitecture: [`SpecEngine`] is a policy state machine driven by
//! the integrating core (crate `tenways-cpu`) through a small vocabulary of
//! [`DrainCond`] conditions. This keeps the mechanism testable in isolation
//! and reusable over different pipeline models.
//!
//! Three operating points are provided (the evaluation's F4/F6 ablations):
//!
//! * [`SpecMode::Disabled`] — the conventional stalling baseline;
//! * [`SpecMode::OnDemand`] — speculate only when a stall would occur;
//! * [`SpecMode::Continuous`] — keep epochs open past the commit point to
//!   decouple consistency from the core entirely (higher violation
//!   exposure, fewer commits).
//!
//! [`storage`] models the hardware cost: the block-granularity design's
//! fixed ~1 KB versus per-store CAM designs whose state grows linearly with
//! speculation depth.
//!
//! # Example
//!
//! ```rust
//! use tenways_core::{DrainCond, SpecConfig, SpecEngine, SpecMode};
//! use tenways_sim::Cycle;
//!
//! let mut eng = SpecEngine::new(SpecConfig::on_demand());
//! // A fence at op 17 would stall until stores before it drain:
//! let go = eng.request_speculation(Cycle::new(100), 17, DrainCond::NoStoresBefore(17));
//! assert!(go, "on-demand mode speculates past the stall");
//! assert!(eng.speculating());
//! // Later, the stores drained — every condition is satisfied:
//! let committed = eng.try_commit(Cycle::new(140), &mut |_c| true);
//! assert!(committed);
//! assert!(!eng.speculating());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod storage;

pub use engine::{DrainCond, EpochEnd, SpecConfig, SpecEngine, SpecMode};
