//! Figure 9 — energy: per-component breakdown, work-per-Joule and EDP,
//! baseline TSO vs speculative TSO (and the data-movement-dominates claim).

use tenways_bench::{banner, record_row, run_parallel, write_results_json, SuiteConfig};
use tenways_cpu::{ConsistencyModel, SpecConfig};
use tenways_sim::json::Json;
use tenways_waste::{report, Experiment};
use tenways_workloads::WorkloadKind;

fn main() {
    let cfg = SuiteConfig::from_env();
    banner(
        "Figure 9",
        "energy breakdown, ops/uJ and EDP (TSO vs TSO+IF)",
        &cfg,
    );

    let mut jobs = Vec::new();
    for kind in WorkloadKind::all() {
        jobs.push((
            kind.name().to_string(),
            Experiment::new(kind)
                .params(cfg.params())
                .model(ConsistencyModel::Tso),
        ));
        jobs.push((
            format!("{}+IF", kind.name()),
            Experiment::new(kind)
                .params(cfg.params())
                .model(ConsistencyModel::Tso)
                .spec(SpecConfig::on_demand()),
        ));
    }
    let mut results =
        run_parallel(jobs).require_all("fig9_energy", "energy breakdown, ops/uJ and EDP", &cfg);
    for (label, r) in &mut results {
        r.label = label.clone();
    }
    let json_rows = results
        .iter()
        .map(|(label, r)| {
            let mut row = record_row(label, r);
            if let Json::Obj(pairs) = &mut row {
                pairs.push((
                    "data_movement_nj".to_string(),
                    Json::F64(r.energy.data_movement_nj()),
                ));
                pairs.push(("edp".to_string(), Json::F64(r.energy.edp())));
            }
            row
        })
        .collect();
    write_results_json(
        "fig9_energy",
        "energy breakdown, ops/uJ and EDP",
        &cfg,
        json_rows,
    );
    let records: Vec<_> = results.into_iter().map(|(_, r)| r).collect();
    print!("{}", report::energy_table(&records));

    let movement: f64 = records.iter().map(|r| r.energy.data_movement_nj()).sum();
    let compute: f64 = records.iter().map(|r| r.energy.core_dynamic_nj).sum();
    println!(
        "\ndata movement vs core compute energy: {:.1}x — \"data movement, rather than \
         computation, is the big consumer of energy\"",
        movement / compute.max(1e-9)
    );

    let mut edp_gains = Vec::new();
    for pair in records.chunks(2) {
        if let [base, spec] = pair {
            edp_gains.push(base.energy.edp() / spec.energy.edp().max(1e-9));
        }
    }
    let gmean = (edp_gains.iter().map(|g| g.ln()).sum::<f64>() / edp_gains.len() as f64).exp();
    println!("geometric-mean EDP improvement from speculation (TSO): {gmean:.3}x");
}
