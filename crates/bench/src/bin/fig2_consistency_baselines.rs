//! Figure 2 — baseline consistency models: SC / TSO / RMO runtime,
//! normalized to RMO. Expected shape: SC slowest, TSO between, RMO = 1.0.

use tenways_bench::{banner, record_row, run_parallel, write_results_json, SuiteConfig};
use tenways_cpu::ConsistencyModel;
use tenways_waste::{report, Experiment};
use tenways_workloads::WorkloadKind;

fn main() {
    let cfg = SuiteConfig::from_env();
    banner(
        "Figure 2",
        "baseline SC / TSO / RMO runtime (normalized to RMO)",
        &cfg,
    );

    let models = ConsistencyModel::all();
    let mut jobs = Vec::new();
    for kind in WorkloadKind::all() {
        for model in models {
            jobs.push((
                format!("{}/{}", kind.name(), model.label()),
                Experiment::new(kind).params(cfg.params()).model(model),
            ));
        }
    }
    let results = run_parallel(jobs).require_all(
        "fig2_consistency_baselines",
        "baseline SC / TSO / RMO runtime",
        &cfg,
    );
    let json_rows = results
        .iter()
        .map(|(label, r)| record_row(label, r))
        .collect();
    write_results_json(
        "fig2_consistency_baselines",
        "baseline SC / TSO / RMO runtime",
        &cfg,
        json_rows,
    );

    let mut rows = Vec::new();
    for (w, kind) in WorkloadKind::all().into_iter().enumerate() {
        let cycles: Vec<u64> = (0..models.len())
            .map(|m| results[w * models.len() + m].1.summary.cycles)
            .collect();
        rows.push((kind.name().to_string(), cycles));
    }
    print!(
        "{}",
        report::normalized_runtime_table(&["SC", "TSO", "RMO"], &rows)
    );

    let gmean = |idx: usize| {
        let logs: f64 = rows
            .iter()
            .map(|(_, c)| (c[idx] as f64 / *c.last().unwrap() as f64).ln())
            .sum();
        (logs / rows.len() as f64).exp()
    };
    println!(
        "\ngeometric mean vs RMO:  SC {:.2}x   TSO {:.2}x",
        gmean(0),
        gmean(1)
    );
}
