//! Serve-path benchmark — what the content-addressed result cache buys.
//!
//! Submits one configuration to a [`SimService`] cold (a miss that runs
//! the full simulation) and then hot in a loop (pure cache hits), and
//! reports both latencies plus the speedup. Two properties are *gated*,
//! not just reported (exit 1 on violation):
//!
//! * the hit row must show **zero simulations** (`sim_runs` stays at the
//!   cold run's 1) — a hit that simulates is a correctness bug, not a
//!   slow path;
//! * the warm hit must be at least [`MIN_SPEEDUP`]× faster than the cold
//!   miss — the entire point of content-addressed serving.
//!
//! Results land in `results/serve_bench.json` and are mirrored to
//! `BENCH_serve.json` at the current directory.

use std::time::Instant;

use tenways_bench::{
    banner, write_results_json, write_text_atomic, ServeOptions, SimService, SuiteConfig,
};
use tenways_sim::json::Json;

const ID: &str = "serve_bench";
const TITLE: &str = "serve: content-addressed cache, cold miss vs warm hit";

/// The gate: a warm hit (hash + memory lookup) must beat a cold miss
/// (full simulation) by at least this factor. Conservative — measured
/// ratios are orders of magnitude larger.
const MIN_SPEEDUP: f64 = 100.0;

/// Warm-hit iterations; single hits are too fast to time individually.
const HIT_ITERS: u32 = 200;

fn main() {
    let cfg = SuiteConfig::from_env();
    banner(ID, TITLE, &cfg);

    let dir = std::env::temp_dir().join(format!("tenways-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service = SimService::new(ServeOptions {
        workers: 1,
        cache_dir: dir.clone(),
        ..ServeOptions::default()
    })
    .expect("open bench cache");

    // Cold: the cache is empty, so this submit runs the simulation.
    let start = Instant::now();
    let cold = service.submit(&cfg.sim).expect("cold run");
    let cold_s = start.elapsed().as_secs_f64();
    assert!(!cold.cached, "first submit must be a miss");
    let sim_runs_after_cold = service.sim_runs();

    // Warm: every further submit is a hit; average over many iterations.
    let start = Instant::now();
    for _ in 0..HIT_ITERS {
        let warm = service.submit(&cfg.sim).expect("warm run");
        assert!(warm.cached, "repeat submit must be a hit");
        assert_eq!(
            warm.record.to_string(),
            cold.record.to_string(),
            "hit must serve the original record byte-identically"
        );
    }
    let warm_s = start.elapsed().as_secs_f64() / f64::from(HIT_ITERS);

    let hit_sim_runs = service.sim_runs() - sim_runs_after_cold;
    let speedup = if warm_s > 0.0 {
        cold_s / warm_s
    } else {
        f64::INFINITY
    };
    let sim_cycles = cold
        .record
        .get("summary")
        .and_then(|s| s.get("cycles"))
        .and_then(Json::as_u64)
        .unwrap_or(0);

    println!(
        "cold miss : {:>10.3} ms  ({} simulated cycles)",
        cold_s * 1e3,
        sim_cycles
    );
    println!(
        "warm hit  : {:>10.6} ms  (avg of {HIT_ITERS}; {} simulations)",
        warm_s * 1e3,
        hit_sim_runs
    );
    println!("speedup   : {speedup:>10.0}x  (gate: >= {MIN_SPEEDUP}x)");

    let gate_zero_sims = hit_sim_runs == 0;
    let gate_speedup = speedup >= MIN_SPEEDUP;
    let rows = vec![
        Json::obj([
            ("label", Json::from("cold_miss")),
            ("cached", Json::Bool(false)),
            ("wall_s", Json::from(cold_s)),
            ("sim_runs", Json::U64(sim_runs_after_cold)),
            ("simulated_cycles", Json::U64(sim_cycles)),
            ("key", Json::from(cold.key.clone())),
        ]),
        Json::obj([
            ("label", Json::from("warm_hit")),
            ("cached", Json::Bool(true)),
            ("wall_s", Json::from(warm_s)),
            ("hit_iters", Json::from(HIT_ITERS as u64)),
            // The load-bearing row: a hit performs zero simulation work.
            ("sim_runs", Json::U64(hit_sim_runs)),
            ("simulated_cycles", Json::U64(0)),
            ("speedup_vs_cold", Json::from(speedup)),
            ("gate_zero_sim_runs", Json::Bool(gate_zero_sims)),
            ("gate_speedup_ok", Json::Bool(gate_speedup)),
        ]),
    ];

    let path = write_results_json(ID, TITLE, &cfg, rows);
    let text = std::fs::read_to_string(&path).expect("re-read results JSON");
    write_text_atomic(std::path::Path::new("BENCH_serve.json"), &text)
        .expect("write BENCH_serve.json");
    println!("[results] wrote BENCH_serve.json");
    let _ = std::fs::remove_dir_all(&dir);

    if !gate_zero_sims {
        eprintln!("[{ID}] GATE FAILED: warm hits ran {hit_sim_runs} simulation(s)");
        std::process::exit(1);
    }
    if !gate_speedup {
        eprintln!("[{ID}] GATE FAILED: speedup {speedup:.1}x < {MIN_SPEEDUP}x");
        std::process::exit(1);
    }
}
