//! Serve-path benchmark — cache economics plus saturation behaviour.
//!
//! Four sections, each with gated properties (exit 1 on violation):
//!
//! 1. **Cold vs warm** (in-process): one configuration submitted cold (a
//!    miss running the full simulation) and then hot in a loop (pure
//!    cache hits). Gates: the hit rows show **zero simulations**, and the
//!    warm hit beats the cold miss by at least [`MIN_SPEEDUP`]×.
//! 2. **Hot-key load generator** (HTTP loopback): N client threads
//!    hammer `POST /run` with the warm key through a real listener,
//!    for N ∈ [`HOT_CLIENTS`]. Rows report saturation requests/sec and
//!    p50/p99 latency. Gate: zero HTTP failures, zero simulations, and —
//!    on hosts with enough cores to express it — throughput at the
//!    widest client count above the single-client run. Hosts without the
//!    cores (CI containers often expose one) pass vacuously and say so
//!    via `gate_host_capable: false`, the same convention as the
//!    `sim_throughput` speedup gate.
//! 3. **Queue-full behaviour** (HTTP loopback): a deliberately tiny
//!    server (1 worker, queue depth 1) against a barrier-synchronized
//!    burst of distinct cold keys. Gates: every request is answered
//!    (rejection is immediate backpressure, never a blocked connection —
//!    zero deadlocks) and at least one request actually got the 503.
//! 4. **Batch dedup** (in-process): `submit_batch` with K identical
//!    configs. Gate: exactly one simulation.
//! 5. **Scale-out** (router + 2 local backends): a `tenways route`
//!    rendezvous router fronts two single-worker serve nodes. Gates:
//!    a duplicate-heavy batch costs exactly one simulation per distinct
//!    key **cluster-wide**; killing a backend mid-burst loses zero
//!    requests (its keyspace re-routes to the survivor); and — on hosts
//!    with the cores to express it — a cold batch completes faster on
//!    the 2-node cluster than on one node (`gate_host_capable: false`
//!    passes vacuously on small hosts, as in section 2).
//!
//! All HTTP load runs over persistent keep-alive connections (one per
//! client thread), so requests/sec measures the serving stack rather
//! than TCP handshakes.
//!
//! Results land in `results/serve_bench.json` and are mirrored to
//! `BENCH_serve.json` at the current directory.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use tenways_bench::{
    banner, route_http, serve_http_shutdown, write_results_json, write_text_atomic, HttpClient,
    Router, RouterOptions, ServeOptions, SimService, SuiteConfig,
};
use tenways_sim::json::{Json, ToJson};
use tenways_waste::SimConfig;

const ID: &str = "serve_bench";
const TITLE: &str = "serve: cache economics, hot-key saturation, queue backpressure";

/// The gate: a warm hit (hash + memory lookup) must beat a cold miss
/// (full simulation) by at least this factor. Conservative — measured
/// ratios are orders of magnitude larger.
const MIN_SPEEDUP: f64 = 100.0;

/// Warm-hit iterations; single hits are too fast to time individually.
const HIT_ITERS: u32 = 200;

/// Client-thread counts for the hot-key load phases.
const HOT_CLIENTS: [usize; 3] = [1, 2, 4];

/// The scaling gate needs at least this many host cores to be
/// expressible; below it the gate passes vacuously.
const HOT_SCALING_MIN_CORES: usize = 4;

/// Queue-full phase: clients × posts-per-client distinct cold keys
/// against a 1-worker, 1-slot server. Seeds are pinned (never scaled by
/// `TENWAYS_FAST`) so the rejection window is deterministic; this list
/// is empirically vetted — simulation runtime at this scale is strongly
/// seed-sensitive and these all land near 130 ms in release builds.
const QF_CLIENTS: usize = 4;
const QF_POSTS_PER_CLIENT: usize = 2;
const QF_SEEDS: [u64; 8] = [1, 2, 4, 6, 7, 8, 9, 10];

/// A config slow enough (~130 ms simulated in release) to hold the
/// queue-full server's single worker while the burst arrives.
fn qf_config(seed: u64) -> SimConfig {
    SimConfig {
        workload: "oltp".to_string(),
        threads: 8,
        scale: 96,
        seed,
        ..SimConfig::default()
    }
}

fn percentile_us(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// What one HTTP load phase measured.
struct PhaseResult {
    requests: usize,
    wall_s: f64,
    req_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    /// Transport errors or unexpected statuses (0 on a healthy run).
    failures: usize,
    /// HTTP statuses seen, as (status, count).
    statuses: Vec<(u16, usize)>,
}

/// Drives `clients` threads × `per_client` POSTs of `bodies` (round-robin
/// per client) against a fresh listener on `service`. Every client
/// starts at a barrier so the burst actually overlaps. `expect` is the
/// set of statuses that count as success.
fn run_phase(
    service: &Arc<SimService>,
    bodies: &[String],
    clients: usize,
    per_client: usize,
    expect: &[u16],
) -> PhaseResult {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let total = clients * per_client;
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = {
        let service = Arc::clone(service);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || serve_http_shutdown(service, listener, None, false, shutdown))
    };

    // One persistent keep-alive connection per client thread: the
    // measured path is request/response over a warm socket, the way the
    // router (and any sane client) talks to the service.
    let barrier = Arc::new(Barrier::new(clients));
    let start = Instant::now();
    let per_thread: Vec<(Vec<f64>, Vec<u16>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let mut client = HttpClient::new(addr);
                    let mut latencies = Vec::with_capacity(per_client);
                    let mut statuses = Vec::with_capacity(per_client);
                    let mut failures = 0usize;
                    barrier.wait();
                    for i in 0..per_client {
                        let body = &bodies[(c * per_client + i) % bodies.len()];
                        let t0 = Instant::now();
                        match client.request("POST", "/run", Some(("application/json", body))) {
                            Ok(reply) => {
                                latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                                statuses.push(reply.status);
                                if !expect.contains(&reply.status) {
                                    failures += 1;
                                }
                            }
                            Err(e) => {
                                eprintln!("[{ID}] client {c} request failed: {e}");
                                failures += 1;
                            }
                        }
                    }
                    (latencies, statuses, failures)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_s = start.elapsed().as_secs_f64();
    shutdown.store(true, Ordering::Relaxed);
    server.join().unwrap().expect("serve loop");

    let mut latencies: Vec<f64> = Vec::with_capacity(total);
    let mut failures = 0usize;
    let mut status_counts: Vec<(u16, usize)> = Vec::new();
    for (lats, statuses, fails) in per_thread {
        latencies.extend(lats);
        failures += fails;
        for status in statuses {
            match status_counts.iter_mut().find(|(s, _)| *s == status) {
                Some((_, n)) => *n += 1,
                None => status_counts.push((status, 1)),
            }
        }
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    status_counts.sort();
    PhaseResult {
        requests: total,
        wall_s,
        req_per_sec: if wall_s > 0.0 {
            total as f64 / wall_s
        } else {
            0.0
        },
        p50_us: percentile_us(&latencies, 0.50),
        p99_us: percentile_us(&latencies, 0.99),
        failures,
        statuses: status_counts,
    }
}

/// One in-process serve backend on an ephemeral port (a scale-out node).
struct Node {
    service: Arc<SimService>,
    addr: String,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<Result<(), String>>>,
}

impl Node {
    fn start(cache_dir: std::path::PathBuf) -> Node {
        let service = Arc::new(
            SimService::new(ServeOptions {
                workers: 1,
                cache_dir,
                ..ServeOptions::default()
            })
            .expect("open node cache"),
        );
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind node");
        let addr = listener.local_addr().expect("node addr").to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread = {
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                serve_http_shutdown(service, listener, None, false, shutdown)
            })
        };
        Node {
            service,
            addr,
            shutdown,
            thread: Some(thread),
        }
    }

    /// Kills the node: drains every open socket and frees the port —
    /// from the router's side this is a crashed backend.
    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            thread.join().unwrap().expect("node loop");
        }
    }
}

fn main() {
    let cfg = SuiteConfig::from_env();
    banner(ID, TITLE, &cfg);
    let fast = std::env::var("TENWAYS_FAST").is_ok();
    let hot_per_client = if fast { 40 } else { 120 };

    let dir = std::env::temp_dir().join(format!("tenways-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service = Arc::new(
        SimService::new(ServeOptions {
            workers: 1,
            cache_dir: dir.join("main"),
            ..ServeOptions::default()
        })
        .expect("open bench cache"),
    );

    // ---- Section 1: cold miss vs warm hit (in-process) ----------------
    let start = Instant::now();
    let cold = service.submit(&cfg.sim).expect("cold run");
    let cold_s = start.elapsed().as_secs_f64();
    assert!(!cold.cached, "first submit must be a miss");
    let sim_runs_after_cold = service.sim_runs();

    let start = Instant::now();
    for _ in 0..HIT_ITERS {
        let warm = service.submit(&cfg.sim).expect("warm run");
        assert!(warm.cached, "repeat submit must be a hit");
        assert_eq!(
            warm.record.to_string(),
            cold.record.to_string(),
            "hit must serve the original record byte-identically"
        );
    }
    let warm_s = start.elapsed().as_secs_f64() / f64::from(HIT_ITERS);

    let hit_sim_runs = service.sim_runs() - sim_runs_after_cold;
    let speedup = if warm_s > 0.0 {
        cold_s / warm_s
    } else {
        f64::INFINITY
    };
    let sim_cycles = cold
        .record
        .get("summary")
        .and_then(|s| s.get("cycles"))
        .and_then(Json::as_u64)
        .unwrap_or(0);

    println!(
        "cold miss : {:>10.3} ms  ({} simulated cycles)",
        cold_s * 1e3,
        sim_cycles
    );
    println!(
        "warm hit  : {:>10.6} ms  (avg of {HIT_ITERS}; {} simulations)",
        warm_s * 1e3,
        hit_sim_runs
    );
    println!("speedup   : {speedup:>10.0}x  (gate: >= {MIN_SPEEDUP}x)");

    let gate_zero_sims = hit_sim_runs == 0;
    let gate_speedup = speedup >= MIN_SPEEDUP;
    let mut rows = vec![
        Json::obj([
            ("label", Json::from("cold_miss")),
            ("cached", Json::Bool(false)),
            ("wall_s", Json::from(cold_s)),
            ("sim_runs", Json::U64(sim_runs_after_cold)),
            ("simulated_cycles", Json::U64(sim_cycles)),
            ("key", Json::from(cold.key.clone())),
        ]),
        Json::obj([
            ("label", Json::from("warm_hit")),
            ("cached", Json::Bool(true)),
            ("wall_s", Json::from(warm_s)),
            ("hit_iters", Json::from(HIT_ITERS as u64)),
            // The load-bearing row: a hit performs zero simulation work.
            ("sim_runs", Json::U64(hit_sim_runs)),
            ("simulated_cycles", Json::U64(0)),
            ("speedup_vs_cold", Json::from(speedup)),
            ("gate_zero_sim_runs", Json::Bool(gate_zero_sims)),
            ("gate_speedup_ok", Json::Bool(gate_speedup)),
        ]),
    ];

    // ---- Section 2: hot-key load generator over HTTP loopback ---------
    // The key is warm from section 1: every request is a pure cache hit,
    // so requests/sec measures the serving stack, not the simulator.
    let hot_body = cfg.sim.to_json().to_string();
    let sims_before_loadgen = service.sim_runs();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut hot_rates: Vec<(usize, f64)> = Vec::new();
    let mut hot_failures = 0usize;
    for &clients in &HOT_CLIENTS {
        let phase = run_phase(
            &service,
            std::slice::from_ref(&hot_body),
            clients,
            hot_per_client,
            &[200],
        );
        println!(
            "hot-key   : {clients} client(s)  {:>8.0} req/s  p50 {:>7.0} us  p99 {:>7.0} us  ({} requests, {} failures)",
            phase.req_per_sec, phase.p50_us, phase.p99_us, phase.requests, phase.failures
        );
        hot_failures += phase.failures;
        hot_rates.push((clients, phase.req_per_sec));
        rows.push(Json::obj([
            (
                "label",
                Json::from(format!("loadgen/hot/clients={clients}")),
            ),
            ("clients", Json::from(clients)),
            ("requests", Json::from(phase.requests)),
            ("wall_s", Json::from(phase.wall_s)),
            ("req_per_sec", Json::from(phase.req_per_sec)),
            ("p50_us", Json::from(phase.p50_us)),
            ("p99_us", Json::from(phase.p99_us)),
            ("http_failures", Json::from(phase.failures)),
        ]));
    }
    let loadgen_sim_runs = service.sim_runs() - sims_before_loadgen;

    // Scaling is only expressible with enough host cores: client threads,
    // handler threads, and the stats path all need somewhere to run.
    let host_capable = host_cores >= HOT_SCALING_MIN_CORES;
    let single_rate = hot_rates.first().map_or(0.0, |&(_, r)| r);
    let widest_rate = hot_rates.last().map_or(0.0, |&(_, r)| r);
    let gate_hot_scaling =
        hot_failures == 0 && loadgen_sim_runs == 0 && (!host_capable || widest_rate > single_rate);
    println!(
        "hot gate  : failures={hot_failures} extra_sims={loadgen_sim_runs} host_cores={host_cores} capable={host_capable} => {}",
        if gate_hot_scaling { "ok" } else { "FAIL" }
    );
    rows.push(Json::obj([
        ("label", Json::from("loadgen/hot/scaling")),
        ("host_cores", Json::from(host_cores)),
        ("gate_host_capable", Json::Bool(host_capable)),
        ("single_client_req_per_sec", Json::from(single_rate)),
        ("widest_req_per_sec", Json::from(widest_rate)),
        ("http_failures", Json::from(hot_failures)),
        ("sim_runs", Json::from(loadgen_sim_runs)),
        ("gate_hot_scaling", Json::Bool(gate_hot_scaling)),
    ]));

    // ---- Section 3: queue-full burst against a tiny server ------------
    // 1 worker, queue depth 1, and a barrier-aligned burst of distinct
    // cold keys: at most one running + one queued at any moment, so the
    // burst MUST see rejections — and every request must still get an
    // immediate answer (backpressure, not blocked connections).
    let qf_service = Arc::new(
        SimService::new(ServeOptions {
            workers: 1,
            queue_depth: 1,
            cache_dir: dir.join("queue-full"),
            ..ServeOptions::default()
        })
        .expect("open queue-full cache"),
    );
    let qf_bodies: Vec<String> = QF_SEEDS
        .iter()
        .take(QF_CLIENTS * QF_POSTS_PER_CLIENT)
        .map(|&seed| qf_config(seed).to_json().to_string())
        .collect();
    let qf = run_phase(
        &qf_service,
        &qf_bodies,
        QF_CLIENTS,
        QF_POSTS_PER_CLIENT,
        &[200, 503],
    );
    let qf_rejected: usize = qf
        .statuses
        .iter()
        .filter(|(s, _)| *s == 503)
        .map(|(_, n)| n)
        .sum();
    let qf_ok: usize = qf
        .statuses
        .iter()
        .filter(|(s, _)| *s == 200)
        .map(|(_, n)| n)
        .sum();
    let answered: usize = qf.statuses.iter().map(|(_, n)| n).sum();
    let gate_no_deadlock = answered == qf.requests && qf.failures == 0;
    let gate_rejections_seen = qf_rejected >= 1;
    println!(
        "queue-full: {} requests -> {qf_ok} ok, {qf_rejected} rejected (rejected rate {:.0}%), all answered: {}",
        qf.requests,
        100.0 * qf_rejected as f64 / qf.requests as f64,
        gate_no_deadlock
    );
    rows.push(Json::obj([
        ("label", Json::from("loadgen/queue_full")),
        ("clients", Json::from(QF_CLIENTS)),
        ("requests", Json::from(qf.requests)),
        ("wall_s", Json::from(qf.wall_s)),
        ("ok", Json::from(qf_ok)),
        ("rejected", Json::from(qf_rejected)),
        (
            "rejection_rate",
            Json::from(qf_rejected as f64 / qf.requests as f64),
        ),
        ("p99_us", Json::from(qf.p99_us)),
        ("server_rejected_counter", Json::U64(qf_service.rejected())),
        ("gate_no_deadlock", Json::Bool(gate_no_deadlock)),
        ("gate_rejections_seen", Json::Bool(gate_rejections_seen)),
    ]));

    // ---- Section 4: batch dedup (in-process) ---------------------------
    let bd_service = SimService::new(ServeOptions {
        workers: 2,
        cache_dir: dir.join("batch"),
        ..ServeOptions::default()
    })
    .expect("open batch cache");
    let dup = SimConfig {
        workload: "lu".to_string(),
        threads: 2,
        scale: 1,
        ..SimConfig::default()
    };
    let batch: Vec<(String, SimConfig)> =
        (0..4).map(|i| (format!("dup{i}"), dup.clone())).collect();
    let report = bd_service.submit_batch(&batch, None);
    let gate_batch_dedup = bd_service.sim_runs() == 1
        && report.unique == 1
        && report
            .items
            .iter()
            .all(|item| item.status.record().is_some());
    println!(
        "batch     : {} duplicate configs -> {} unique, {} simulation(s) => {}",
        report.items.len(),
        report.unique,
        bd_service.sim_runs(),
        if gate_batch_dedup { "ok" } else { "FAIL" }
    );
    rows.push(Json::obj([
        ("label", Json::from("batch_dedup")),
        ("configs", Json::from(report.items.len())),
        ("unique", Json::from(report.unique)),
        ("sim_runs", Json::U64(bd_service.sim_runs())),
        ("gate_batch_dedup", Json::Bool(gate_batch_dedup)),
    ]));

    // ---- Section 5: scale-out (router + 2 local backends) --------------
    // A rendezvous router fronts two single-worker serve nodes; the three
    // gates are the cluster-layer invariants: dedup stays global, a
    // backend kill loses nothing, and capacity grows out, not up.
    let mut b0 = Node::start(dir.join("cluster-b0"));
    let mut b1 = Node::start(dir.join("cluster-b1"));
    let router = Arc::new(
        Router::new(RouterOptions {
            backends: vec![b0.addr.clone(), b1.addr.clone()],
            health_interval: Duration::from_millis(100),
            retries: 4,
            backoff: Duration::from_millis(25),
        })
        .expect("router starts"),
    );
    let router_listener = TcpListener::bind("127.0.0.1:0").expect("bind router");
    let router_addr = router_listener
        .local_addr()
        .expect("router addr")
        .to_string();
    let router_shutdown = Arc::new(AtomicBool::new(false));
    let router_thread = {
        let router = Arc::clone(&router);
        let shutdown = Arc::clone(&router_shutdown);
        std::thread::spawn(move || route_http(router, router_listener, None, false, shutdown))
    };
    let mut router_client = HttpClient::new(router_addr.clone());

    // 5a: duplicate-heavy batch through the router — 8 distinct lu keys,
    // 3 labelled submissions each. Dedup must hold *cluster-wide*: one
    // simulation per distinct key, however the keys shard.
    let dup_unique = 8usize;
    let dup_copies = 3usize;
    let dup_cfgs: Vec<SimConfig> = (0..dup_unique as u64)
        .map(|seed| SimConfig {
            workload: "lu".to_string(),
            threads: 2,
            scale: 1,
            seed,
            ..SimConfig::default()
        })
        .collect();
    let dup_body = Json::obj([(
        "configs",
        Json::Arr(
            (0..dup_copies)
                .flat_map(|copy| {
                    dup_cfgs.iter().enumerate().map(move |(i, c)| {
                        Json::obj([
                            ("label", Json::from(format!("dup{i}-{copy}"))),
                            ("config", c.to_json()),
                        ])
                    })
                })
                .collect(),
        ),
    )])
    .to_string();
    let reply = router_client
        .request("POST", "/batch", Some(("application/json", &dup_body)))
        .expect("cluster batch");
    let batch_unique = reply.body.get("unique").and_then(Json::as_u64).unwrap_or(0);
    let cluster_sims = b0.service.sim_runs() + b1.service.sim_runs();
    let gate_cluster_dedup = reply.status == 200
        && batch_unique == dup_unique as u64
        && cluster_sims == dup_unique as u64;
    println!(
        "scale-out : batch of {} ({dup_unique} unique) -> {cluster_sims} simulations cluster-wide (b0 {}, b1 {}) => {}",
        dup_unique * dup_copies,
        b0.service.sim_runs(),
        b1.service.sim_runs(),
        if gate_cluster_dedup { "ok" } else { "FAIL" }
    );
    rows.push(Json::obj([
        ("label", Json::from("scaleout/cluster_dedup")),
        ("backends", Json::from(2usize)),
        ("configs", Json::from(dup_unique * dup_copies)),
        ("unique", Json::U64(batch_unique)),
        ("sim_runs_total", Json::U64(cluster_sims)),
        ("b0_sim_runs", Json::U64(b0.service.sim_runs())),
        ("b1_sim_runs", Json::U64(b1.service.sim_runs())),
        ("gate_cluster_dedup", Json::Bool(gate_cluster_dedup)),
    ]));

    // 5b: capacity scales out — the same cold batch of slow oltp keys on
    // one node vs the 2-node cluster. Only expressible when the host has
    // cores for both backends to actually simulate concurrently AND the
    // rendezvous split gave each backend work; otherwise vacuous (and
    // reported as such), like every host-dependent gate in this suite.
    let capacity_cfgs: Vec<SimConfig> = QF_SEEDS.iter().map(|&seed| qf_config(seed)).collect();
    let capacity_body = Json::obj([(
        "configs",
        Json::Arr(
            capacity_cfgs
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    Json::obj([
                        ("label", Json::from(format!("cap{i}"))),
                        ("config", c.to_json()),
                    ])
                })
                .collect(),
        ),
    )])
    .to_string();

    let mut single = Node::start(dir.join("cluster-single"));
    let mut single_client = HttpClient::new(single.addr.clone());
    let t0 = Instant::now();
    let single_reply = single_client
        .request("POST", "/batch", Some(("application/json", &capacity_body)))
        .expect("single-node batch");
    let single_wall_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let cluster_reply = router_client
        .request("POST", "/batch", Some(("application/json", &capacity_body)))
        .expect("cluster batch");
    let cluster_wall_s = t0.elapsed().as_secs_f64();

    let owned_by_b0 = capacity_cfgs
        .iter()
        .filter(|c| router.rank(&c.cache_key())[0] == 0)
        .count();
    let split_expressible = owned_by_b0 > 0 && owned_by_b0 < capacity_cfgs.len();
    let capacity_capable = host_capable && split_expressible;
    let capacity_speedup = if cluster_wall_s > 0.0 {
        single_wall_s / cluster_wall_s
    } else {
        0.0
    };
    let gate_scaleout_capacity = single_reply.status == 200
        && cluster_reply.status == 200
        && (!capacity_capable || cluster_wall_s < single_wall_s);
    println!(
        "scale-out : cold batch of {}: single {single_wall_s:.3}s vs cluster {cluster_wall_s:.3}s ({capacity_speedup:.2}x, split {owned_by_b0}/{}, capable={capacity_capable}) => {}",
        capacity_cfgs.len(),
        capacity_cfgs.len() - owned_by_b0,
        if gate_scaleout_capacity { "ok" } else { "FAIL" }
    );
    rows.push(Json::obj([
        ("label", Json::from("scaleout/capacity")),
        ("requests", Json::from(capacity_cfgs.len())),
        ("single_wall_s", Json::from(single_wall_s)),
        ("cluster_wall_s", Json::from(cluster_wall_s)),
        ("cluster_speedup", Json::from(capacity_speedup)),
        ("b0_keys", Json::from(owned_by_b0)),
        ("b1_keys", Json::from(capacity_cfgs.len() - owned_by_b0)),
        ("host_cores", Json::from(host_cores)),
        ("gate_host_capable", Json::Bool(capacity_capable)),
        ("gate_scaleout_capacity", Json::Bool(gate_scaleout_capacity)),
    ]));
    single.stop();

    // 5c: kill-and-reroute — re-post every capacity key as /run rounds,
    // killing backend 0 after the first round. The router must answer
    // every request with 200: backend 0's keyspace re-routes to the
    // survivor (which re-simulates what it never cached), and nothing is
    // lost or left hanging.
    let rounds = 3usize;
    let mut lost = 0usize;
    let mut answered = 0usize;
    for round in 0..rounds {
        if round == 1 {
            b0.stop();
        }
        for c in &capacity_cfgs {
            let body = c.to_json().to_string();
            match router_client.request("POST", "/run", Some(("application/json", &body))) {
                Ok(reply) if reply.status == 200 => answered += 1,
                Ok(reply) => {
                    eprintln!("[{ID}] failover request answered {}", reply.status);
                    lost += 1;
                }
                Err(e) => {
                    eprintln!("[{ID}] failover request lost: {e}");
                    lost += 1;
                }
            }
        }
    }
    let stats_reply = router_client
        .request("GET", "/stats", None)
        .expect("router stats");
    let backends_up = stats_reply
        .body
        .get("cluster")
        .and_then(|c| c.get("backends_up"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let rerouted = stats_reply
        .body
        .get("router")
        .and_then(|r| r.get("rerouted"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let gate_no_lost_requests = lost == 0 && answered == rounds * capacity_cfgs.len();
    println!(
        "scale-out : kill-and-reroute: {answered}/{} answered, {lost} lost, {rerouted} rerouted, backends_up={backends_up} => {}",
        rounds * capacity_cfgs.len(),
        if gate_no_lost_requests { "ok" } else { "FAIL" }
    );
    rows.push(Json::obj([
        ("label", Json::from("scaleout/failover")),
        ("rounds", Json::from(rounds)),
        ("requests", Json::from(rounds * capacity_cfgs.len())),
        ("answered", Json::from(answered)),
        ("lost", Json::from(lost)),
        ("rerouted", Json::U64(rerouted)),
        ("backends_up", Json::U64(backends_up)),
        ("gate_no_lost_requests", Json::Bool(gate_no_lost_requests)),
    ]));

    drop(router_client);
    router_shutdown.store(true, Ordering::Relaxed);
    router_thread.join().unwrap().expect("router loop");
    drop(router);
    b1.stop();

    let path = write_results_json(ID, TITLE, &cfg, rows);
    let text = std::fs::read_to_string(&path).expect("re-read results JSON");
    write_text_atomic(std::path::Path::new("BENCH_serve.json"), &text)
        .expect("write BENCH_serve.json");
    println!("[results] wrote BENCH_serve.json");
    let _ = std::fs::remove_dir_all(&dir);

    let gates = [
        (gate_zero_sims, "warm hits ran simulations"),
        (gate_speedup, "warm speedup below the floor"),
        (gate_hot_scaling, "hot-key load phase failed"),
        (
            gate_no_deadlock,
            "queue-full burst left requests unanswered",
        ),
        (gate_rejections_seen, "queue-full burst saw no rejections"),
        (gate_batch_dedup, "batch dedup ran extra simulations"),
        (
            gate_cluster_dedup,
            "cluster-wide dedup ran duplicate simulations",
        ),
        (
            gate_scaleout_capacity,
            "cluster batch was not faster than one node",
        ),
        (
            gate_no_lost_requests,
            "requests were lost across the backend kill",
        ),
    ];
    let mut bad = false;
    for (ok, what) in gates {
        if !ok {
            eprintln!("[{ID}] GATE FAILED: {what}");
            bad = true;
        }
    }
    if bad {
        std::process::exit(1);
    }
}
