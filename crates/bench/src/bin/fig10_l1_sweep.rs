//! Figure 10 — L1 capacity sensitivity (1–32 KiB): smaller caches evict
//! speculatively-marked lines more often, raising violation rates; larger
//! caches reduce both misses and eviction-induced rollbacks.

use tenways_bench::{banner, record_row, run_parallel, write_results_json, SuiteConfig};
use tenways_cpu::{ConsistencyModel, SpecConfig};
use tenways_sim::json::Json;
use tenways_sim::MachineConfig;
use tenways_waste::Experiment;
use tenways_workloads::WorkloadKind;

fn main() {
    let cfg = SuiteConfig::from_env();
    banner(
        "Figure 10",
        "L1 capacity sweep (SC + on-demand; apache & dss, 1-32 KiB)",
        &cfg,
    );

    let sizes_kib = [1usize, 2, 4, 8, 32];
    let kinds = [WorkloadKind::ApacheLike, WorkloadKind::DssLike];
    let mut jobs = Vec::new();
    for kind in kinds {
        for &kib in &sizes_kib {
            let machine = MachineConfig::builder().l1_kib(kib).build().expect("valid");
            jobs.push((
                format!("{}/{}K", kind.name(), kib),
                Experiment::new(kind)
                    .params(cfg.params())
                    .machine(machine)
                    .model(ConsistencyModel::Sc)
                    .spec(SpecConfig::on_demand()),
            ));
        }
    }
    let results = run_parallel(jobs).require_all(
        "fig10_l1_sweep",
        "L1 capacity sweep (SC + on-demand)",
        &cfg,
    );
    let json_rows = results
        .iter()
        .map(|(label, r)| {
            let mut row = record_row(label, r);
            if let Json::Obj(pairs) = &mut row {
                pairs.push((
                    "eviction_violations".to_string(),
                    Json::U64(r.stats.get("l1.violation_eviction")),
                ));
                pairs.push(("l1_misses".to_string(), Json::U64(r.stats.get("l1.misses"))));
            }
            row
        })
        .collect();
    write_results_json(
        "fig10_l1_sweep",
        "L1 capacity sweep (SC + on-demand)",
        &cfg,
        json_rows,
    );

    let mut idx = 0;
    for kind in kinds {
        println!("\n{}:", kind.name());
        println!(
            "{:>10}{:>12}{:>12}{:>14}{:>16}",
            "L1 KiB", "cycles", "rollbacks", "evict-viols", "l1 miss ratio"
        );
        for &kib in &sizes_kib {
            let r = &results[idx].1;
            idx += 1;
            let reads = r.stats.get("l1.read_reqs") + r.stats.get("l1.write_reqs");
            println!(
                "{:>10}{:>12}{:>12}{:>14}{:>16.4}",
                kib,
                r.summary.cycles,
                r.stats.get("spec.rollbacks"),
                r.stats.get("l1.violation_eviction"),
                r.stats.get("l1.misses") as f64 / reads.max(1) as f64,
            );
        }
    }
    println!("\n(eviction-induced violations should fall as the L1 grows)");
}
