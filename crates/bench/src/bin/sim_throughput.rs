//! Simulator throughput — host-side cost of simulation, and the wall-clock
//! win from each accelerated run loop.
//!
//! Each configuration runs three times over the identical workload: naive
//! per-cycle stepping (the reference loop), machine-wide quiescent-gap
//! fast-forward (PR 3), and the component-granular wake scheduler (the
//! default). The binary *fails* (exit 1) if any mode's run record is not
//! byte-identical to naive, so a smoke run doubles as the scheduler
//! regression gate in CI. Rows report simulated cycles per wall second and
//! retired ops per wall second for every mode, plus speedups over naive
//! (and, for the wake scheduler, over machine-gap — the number that
//! isolates what per-component wakeup buys on mixed active/idle
//! machines); results land in `results/sim_throughput.json` and are
//! mirrored to `BENCH_sim_throughput.json` at the current directory.
//!
//! A final big-mesh section (256 cores on a 2-D mesh) benchmarks the
//! epoch-parallel scheduler at 1/2/4/8 shard workers against the wake
//! scheduler, gating both on record identity and — where the host has the
//! hardware threads to run the shards concurrently — on
//! `speedup_vs_component_wake >= 1.0` at 4 workers (`gate_speedup_ok`).

use std::time::Instant;

use tenways_bench::{banner, write_results_json, write_text_atomic, SuiteConfig};
use tenways_cpu::{
    ConsistencyModel, Machine, MachineSpec, Op, ScriptProgram, SpecConfig, ThreadProgram,
};
use tenways_sim::json::Json;
use tenways_sim::{Addr, AtomicsConfig, MachineConfig};
use tenways_waste::{Experiment, SchedMode};
use tenways_workloads::{WorkloadKind, WorkloadParams};

const ID: &str = "sim_throughput";
const TITLE: &str = "simulator throughput: wake scheduling vs fast-forward vs naive";

const MODES: [(&str, SchedMode); 3] = [
    ("naive", SchedMode::Naive),
    ("machine_gap", SchedMode::MachineGap),
    ("component_wake", SchedMode::ComponentWake),
];

struct Timed {
    cycles: u64,
    retired_ops: u64,
    finished: bool,
    wall_s: f64,
    /// Full run state, stringified — equality across modes is the gate.
    fingerprint: String,
}

/// Runs the workload `REPEATS` times and keeps the best wall time (the
/// runs are deterministic, so repeats only shave scheduler noise off
/// sub-100ms measurements).
const REPEATS: usize = 3;

fn best_of<F: FnMut() -> Timed>(mut run: F) -> Timed {
    let mut best: Option<Timed> = None;
    for _ in 0..REPEATS {
        let t = run();
        if best.as_ref().is_none_or(|b| t.wall_s < b.wall_s) {
            best = Some(t);
        }
    }
    best.expect("at least one repeat")
}

fn timed_exp(exp: &Experiment, sched: SchedMode) -> Timed {
    let exp = exp.clone().sched(sched);
    best_of(|| {
        let t0 = Instant::now();
        let record = exp.run().unwrap_or_else(|e| panic!("run failed: {e}"));
        let wall_s = t0.elapsed().as_secs_f64();
        Timed {
            cycles: record.summary.cycles,
            retired_ops: record.summary.retired_ops,
            finished: record.summary.finished,
            wall_s,
            fingerprint: record.fingerprint(),
        }
    })
}

/// The wake scheduler's headline machine: one core computes the whole run
/// while the rest fetch a few cold lines from far memory and then sit
/// finished. Machine-gap fast-forward can never skip a cycle here (core 0
/// always makes progress), so the whole machine is re-ticked every cycle;
/// per-component wakeup parks the 15 done complexes and the drained NoC
/// and pays O(1 complex) per cycle instead of O(16).
///
/// Built on [`Machine`] directly because the workload suite has no kernel
/// with this shape: its spinners *poll* (busy), they do not park.
fn mixed_machine(busy_ops: u64, idle_cores: usize) -> Machine {
    let cores = idle_cores + 1;
    let cfg = MachineConfig::builder()
        .cores(cores)
        .dram(4, 4000, 48)
        .build()
        .expect("mixed machine config");
    let ms = MachineSpec::baseline(ConsistencyModel::Tso).with_machine(cfg);
    let mut programs: Vec<Box<dyn ThreadProgram>> = Vec::with_capacity(cores);
    // Core 0: pure compute, no memory traffic — busy every single cycle.
    let busy: Vec<Op> = (0..busy_ops).map(|_| Op::Compute(2)).collect();
    programs.push(Box::new(ScriptProgram::new(busy)));
    // Cores 1..: eight strided cold loads each against 4000-cycle DRAM,
    // then done for the rest of the run.
    for c in 1..cores as u64 {
        let ops: Vec<Op> = (0..8u64)
            .map(|i| Op::load(Addr(0x100_0000 * c + 0x400 * i)))
            .collect();
        programs.push(Box::new(ScriptProgram::new(ops)));
    }
    Machine::new(&ms, programs)
}

fn timed_mixed(busy_ops: u64, idle_cores: usize, sched: SchedMode) -> Timed {
    best_of(|| {
        let mut m = mixed_machine(busy_ops, idle_cores);
        m.set_sched(sched);
        let t0 = Instant::now();
        let summary = m.run(10_000_000);
        let wall_s = t0.elapsed().as_secs_f64();
        Timed {
            cycles: summary.cycles,
            retired_ops: summary.retired_ops,
            finished: summary.finished,
            wall_s,
            fingerprint: format!(
                "{summary:?}\n{:?}\n{:?}",
                m.merged_stats(),
                m.sb_occupancy()
            ),
        }
    })
}

fn mode_row(
    label: &str,
    mode: &str,
    t: &Timed,
    naive: Option<&Timed>,
    gap: Option<&Timed>,
) -> Json {
    let per_sec = |n: u64| {
        if t.wall_s > 0.0 {
            n as f64 / t.wall_s
        } else {
            0.0
        }
    };
    let speedup =
        |base: Option<&Timed>| base.filter(|_| t.wall_s > 0.0).map(|b| b.wall_s / t.wall_s);
    let mut fields = vec![
        ("label", Json::from(label)),
        ("mode", Json::from(mode)),
        ("cycles", Json::U64(t.cycles)),
        ("finished", Json::Bool(t.finished)),
        ("retired_ops", Json::U64(t.retired_ops)),
        ("wall_s", Json::F64(t.wall_s)),
        ("sim_cycles_per_sec", Json::F64(per_sec(t.cycles))),
        ("retired_ops_per_sec", Json::F64(per_sec(t.retired_ops))),
    ];
    if let Some(s) = speedup(naive) {
        fields.push(("speedup_vs_naive", Json::F64(s)));
    }
    if let Some(s) = speedup(gap) {
        fields.push(("speedup_vs_machine_gap", Json::F64(s)));
    }
    Json::obj(fields)
}

fn main() {
    let cfg = SuiteConfig::from_env();
    banner(ID, TITLE, &cfg);
    let fast_smoke = std::env::var("TENWAYS_FAST").is_ok();

    let params = WorkloadParams {
        threads: cfg.threads(),
        scale: cfg.scale(),
        seed: cfg.seed(),
    };
    let hi_dram = MachineConfig::builder()
        .cores(cfg.threads())
        .dram(4, 400, 48)
        .build()
        .expect("hi-dram machine config");
    // Far-memory latencies (CXL/disaggregated, ~microseconds) at low
    // concurrency: quiescent gaps dominate the timeline, the regime
    // fast-forward exists for. Thread count is pinned so the row stays
    // latency-bound whatever TENWAYS_THREADS says.
    let remote_mem = MachineConfig::builder()
        .cores(2)
        .dram(4, 4000, 48)
        .build()
        .expect("remote-memory machine config");

    // A compute-leaning kernel, lock-heavy commercial kernels, and three
    // memory-latency-bound scans (default, slow, and far-memory DRAM) —
    // the last rows are where fast-forward must pay off.
    let configs: Vec<(String, Experiment)> = vec![
        (
            "lu/tso".into(),
            Experiment::new(WorkloadKind::LuLike).params(params),
        ),
        (
            "ocean/tso".into(),
            Experiment::new(WorkloadKind::OceanLike).params(params),
        ),
        (
            "oltp/sc".into(),
            Experiment::new(WorkloadKind::OltpLike)
                .params(params)
                .model(ConsistencyModel::Sc),
        ),
        (
            "apache/sc+if".into(),
            Experiment::new(WorkloadKind::ApacheLike)
                .params(params)
                .model(ConsistencyModel::Sc)
                .spec(SpecConfig::on_demand()),
        ),
        (
            "dss/tso".into(),
            Experiment::new(WorkloadKind::DssLike).params(params),
        ),
        // A contended queue lock under priced atomics: every core fights
        // over one MCS tail word, so the run is all short spin phases and
        // cross-core handoffs — the sync-heavy shape whose scheduler cost
        // profile none of the scan rows exercise.
        (
            "mcs/rmo/schweizer".into(),
            Experiment::new(WorkloadKind::McsLock)
                .params(params)
                .model(ConsistencyModel::Rmo)
                .atomics(AtomicsConfig::schweizer()),
        ),
        (
            "dss/tso/dram400".into(),
            Experiment::new(WorkloadKind::DssLike)
                .params(params)
                .machine(hi_dram),
        ),
        (
            "dss/tso/2t/remote4000".into(),
            Experiment::new(WorkloadKind::DssLike)
                .params(WorkloadParams {
                    threads: 2,
                    scale: cfg.scale(),
                    seed: cfg.seed(),
                })
                .machine(remote_mem),
        ),
    ];
    // The mixed active/idle headline row: 1 busy core + 15 idle/waiting.
    let mixed_label = "mixed/1busy15idle/remote4000";
    // Long busy phase so the steady state (1 busy, 15 parked) dominates
    // the ~4000-cycle startup where the idle cores' misses are in flight.
    let mixed_busy_ops: u64 = if fast_smoke { 4_000 } else { 150_000 };
    const MIXED_IDLE_CORES: usize = 15;

    println!(
        "{:<30}{:>12}{:>11}{:>9}{:>9}{:>10}",
        "config", "cycles", "naive s", "gap", "wake", "wake/gap"
    );
    let mut rows = Vec::new();
    let mut mismatches = 0usize;
    let mut bench = |label: &str, run: &mut dyn FnMut(SchedMode) -> Timed| {
        // Timing runs are serial on purpose: parallel siblings would steal
        // host cores and corrupt the wall-clock numbers.
        let naive = run(SchedMode::Naive);
        let gap = run(SchedMode::MachineGap);
        let wake = run(SchedMode::ComponentWake);
        for (mode_label, t) in MODES.iter().map(|(n, _)| *n).zip([&naive, &gap, &wake]) {
            if t.fingerprint != naive.fingerprint {
                eprintln!("[{ID}] SCHEDULER MISMATCH on {label}/{mode_label}: run records differ");
                mismatches += 1;
            }
        }
        let x = |a: &Timed, b: &Timed| {
            if b.wall_s > 0.0 {
                a.wall_s / b.wall_s
            } else {
                0.0
            }
        };
        println!(
            "{:<30}{:>12}{:>11.3}{:>8.1}x{:>8.1}x{:>9.1}x",
            label,
            naive.cycles,
            naive.wall_s,
            x(&naive, &gap),
            x(&naive, &wake),
            x(&gap, &wake),
        );
        rows.push(mode_row(label, "naive", &naive, None, None));
        rows.push(mode_row(label, "machine_gap", &gap, Some(&naive), None));
        rows.push(mode_row(
            label,
            "component_wake",
            &wake,
            Some(&naive),
            Some(&gap),
        ));
    };
    for (label, exp) in &configs {
        bench(label, &mut |sched| timed_exp(exp, sched));
    }
    bench(mixed_label, &mut |sched| {
        timed_mixed(mixed_busy_ops, MIXED_IDLE_CORES, sched)
    });

    // ---- Epoch-parallel scaling on a big mesh -------------------------
    //
    // 256 cores on a 2-D mesh is the machine the epoch scheduler is for:
    // enough scheduling units to shard, and a mesh topology whose minimum
    // hop latency gives a multi-cycle safe lookahead window. The scale is
    // pinned (not `cfg.scale()`) so the row measures the same ~40k-cycle
    // run everywhere.
    let big_mesh_label = "ocean/tso/256c/mesh";
    let big_mesh = MachineConfig::builder()
        .cores(256)
        .mesh(true)
        .build()
        .expect("big-mesh machine config");
    let big_exp = Experiment::new(WorkloadKind::OceanLike)
        .params(WorkloadParams {
            threads: 256,
            scale: 1,
            seed: cfg.seed(),
        })
        .machine(big_mesh);
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    const EPOCH_WORKERS: [usize; 4] = [1, 2, 4, 8];
    const GATE_WORKERS: usize = 4;

    let wake = timed_exp(&big_exp, SchedMode::ComponentWake);
    rows.push(mode_row(
        big_mesh_label,
        "component_wake",
        &wake,
        None,
        None,
    ));
    println!(
        "{:<30}{:>12}{:>11.3}  (component_wake baseline, host_threads={host_threads})",
        big_mesh_label, wake.cycles, wake.wall_s
    );
    for workers in EPOCH_WORKERS {
        let t = timed_exp(&big_exp, SchedMode::ParallelEpoch { workers });
        if t.fingerprint != wake.fingerprint {
            eprintln!(
                "[{ID}] SCHEDULER MISMATCH on {big_mesh_label}/parallel-epoch w{workers}: \
                 run records differ"
            );
            mismatches += 1;
        }
        let speedup = if t.wall_s > 0.0 {
            wake.wall_s / t.wall_s
        } else {
            0.0
        };
        println!(
            "{:<30}{:>12}{:>11.3}  (parallel-epoch w{workers}, {speedup:.2}x vs wake)",
            big_mesh_label, t.cycles, t.wall_s
        );
        let mut fields = vec![
            ("label", Json::from(big_mesh_label)),
            ("mode", Json::from("parallel-epoch")),
            ("workers", Json::from(workers)),
            ("cycles", Json::U64(t.cycles)),
            ("finished", Json::Bool(t.finished)),
            ("retired_ops", Json::U64(t.retired_ops)),
            ("wall_s", Json::F64(t.wall_s)),
            ("sim_cycles_per_sec", Json::F64(t.cycles as f64 / t.wall_s)),
            ("speedup_vs_component_wake", Json::F64(speedup)),
        ];
        if workers == GATE_WORKERS {
            // The speedup gate binds only where it is physically
            // meaningful: the shard workers need their own hardware
            // threads to run concurrently. On smaller hosts (CI
            // containers are often 1-2 vCPUs) the row still proves
            // record identity, and the gate passes vacuously — the
            // `gate_host_capable` field records which case this was.
            let capable = host_threads > GATE_WORKERS;
            let ok = !capable || speedup >= 1.0;
            if !ok {
                eprintln!(
                    "[{ID}] SPEEDUP GATE FAILED on {big_mesh_label}: parallel-epoch \
                     w{GATE_WORKERS} is {speedup:.2}x vs component_wake on a \
                     {host_threads}-thread host"
                );
                mismatches += 1;
            }
            fields.push(("host_threads", Json::from(host_threads)));
            fields.push(("gate_host_capable", Json::Bool(capable)));
            fields.push(("gate_speedup_ok", Json::Bool(ok)));
        }
        rows.push(Json::obj(fields));
    }

    let path = write_results_json(ID, TITLE, &cfg, rows);
    let text = std::fs::read_to_string(&path).expect("re-read results JSON");
    write_text_atomic(std::path::Path::new("BENCH_sim_throughput.json"), &text)
        .expect("write BENCH_sim_throughput.json");
    println!("[results] wrote BENCH_sim_throughput.json");

    if mismatches > 0 {
        eprintln!("[{ID}] {mismatches} run(s) diverged across schedulers");
        std::process::exit(1);
    }
}
