//! Simulator throughput — host-side cost of simulation, and the wall-clock
//! win from the event-horizon fast-forward run loop.
//!
//! Each configuration runs twice over the identical workload: once with
//! naive per-cycle stepping (the reference loop) and once with
//! fast-forward (the default). The binary *fails* (exit 1) if the two run
//! records are not byte-identical, so a smoke run doubles as the
//! fast-forward regression gate in CI. Rows report simulated cycles per
//! wall second and retired ops per wall second for both modes, plus the
//! speedup; results land in `results/sim_throughput.json` and are
//! mirrored to `BENCH_sim_throughput.json` at the current directory.

use std::time::Instant;

use tenways_bench::{banner, write_results_json, SuiteConfig};
use tenways_cpu::{ConsistencyModel, SpecConfig};
use tenways_sim::json::{Json, ToJson};
use tenways_sim::MachineConfig;
use tenways_waste::{Experiment, RunRecord};
use tenways_workloads::{WorkloadKind, WorkloadParams};

const ID: &str = "sim_throughput";
const TITLE: &str = "simulator throughput: fast-forward vs naive stepping";

struct Timed {
    record: RunRecord,
    wall_s: f64,
}

/// Runs the experiment `REPEATS` times and keeps the best wall time (the
/// runs are deterministic, so repeats only shave scheduler noise off
/// sub-100ms measurements).
const REPEATS: usize = 3;

fn timed_run(exp: &Experiment, fast_forward: bool) -> Timed {
    let exp = exp.clone().fast_forward(fast_forward);
    let mut best: Option<Timed> = None;
    for _ in 0..REPEATS {
        let t0 = Instant::now();
        let record = exp.run().unwrap_or_else(|e| panic!("run failed: {e}"));
        let wall_s = t0.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|b| wall_s < b.wall_s) {
            best = Some(Timed { record, wall_s });
        }
    }
    best.expect("at least one repeat")
}

fn mode_row(label: &str, mode: &str, t: &Timed, speedup: Option<f64>) -> Json {
    let cycles = t.record.summary.cycles;
    let ops = t.record.summary.retired_ops;
    let per_sec = |n: u64| {
        if t.wall_s > 0.0 {
            n as f64 / t.wall_s
        } else {
            0.0
        }
    };
    let mut fields = vec![
        ("label", Json::from(label)),
        ("mode", Json::from(mode)),
        ("cycles", Json::U64(cycles)),
        ("finished", Json::Bool(t.record.summary.finished)),
        ("retired_ops", Json::U64(ops)),
        ("wall_s", Json::F64(t.wall_s)),
        ("sim_cycles_per_sec", Json::F64(per_sec(cycles))),
        ("retired_ops_per_sec", Json::F64(per_sec(ops))),
    ];
    if let Some(s) = speedup {
        fields.push(("speedup_vs_naive", Json::F64(s)));
    }
    Json::obj(fields)
}

fn main() {
    let cfg = SuiteConfig::from_env();
    banner(ID, TITLE, &cfg);

    let params = WorkloadParams {
        threads: cfg.threads(),
        scale: cfg.scale(),
        seed: cfg.seed(),
    };
    let hi_dram = MachineConfig::builder()
        .cores(cfg.threads())
        .dram(4, 400, 48)
        .build()
        .expect("hi-dram machine config");
    // Far-memory latencies (CXL/disaggregated, ~microseconds) at low
    // concurrency: quiescent gaps dominate the timeline, the regime
    // fast-forward exists for. Thread count is pinned so the row stays
    // latency-bound whatever TENWAYS_THREADS says.
    let remote_mem = MachineConfig::builder()
        .cores(2)
        .dram(4, 4000, 48)
        .build()
        .expect("remote-memory machine config");

    // A compute-leaning kernel, lock-heavy commercial kernels, and three
    // memory-latency-bound scans (default, slow, and far-memory DRAM) —
    // the last rows are where fast-forward must pay off.
    let configs: Vec<(String, Experiment)> = vec![
        (
            "lu/tso".into(),
            Experiment::new(WorkloadKind::LuLike).params(params),
        ),
        (
            "ocean/tso".into(),
            Experiment::new(WorkloadKind::OceanLike).params(params),
        ),
        (
            "oltp/sc".into(),
            Experiment::new(WorkloadKind::OltpLike)
                .params(params)
                .model(ConsistencyModel::Sc),
        ),
        (
            "apache/sc+if".into(),
            Experiment::new(WorkloadKind::ApacheLike)
                .params(params)
                .model(ConsistencyModel::Sc)
                .spec(SpecConfig::on_demand()),
        ),
        (
            "dss/tso".into(),
            Experiment::new(WorkloadKind::DssLike).params(params),
        ),
        (
            "dss/tso/dram400".into(),
            Experiment::new(WorkloadKind::DssLike)
                .params(params)
                .machine(hi_dram),
        ),
        (
            "dss/tso/2t/remote4000".into(),
            Experiment::new(WorkloadKind::DssLike)
                .params(WorkloadParams {
                    threads: 2,
                    scale: cfg.scale(),
                    seed: cfg.seed(),
                })
                .machine(remote_mem),
        ),
    ];

    println!(
        "{:<18}{:>12}{:>12}{:>14}{:>14}{:>10}",
        "config", "cycles", "naive s", "naive cyc/s", "ff cyc/s", "speedup"
    );
    let mut rows = Vec::new();
    let mut mismatches = 0usize;
    for (label, exp) in &configs {
        // Timing runs are serial on purpose: parallel siblings would steal
        // host cores and corrupt the wall-clock numbers.
        let naive = timed_run(exp, false);
        let fast = timed_run(exp, true);
        if fast.record.to_json().to_string() != naive.record.to_json().to_string() {
            eprintln!("[{ID}] FAST-FORWARD MISMATCH on {label}: run records differ");
            mismatches += 1;
        }
        let speedup = if fast.wall_s > 0.0 {
            naive.wall_s / fast.wall_s
        } else {
            0.0
        };
        println!(
            "{:<18}{:>12}{:>12.3}{:>14.3e}{:>14.3e}{:>9.1}x",
            label,
            naive.record.summary.cycles,
            naive.wall_s,
            naive.record.summary.cycles as f64 / naive.wall_s.max(1e-9),
            fast.record.summary.cycles as f64 / fast.wall_s.max(1e-9),
            speedup
        );
        rows.push(mode_row(label, "naive", &naive, None));
        rows.push(mode_row(label, "fast_forward", &fast, Some(speedup)));
    }

    let path = write_results_json(ID, TITLE, &cfg, rows);
    let text = std::fs::read_to_string(&path).expect("re-read results JSON");
    std::fs::write("BENCH_sim_throughput.json", text).expect("write BENCH_sim_throughput.json");
    println!("[results] wrote BENCH_sim_throughput.json");

    if mismatches > 0 {
        eprintln!("[{ID}] {mismatches} configuration(s) diverged under fast-forward");
        std::process::exit(1);
    }
}
