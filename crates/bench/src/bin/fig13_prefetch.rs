//! Figure 13 (extension) — next-line prefetcher ablation: sequential
//! scanners (dss, radix's local phase) should gain; lock/sharing-heavy
//! kernels can lose to useless or harmful prefetches (they steal MSHRs and
//! yank blocks from owners).

use tenways_bench::{banner, record_row, run_parallel, write_results_json, SuiteConfig};
use tenways_coherence::ProtocolConfig;
use tenways_cpu::ConsistencyModel;
use tenways_sim::json::Json;
use tenways_waste::Experiment;
use tenways_workloads::WorkloadKind;

fn main() {
    let cfg = SuiteConfig::from_env();
    banner("Figure 13", "next-line prefetcher ablation (TSO)", &cfg);

    let mut jobs = Vec::new();
    for kind in WorkloadKind::all() {
        for prefetch in [false, true] {
            jobs.push((
                format!("{}/{}", kind.name(), if prefetch { "pf" } else { "base" }),
                Experiment::new(kind)
                    .params(cfg.params())
                    .model(ConsistencyModel::Tso)
                    .protocol(ProtocolConfig {
                        grant_exclusive: true,
                        prefetch_next_line: prefetch,
                    }),
            ));
        }
    }
    let results = run_parallel(jobs).require_all(
        "fig13_prefetch",
        "next-line prefetcher ablation (TSO)",
        &cfg,
    );
    let json_rows = results
        .iter()
        .map(|(label, r)| {
            let mut row = record_row(label, r);
            if let Json::Obj(pairs) = &mut row {
                pairs.push((
                    "prefetches".to_string(),
                    Json::U64(r.stats.get("l1.prefetches")),
                ));
                pairs.push((
                    "prefetch_useful".to_string(),
                    Json::U64(r.stats.get("l1.prefetch_useful")),
                ));
            }
            row
        })
        .collect();
    write_results_json(
        "fig13_prefetch",
        "next-line prefetcher ablation (TSO)",
        &cfg,
        json_rows,
    );

    println!(
        "{:<10}{:>12}{:>12}{:>10}{:>12}{:>12}{:>12}",
        "workload", "base cyc", "pf cyc", "speedup", "prefetches", "useful", "useful %"
    );
    for (w, kind) in WorkloadKind::all().into_iter().enumerate() {
        let base = &results[w * 2].1;
        let pf = &results[w * 2 + 1].1;
        let issued = pf.stats.get("l1.prefetches");
        let useful = pf.stats.get("l1.prefetch_useful");
        println!(
            "{:<10}{:>12}{:>12}{:>10.3}{:>12}{:>12}{:>11.1}%",
            kind.name(),
            base.summary.cycles,
            pf.summary.cycles,
            base.summary.cycles as f64 / pf.summary.cycles.max(1) as f64,
            issued,
            useful,
            100.0 * useful as f64 / issued.max(1) as f64,
        );
    }
    println!(
        "\n(sequential scanners gain; sharing-heavy kernels can lose — prefetches \
              compete for MSHRs and can pull blocks away from active writers)"
    );
}
