//! Figure 11 (extension) — interconnect ablation: crossbar vs 2-D mesh.
//! Distance-dependent latency stretches coherence round trips, which both
//! slows baselines and widens the violation-exposure window of speculative
//! epochs.

use tenways_bench::{banner, record_row, run_parallel, write_results_json, SuiteConfig};
use tenways_cpu::{ConsistencyModel, SpecConfig};
use tenways_sim::MachineConfig;
use tenways_waste::Experiment;
use tenways_workloads::WorkloadKind;

fn main() {
    let cfg = SuiteConfig::from_env();
    banner(
        "Figure 11",
        "interconnect ablation: crossbar vs 2-D mesh (TSO)",
        &cfg,
    );

    let mut jobs = Vec::new();
    for kind in WorkloadKind::all() {
        for mesh in [false, true] {
            for spec in [SpecConfig::disabled(), SpecConfig::on_demand()] {
                let machine = MachineConfig::builder().mesh(mesh).build().expect("valid");
                jobs.push((
                    format!(
                        "{}/{}/{}",
                        kind.name(),
                        if mesh { "mesh" } else { "xbar" },
                        if spec.mode == tenways_cpu::SpecMode::Disabled {
                            "base"
                        } else {
                            "spec"
                        }
                    ),
                    Experiment::new(kind)
                        .params(cfg.params())
                        .machine(machine)
                        .model(ConsistencyModel::Tso)
                        .spec(spec),
                ));
            }
        }
    }
    let results = run_parallel(jobs).require_all(
        "fig11_noc_topology",
        "interconnect ablation: crossbar vs 2-D mesh (TSO)",
        &cfg,
    );
    let json_rows = results
        .iter()
        .map(|(label, r)| record_row(label, r))
        .collect();
    write_results_json(
        "fig11_noc_topology",
        "interconnect ablation: crossbar vs 2-D mesh (TSO)",
        &cfg,
        json_rows,
    );

    println!(
        "{:<10}{:>12}{:>12}{:>12}{:>12}{:>14}{:>14}",
        "workload", "xbar", "xbar+IF", "mesh", "mesh+IF", "mesh/xbar", "IF win (mesh)"
    );
    for (w, kind) in WorkloadKind::all().into_iter().enumerate() {
        let x_base = results[w * 4].1.summary.cycles;
        let x_spec = results[w * 4 + 1].1.summary.cycles;
        let m_base = results[w * 4 + 2].1.summary.cycles;
        let m_spec = results[w * 4 + 3].1.summary.cycles;
        println!(
            "{:<10}{:>12}{:>12}{:>12}{:>12}{:>14.3}{:>14.3}",
            kind.name(),
            x_base,
            x_spec,
            m_base,
            m_spec,
            m_base as f64 / x_base.max(1) as f64,
            m_base as f64 / m_spec.max(1) as f64,
        );
    }
    println!(
        "\n(mesh distance stretches coherence round trips; speculation's value \
              should hold or grow when ordering stalls get longer)"
    );
}
