//! Table 2 — workload characterization: op mix, fence/atomic density, L1
//! miss rate, sharing ratio.

use tenways_bench::{banner, record_row, run_parallel, write_results_json, SuiteConfig};
use tenways_waste::Experiment;
use tenways_workloads::WorkloadKind;

fn main() {
    let cfg = SuiteConfig::from_env();
    banner("Table 2", "workload characterization (baseline TSO)", &cfg);

    let jobs = WorkloadKind::all()
        .into_iter()
        .map(|k| {
            (
                k.name().to_string(),
                Experiment::new(k).params(cfg.params()),
            )
        })
        .collect();
    let results = run_parallel(jobs).require_all(
        "table2_workloads",
        "workload characterization (baseline TSO)",
        &cfg,
    );
    let json_rows = results
        .iter()
        .map(|(label, r)| record_row(label, r))
        .collect();
    write_results_json(
        "table2_workloads",
        "workload characterization (baseline TSO)",
        &cfg,
        json_rows,
    );

    println!(
        "{:<10}{:>12}{:>12}{:>14}{:>14}{:>12}{:>12}{:>14}",
        "workload",
        "ops",
        "cycles",
        "fences/kop",
        "atomics/kop",
        "ld miss%",
        "st miss%",
        "coh fill%"
    );
    for (name, r) in results {
        let s = &r.stats;
        let ops = r.summary.retired_ops.max(1);
        let reads = s.get("l1.read_reqs").max(1);
        let writes = s.get("l1.write_reqs").max(1);
        let misses = s.get("l1.misses") + s.get("l1.upgrades");
        let coh = s.get("l1.fills_coherence");
        let fills = (s.get("l1.fills_l2")
            + s.get("l1.fills_cold")
            + s.get("l1.fills_capacity")
            + s.get("l1.fills_coherence"))
        .max(1);
        let fences_per_kop = 1_000.0 * s.get("ops.fence") as f64 / ops as f64;
        let rmws_per_kop = 1_000.0 * s.get("ops.rmw") as f64 / ops as f64;
        println!(
            "{:<10}{:>12}{:>12}{:>14.2}{:>14.2}{:>11.2}%{:>11.2}%{:>13.1}%",
            name,
            ops,
            r.summary.cycles,
            fences_per_kop,
            rmws_per_kop,
            100.0 * misses.min(reads) as f64 / reads as f64,
            100.0 * s.get("l1.upgrades") as f64 / writes as f64,
            100.0 * coh as f64 / fills as f64,
        );
    }
}
