//! Table 1 — the simulated system configuration.

use tenways_bench::{write_results_json, SuiteConfig, SweepJob, SweepRunner};
use tenways_sim::json::Json;
use tenways_sim::MachineConfig;

fn main() {
    let suite = SuiteConfig::from_env();
    let cfg = MachineConfig {
        cores: suite.threads(),
        ..MachineConfig::default()
    };
    let rows: Vec<(&str, String)> = vec![
        ("cores", cfg.cores.to_string()),
        ("fetch/retire width", format!("{} ops/cycle", cfg.width)),
        ("ROB", format!("{} entries", cfg.rob_entries)),
        ("store buffer", format!("{} entries", cfg.sb_entries)),
        ("MSHRs", format!("{} per core", cfg.mshrs)),
        ("block size", format!("{} B", cfg.block_bytes)),
        (
            "L1 (private)",
            format!(
                "{} KiB, {}-way, {}-cycle hit",
                cfg.l1_bytes() / 1024,
                cfg.l1_ways,
                cfg.l1_hit_latency
            ),
        ),
        (
            "directory / L2",
            format!(
                "{} banks, full-map, {}-cycle access, 2 MiB slice per bank",
                cfg.dir_banks, cfg.dir_latency
            ),
        ),
        (
            "DRAM",
            format!(
                "{} banks/channel, {}-cycle access, {}-cycle bank occupancy",
                cfg.dram_banks, cfg.dram_latency, cfg.dram_occupancy
            ),
        ),
        (
            "interconnect",
            format!(
                "crossbar, {}-cycle one-way, {}/{} inject/accept msgs per cycle",
                cfg.noc_latency, cfg.noc_inject_bw, cfg.noc_accept_bw
            ),
        ),
        (
            "coherence",
            "blocking full-map directory MESI (MSI mode available)".to_string(),
        ),
        (
            "speculation state",
            "2 bits/L1 line + 1 register checkpoint (~1 KB per core)".to_string(),
        ),
    ];
    // Even this static table rides the fail-soft runner so every emitter
    // in the suite shares one code path (and one failure story).
    let jobs: Vec<SweepJob<String>> = rows
        .into_iter()
        .map(|(k, v)| SweepJob::new(k, move || Ok(v.clone())))
        .collect();
    let row_json = |label: &str, v: &String| {
        Json::obj([
            ("label", Json::from(label)),
            ("value", Json::from(v.as_str())),
        ])
    };
    let results = SweepRunner::new().run(jobs).require_all_with(
        "table1_config",
        "simulated system configuration",
        &suite,
        row_json,
    );

    println!("Table 1: simulated system configuration");
    println!("----------------------------------------");
    for (k, v) in &results {
        println!("{k:<22} {v}");
    }
    let json_rows = results.iter().map(|(k, v)| row_json(k, v)).collect();
    write_results_json(
        "table1_config",
        "simulated system configuration",
        &suite,
        json_rows,
    );
}
