//! Figure 7 — violation sensitivity: rollback rate and runtime as the
//! sharing-conflict probability sweeps from 0 to 0.5; shows where
//! speculation stops paying.

use tenways_bench::{banner, record_row, run_parallel, write_results_json, SuiteConfig};
use tenways_cpu::{ConsistencyModel, SpecConfig};
use tenways_waste::Experiment;
use tenways_workloads::ContendedParams;

fn main() {
    let cfg = SuiteConfig::from_env();
    banner(
        "Figure 7",
        "conflict-probability sweep (contended kernel, TSO)",
        &cfg,
    );

    let probs = [0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5];
    let mk = |p: f64, spec: SpecConfig| {
        Experiment::contended(ContendedParams {
            threads: cfg.threads(),
            ops_per_thread: 200 * cfg.scale(),
            conflict_p: p,
            hot_blocks: 4,
            fence_period: 8,
            seed: cfg.seed(),
        })
        .model(ConsistencyModel::Tso)
        .spec(spec)
    };
    let mut jobs = Vec::new();
    for &p in &probs {
        jobs.push((format!("base p={p}"), mk(p, SpecConfig::disabled())));
        jobs.push((format!("spec p={p}"), mk(p, SpecConfig::on_demand())));
    }
    let results = run_parallel(jobs).require_all(
        "fig7_conflict_sweep",
        "conflict-probability sweep (contended kernel, TSO)",
        &cfg,
    );
    let json_rows = results
        .iter()
        .map(|(label, r)| record_row(label, r))
        .collect();
    write_results_json(
        "fig7_conflict_sweep",
        "conflict-probability sweep (contended kernel, TSO)",
        &cfg,
        json_rows,
    );

    println!(
        "{:>8}{:>12}{:>12}{:>10}{:>12}{:>12}{:>14}",
        "p", "base cyc", "spec cyc", "speedup", "epochs", "rollbacks", "rollback %"
    );
    for (i, &p) in probs.iter().enumerate() {
        let base = &results[i * 2].1;
        let spec = &results[i * 2 + 1].1;
        let epochs = spec.stats.get("spec.epochs").max(1);
        let rollbacks = spec.stats.get("spec.rollbacks");
        println!(
            "{:>8.2}{:>12}{:>12}{:>10.3}{:>12}{:>12}{:>13.1}%",
            p,
            base.summary.cycles,
            spec.summary.cycles,
            base.summary.cycles as f64 / spec.summary.cycles.max(1) as f64,
            epochs,
            rollbacks,
            100.0 * rollbacks as f64 / epochs as f64,
        );
    }
    println!(
        "\n(speedup should exceed 1 at low p and decay — possibly below 1 — as \
              conflicts make epochs roll back)"
    );
}
