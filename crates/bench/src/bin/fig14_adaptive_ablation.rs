//! Figure 14 (extension) — ablation of the forward-progress mechanisms the
//! implementation added on top of the basic speculation scheme: the
//! per-epoch op cap and the adaptive (rate-throttled) backoff. Without
//! them, conflict-heavy workloads thrash; with them, speculation "does no
//! harm".

use tenways_bench::{banner, record_row, run_parallel, write_results_json, SuiteConfig};
use tenways_cpu::{ConsistencyModel, SpecConfig};
use tenways_waste::Experiment;
use tenways_workloads::{ContendedParams, WorkloadKind};

fn main() {
    let cfg = SuiteConfig::from_env();
    banner(
        "Figure 14",
        "ablation: epoch cap + adaptive backoff (SC + on-demand)",
        &cfg,
    );

    let variants: Vec<(&str, SpecConfig)> = vec![
        ("baseline", SpecConfig::disabled()),
        (
            "naive",
            SpecConfig::on_demand()
                .without_adaptive_backoff()
                .with_max_epoch_ops(1 << 20),
        ),
        (
            "cap-only",
            SpecConfig::on_demand().without_adaptive_backoff(),
        ),
        ("full", SpecConfig::on_demand()),
    ];

    // All three parts run as one fail-soft batch (labels carry the part
    // prefix), so a failure in any part still leaves every completed row
    // in the results JSON.
    let mut jobs = Vec::new();
    // Part A: the hostile kernel (ocean's write-shared stencil).
    for (name, spec) in &variants {
        jobs.push((
            format!("ocean/{name}"),
            Experiment::new(WorkloadKind::OceanLike)
                .params(cfg.params())
                .model(ConsistencyModel::Sc)
                .spec(*spec),
        ));
    }
    // Part B: the friendly kernel (dss, no sharing): the mechanisms must
    // not cost anything where speculation wins cleanly.
    for (name, spec) in &variants {
        jobs.push((
            format!("dss/{name}"),
            Experiment::new(WorkloadKind::DssLike)
                .params(cfg.params())
                .model(ConsistencyModel::Sc)
                .spec(*spec),
        ));
    }
    // Part C: the contended sweep at a hostile p.
    for (name, spec) in &variants {
        jobs.push((
            format!("contended/{name}"),
            Experiment::contended(ContendedParams {
                threads: cfg.threads(),
                ops_per_thread: 200 * cfg.scale(),
                conflict_p: 0.2,
                hot_blocks: 4,
                fence_period: 8,
                seed: cfg.seed(),
            })
            .model(ConsistencyModel::Tso)
            .spec(*spec),
        ));
    }

    let results = run_parallel(jobs).require_all(
        "fig14_adaptive_ablation",
        "ablation: epoch cap + adaptive backoff (SC + on-demand)",
        &cfg,
    );
    let n = variants.len();

    println!("ocean (write-shared stencil, the hostile case):");
    print_rows(&results[..n]);
    println!("\ndss (no sharing, the friendly case):");
    print_rows(&results[n..2 * n]);
    println!("\ncontended p=0.2 (TSO):");
    print_rows(&results[2 * n..]);

    let json_rows = results.iter().map(|(l, r)| record_row(l, r)).collect();
    write_results_json(
        "fig14_adaptive_ablation",
        "ablation: epoch cap + adaptive backoff (SC + on-demand)",
        &cfg,
        json_rows,
    );
    println!(
        "\n(naive = unbounded epochs, no adaptation: thrashes under conflict; \
              full = shipping configuration)"
    );
}

fn print_rows(results: &[(String, tenways_waste::RunRecord)]) {
    println!(
        "  {:<10}{:>12}{:>10}{:>12}{:>14}{:>16}",
        "variant", "cycles", "epochs", "rollbacks", "wasted cyc", "vs baseline"
    );
    let base = results[0].1.summary.cycles as f64;
    for (name, r) in results {
        let name = name.rsplit('/').next().unwrap_or(name);
        println!(
            "  {:<10}{:>12}{:>10}{:>12}{:>14}{:>16.3}",
            name,
            r.summary.cycles,
            r.stats.get("spec.epochs"),
            r.stats.get("spec.rollbacks"),
            r.stats.get("spec.wasted_cycles"),
            r.summary.cycles as f64 / base,
        );
    }
}
