//! Figure 6 — dedicated speculation storage vs supported depth:
//! block-granularity (fixed ~1 KB) against per-store CAM designs (linear),
//! plus the measured performance effect of capping the per-store design.

use tenways_bench::{banner, record_row, run_parallel, write_results_json, SuiteConfig};
use tenways_core::storage;
use tenways_cpu::{ConsistencyModel, SpecConfig};
use tenways_waste::Experiment;
use tenways_workloads::WorkloadKind;

fn main() {
    let cfg = SuiteConfig::from_env();
    banner(
        "Figure 6",
        "speculation storage scaling + per-store cap ablation",
        &cfg,
    );

    println!(
        "{:>8}{:>24}{:>20}",
        "depth", "block-granularity (B)", "per-store (B)"
    );
    for (depth, block_b, per_store_b) in storage::canonical_comparison(512) {
        println!("{depth:>8}{block_b:>24}{per_store_b:>20}");
    }

    println!("\nperformance with capped per-store CAMs (SC, oltp + apache):");
    let caps = [2u64, 4, 8, 16, 32];
    let kinds = [WorkloadKind::OltpLike, WorkloadKind::ApacheLike];
    let mut jobs = Vec::new();
    for kind in kinds {
        jobs.push((
            format!("{}/unlimited", kind.name()),
            Experiment::new(kind)
                .params(cfg.params())
                .model(ConsistencyModel::Sc)
                .spec(SpecConfig::on_demand()),
        ));
        for cap in caps {
            jobs.push((
                format!("{}/cap{}", kind.name(), cap),
                Experiment::new(kind)
                    .params(cfg.params())
                    .model(ConsistencyModel::Sc)
                    .spec(SpecConfig::per_store(cap)),
            ));
        }
    }
    let results = run_parallel(jobs).require_all(
        "fig6_storage",
        "speculation storage scaling + per-store cap ablation",
        &cfg,
    );
    let json_rows = results
        .iter()
        .map(|(label, r)| record_row(label, r))
        .collect();
    write_results_json(
        "fig6_storage",
        "speculation storage scaling + per-store cap ablation",
        &cfg,
        json_rows,
    );
    let per_kind = 1 + caps.len();
    println!(
        "{:<10}{:>12}{}",
        "workload",
        "unlimited",
        caps.iter()
            .map(|c| format!("{:>12}", format!("cap={c}")))
            .collect::<String>()
    );
    for (k, kind) in kinds.into_iter().enumerate() {
        let base = results[k * per_kind].1.summary.cycles as f64;
        print!("{:<10}{:>12.3}", kind.name(), 1.0);
        for c in 0..caps.len() {
            let cycles = results[k * per_kind + 1 + c].1.summary.cycles as f64;
            print!("{:>12.3}", cycles / base);
        }
        println!();
    }
    println!(
        "\n(runtime normalized to the unlimited block-granularity design; \
              small CAMs forfeit speculation and approach the stalling baseline)"
    );
}
