//! Figure 3 — the headline result: fence speculation makes strong models
//! performance-transparent. For each model, baseline vs speculative
//! runtime normalized to the RMO baseline; speculative SC should approach
//! RMO.

use tenways_bench::{banner, record_row, run_parallel, write_results_json, SuiteConfig};
use tenways_cpu::{ConsistencyModel, SpecConfig};
use tenways_waste::{report, Experiment};
use tenways_workloads::WorkloadKind;

fn main() {
    let cfg = SuiteConfig::from_env();
    banner(
        "Figure 3",
        "fence speculation vs baselines (runtime normalized to RMO baseline)",
        &cfg,
    );

    // Series: SC, SC+IF, TSO, TSO+IF, RMO+IF, RMO (normalization base last).
    let series: Vec<(&str, ConsistencyModel, SpecConfig)> = vec![
        ("SC", ConsistencyModel::Sc, SpecConfig::disabled()),
        ("SC+IF", ConsistencyModel::Sc, SpecConfig::on_demand()),
        ("TSO", ConsistencyModel::Tso, SpecConfig::disabled()),
        ("TSO+IF", ConsistencyModel::Tso, SpecConfig::on_demand()),
        ("RMO+IF", ConsistencyModel::Rmo, SpecConfig::on_demand()),
        ("RMO", ConsistencyModel::Rmo, SpecConfig::disabled()),
    ];

    let mut jobs = Vec::new();
    for kind in WorkloadKind::all() {
        for (name, model, spec) in &series {
            jobs.push((
                format!("{}/{}", kind.name(), name),
                Experiment::new(kind)
                    .params(cfg.params())
                    .model(*model)
                    .spec(*spec),
            ));
        }
    }
    let results = run_parallel(jobs).require_all(
        "fig3_invisifence_speedup",
        "fence speculation vs baselines",
        &cfg,
    );
    let json_rows = results
        .iter()
        .map(|(label, r)| record_row(label, r))
        .collect();
    write_results_json(
        "fig3_invisifence_speedup",
        "fence speculation vs baselines",
        &cfg,
        json_rows,
    );

    let names: Vec<&str> = series.iter().map(|(n, _, _)| *n).collect();
    let mut rows = Vec::new();
    for (w, kind) in WorkloadKind::all().into_iter().enumerate() {
        let cycles: Vec<u64> = (0..series.len())
            .map(|sidx| results[w * series.len() + sidx].1.summary.cycles)
            .collect();
        rows.push((kind.name().to_string(), cycles));
    }
    print!("{}", report::normalized_runtime_table(&names, &rows));

    let gmean = |idx: usize| {
        let logs: f64 = rows
            .iter()
            .map(|(_, c)| (c[idx] as f64 / *c.last().unwrap() as f64).ln())
            .sum();
        (logs / rows.len() as f64).exp()
    };
    println!("\ngeometric means vs RMO baseline:");
    for (i, name) in names.iter().enumerate() {
        println!("  {name:<8} {:.3}x", gmean(i));
    }
    println!(
        "\nheadline: SC+IF at {:.3}x vs SC baseline at {:.3}x — speculation closes \
         {:.0}% of the SC-RMO gap.",
        gmean(1),
        gmean(0),
        100.0 * (gmean(0) - gmean(1)) / (gmean(0) - 1.0).max(1e-9)
    );
}
