//! Figure 8 — core-count scaling (1–16): baseline SC vs speculative SC vs
//! RMO on a scientific and a commercial workload.

use tenways_bench::{banner, record_row, run_parallel, write_results_json, SuiteConfig};
use tenways_cpu::{ConsistencyModel, SpecConfig};
use tenways_waste::Experiment;
use tenways_workloads::{WorkloadKind, WorkloadParams};

fn main() {
    let cfg = SuiteConfig::from_env();
    banner("Figure 8", "core-count scaling: SC vs SC+IF vs RMO", &cfg);

    let counts = [1usize, 2, 4, 8, 16];
    let kinds = [WorkloadKind::OceanLike, WorkloadKind::ApacheLike];
    let series: Vec<(&str, ConsistencyModel, SpecConfig)> = vec![
        ("SC", ConsistencyModel::Sc, SpecConfig::disabled()),
        ("SC+IF", ConsistencyModel::Sc, SpecConfig::on_demand()),
        ("RMO", ConsistencyModel::Rmo, SpecConfig::disabled()),
    ];

    let mut jobs = Vec::new();
    for kind in kinds {
        for &n in &counts {
            for (name, model, spec) in &series {
                jobs.push((
                    format!("{}/{}c/{}", kind.name(), n, name),
                    Experiment::new(kind)
                        .params(WorkloadParams {
                            threads: n,
                            scale: cfg.scale(),
                            seed: cfg.seed(),
                        })
                        .model(*model)
                        .spec(*spec),
                ));
            }
        }
    }
    let results = run_parallel(jobs).require_all(
        "fig8_scaling",
        "core-count scaling: SC vs SC+IF vs RMO",
        &cfg,
    );
    let json_rows = results
        .iter()
        .map(|(label, r)| record_row(label, r))
        .collect();
    write_results_json(
        "fig8_scaling",
        "core-count scaling: SC vs SC+IF vs RMO",
        &cfg,
        json_rows,
    );

    let mut idx = 0;
    for kind in kinds {
        println!("\n{}:", kind.name());
        println!(
            "{:>8}{:>12}{:>12}{:>12}{:>14}{:>14}",
            "cores", "SC", "SC+IF", "RMO", "SC/RMO", "SC+IF/RMO"
        );
        for &n in &counts {
            let sc = results[idx].1.summary.cycles;
            let scif = results[idx + 1].1.summary.cycles;
            let rmo = results[idx + 2].1.summary.cycles;
            idx += 3;
            println!(
                "{:>8}{:>12}{:>12}{:>12}{:>14.3}{:>14.3}",
                n,
                sc,
                scif,
                rmo,
                sc as f64 / rmo.max(1) as f64,
                scif as f64 / rmo.max(1) as f64,
            );
        }
    }
    println!("\n(the SC/RMO gap persists or grows with cores; SC+IF should track RMO)");
}
