//! Figure 4 — on-demand vs continuous speculation: runtime, commit and
//! rollback behaviour under TSO.

use tenways_bench::{banner, record_row, run_parallel, write_results_json, SuiteConfig};
use tenways_cpu::{ConsistencyModel, SpecConfig};
use tenways_sim::json::Json;
use tenways_waste::Experiment;
use tenways_workloads::WorkloadKind;

fn main() {
    let cfg = SuiteConfig::from_env();
    banner(
        "Figure 4",
        "on-demand vs continuous speculation (TSO)",
        &cfg,
    );

    let series: Vec<(&str, SpecConfig)> = vec![
        ("baseline", SpecConfig::disabled()),
        ("on-demand", SpecConfig::on_demand()),
        ("continuous", SpecConfig::continuous()),
    ];
    let mut jobs = Vec::new();
    for kind in WorkloadKind::all() {
        for (name, spec) in &series {
            jobs.push((
                format!("{}/{}", kind.name(), name),
                Experiment::new(kind)
                    .params(cfg.params())
                    .model(ConsistencyModel::Tso)
                    .spec(*spec),
            ));
        }
    }
    let results = run_parallel(jobs).require_all(
        "fig4_modes",
        "on-demand vs continuous speculation (TSO)",
        &cfg,
    );
    let json_rows = results
        .iter()
        .map(|(label, r)| {
            let mut row = record_row(label, r);
            if let Json::Obj(pairs) = &mut row {
                pairs.push((
                    "commits".to_string(),
                    Json::U64(r.stats.get("spec.commits")),
                ));
                pairs.push((
                    "wasted_cycles".to_string(),
                    Json::U64(r.stats.get("spec.wasted_cycles")),
                ));
            }
            row
        })
        .collect();
    write_results_json(
        "fig4_modes",
        "on-demand vs continuous speculation (TSO)",
        &cfg,
        json_rows,
    );

    println!(
        "{:<10}{:>12}{:>12}{:>12}{:>10}{:>10}{:>12}{:>10}{:>10}{:>12}",
        "workload",
        "base cyc",
        "od cyc",
        "cont cyc",
        "od commt",
        "od rlbk",
        "od waste",
        "ct commt",
        "ct rlbk",
        "ct waste"
    );
    for (w, kind) in WorkloadKind::all().into_iter().enumerate() {
        let base = &results[w * 3].1;
        let od = &results[w * 3 + 1].1;
        let ct = &results[w * 3 + 2].1;
        println!(
            "{:<10}{:>12}{:>12}{:>12}{:>10}{:>10}{:>12}{:>10}{:>10}{:>12}",
            kind.name(),
            base.summary.cycles,
            od.summary.cycles,
            ct.summary.cycles,
            od.stats.get("spec.commits"),
            od.stats.get("spec.rollbacks"),
            od.stats.get("spec.wasted_cycles"),
            ct.stats.get("spec.commits"),
            ct.stats.get("spec.rollbacks"),
            ct.stats.get("spec.wasted_cycles"),
        );
    }
    println!("\n(continuous mode holds epochs open longer: fewer commits, more exposure)");
}
