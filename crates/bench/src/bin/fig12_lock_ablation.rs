//! Figure 12 (extension) — lock-algorithm ablation: TTAS vs ticket vs the
//! queue locks (MCS, CLH), under the Schweizer-calibrated atomics cost
//! model.
//!
//! Expected shape: the *unfair* TTAS lock wins raw throughput because a
//! releasing core can immediately re-acquire from its still-resident
//! M-state line (lock capture), while the ticket lock forces a FIFO
//! cross-core handoff — paying a coherence round trip per critical
//! section — in exchange for starvation freedom. The queue locks pay an
//! RMW on the tail per acquire but spin *locally* on a private node, so
//! their invalidation traffic stays flat as threads grow. The waste
//! columns split the price three ways: spin cycles burnt on lock words,
//! coherence cycles prying data lines loose, and fence cycles from the
//! priced full-fence drains.

use tenways_bench::{banner, write_results_json, SuiteConfig, SweepJob, SweepRunner};
use tenways_cpu::{ConsistencyModel, Machine, MachineSpec};
use tenways_sim::json::Json;
use tenways_sim::{AtomicsConfig, MachineConfig};
use tenways_waste::{WasteBreakdown, WasteCategory};
use tenways_workloads::{lock_bench_programs, LockBenchParams, LockKind};

/// The measurements one lock-bench run contributes to the figure.
struct LockRow {
    cycles: u64,
    finished: bool,
    retired_ops: u64,
    throughput: f64,
    invalidations: u64,
    fairness: f64,
    /// Fraction of cycles burnt on lock words (spins and their misses).
    spin_frac: f64,
    /// Fraction of cycles waiting on data coherence transfers.
    coherence_frac: f64,
    /// Fraction of cycles in fence stalls (ordering + priced execution).
    fence_frac: f64,
}

fn lock_row_json(label: &str, r: &LockRow) -> Json {
    Json::obj([
        ("label", Json::from(label)),
        ("cycles", Json::U64(r.cycles)),
        ("finished", Json::Bool(r.finished)),
        ("retired_ops", Json::U64(r.retired_ops)),
        ("throughput", Json::F64(r.throughput)),
        ("invalidations", Json::U64(r.invalidations)),
        ("fairness", Json::F64(r.fairness)),
        ("spin_frac", Json::F64(r.spin_frac)),
        ("coherence_frac", Json::F64(r.coherence_frac)),
        ("fence_frac", Json::F64(r.fence_frac)),
    ])
}

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

fn main() {
    let cfg = SuiteConfig::from_env();
    banner(
        "Figure 12",
        "lock ablation: TTAS vs ticket vs MCS vs CLH (priced atomics)",
        &cfg,
    );

    let scale = cfg.scale();
    let mut jobs: Vec<SweepJob<LockRow>> = Vec::new();
    for model in ConsistencyModel::all() {
        for threads in THREAD_COUNTS {
            for kind in LockKind::all() {
                let label = format!("{}/{}t/{}", model.label(), threads, kind.name());
                jobs.push(SweepJob::new(label, move || {
                    let params = LockBenchParams {
                        threads,
                        rounds: 20 * scale,
                        cs_compute: 8,
                        think_compute: 4,
                        kind,
                    };
                    let (programs, layout) = lock_bench_programs(&params);
                    let machine_cfg = MachineConfig::builder()
                        .cores(threads)
                        .build()
                        .map_err(|e| e.to_string())?;
                    let spec = MachineSpec::baseline(model)
                        .with_machine(machine_cfg)
                        .with_atomics(AtomicsConfig::schweizer());
                    let mut m = Machine::new(&spec, programs);
                    let s = m.run(100_000_000);
                    if !s.finished {
                        return Err(format!("{kind:?} hung"));
                    }
                    let expect = threads as u64 * params.rounds;
                    let got = m.mem().read(layout.counter);
                    if got != expect {
                        return Err(format!(
                            "mutual exclusion broken: counter {got}, expected {expect}"
                        ));
                    }
                    let stats = m.merged_stats();
                    let breakdown = WasteBreakdown::from_stats(&stats);
                    // Fairness: earliest finisher / latest finisher (1.0 =
                    // all cores finish together; small = some core
                    // starved).
                    let done: Vec<u64> = s.core_done_at.iter().map(|d| d.unwrap_or(0)).collect();
                    let min = *done.iter().min().unwrap_or(&0) as f64;
                    let max = *done.iter().max().unwrap_or(&1) as f64;
                    Ok(LockRow {
                        cycles: s.cycles,
                        finished: s.finished,
                        retired_ops: s.retired_ops,
                        throughput: s.throughput(),
                        invalidations: stats.get("l1.invalidations") + stats.get("l1.recalls"),
                        fairness: if max == 0.0 { 1.0 } else { min / max },
                        spin_frac: breakdown.fraction(WasteCategory::LockSpin),
                        coherence_frac: breakdown.fraction(WasteCategory::CoherenceMiss),
                        fence_frac: breakdown.fraction(WasteCategory::FenceStall),
                    })
                }));
            }
        }
    }

    let results = SweepRunner::new().run(jobs).require_all_with(
        "fig12_lock_ablation",
        "lock ablation: TTAS vs ticket vs MCS vs CLH (priced atomics)",
        &cfg,
        lock_row_json,
    );

    println!(
        "{:>8}{:>8}{:>8}{:>12}{:>10}{:>10}{:>8}{:>8}{:>8}",
        "model", "threads", "lock", "cycles", "invals", "fair", "spin%", "coh%", "fence%"
    );
    for (label, r) in &results {
        let mut parts = label.split('/');
        let (model, threads, kind) = (
            parts.next().unwrap_or("?"),
            parts.next().unwrap_or("?"),
            parts.next().unwrap_or("?"),
        );
        println!(
            "{:>8}{:>8}{:>8}{:>12}{:>10}{:>10.3}{:>8.1}{:>8.1}{:>8.1}",
            model,
            threads,
            kind,
            r.cycles,
            r.invalidations,
            r.fairness,
            100.0 * r.spin_frac,
            100.0 * r.coherence_frac,
            100.0 * r.fence_frac,
        );
    }

    let json_rows = results.iter().map(|(l, r)| lock_row_json(l, r)).collect();
    write_results_json(
        "fig12_lock_ablation",
        "lock ablation: TTAS vs ticket vs MCS vs CLH (priced atomics)",
        &cfg,
        json_rows,
    );
    println!(
        "\n(TTAS wins throughput via lock capture — the releaser re-acquires its \
              own M-state line; ticket pays a cross-core handoff per CS but keeps \
              every thread progressing; the queue locks trade a priced tail RMW \
              for local spinning — watch invalidations stay flat with threads)"
    );
}
