//! Figure 12 (extension) — lock-algorithm ablation: TTAS vs ticket lock.
//!
//! Expected shape: the *unfair* TTAS lock wins raw throughput because a
//! releasing core can immediately re-acquire from its still-resident
//! M-state line (lock capture), while the ticket lock forces a FIFO
//! cross-core handoff — paying a coherence round trip per critical
//! section — in exchange for starvation freedom. The fairness column
//! (spread of per-core finish times) quantifies what the ticket buys.

use tenways_bench::{banner, write_results_json, SuiteConfig};
use tenways_cpu::{ConsistencyModel, Machine, MachineSpec};
use tenways_sim::json::Json;
use tenways_sim::MachineConfig;
use tenways_workloads::{lock_bench_programs, LockBenchParams, LockKind};

fn main() {
    let cfg = SuiteConfig::from_env();
    banner(
        "Figure 12",
        "lock ablation: TTAS vs ticket (throughput & traffic)",
        &cfg,
    );
    let mut json_rows = Vec::new();

    println!(
        "{:>8}{:>8}{:>12}{:>12}{:>12}{:>12}{:>13}{:>13}",
        "model",
        "threads",
        "ttas cyc",
        "ticket cyc",
        "ttas inv",
        "ticket inv",
        "ttas fair",
        "ticket fair"
    );
    for model in ConsistencyModel::all() {
        for threads in [2usize, 4, 8] {
            let mut cycles = [0u64; 2];
            let mut invs = [0u64; 2];
            let mut fairness = [0.0f64; 2];
            for (i, kind) in [LockKind::Ttas, LockKind::Ticket].into_iter().enumerate() {
                let params = LockBenchParams {
                    threads,
                    rounds: 20 * cfg.scale(),
                    cs_compute: 8,
                    think_compute: 4,
                    kind,
                };
                let (programs, layout) = lock_bench_programs(&params);
                let machine_cfg = MachineConfig::builder()
                    .cores(threads)
                    .build()
                    .expect("valid");
                let spec = MachineSpec::baseline(model).with_machine(machine_cfg);
                let mut m = Machine::new(&spec, programs);
                let s = m.run(100_000_000);
                assert!(s.finished, "{kind:?} hung");
                let expect = threads as u64 * params.rounds;
                assert_eq!(
                    m.mem().read(layout.counter),
                    expect,
                    "mutual exclusion broken"
                );
                let stats = m.merged_stats();
                cycles[i] = s.cycles;
                invs[i] = stats.get("l1.invalidations") + stats.get("l1.recalls");
                // Fairness: earliest finisher / latest finisher (1.0 = all
                // cores finish together; small = some core starved).
                let done: Vec<u64> = s.core_done_at.iter().map(|d| d.unwrap_or(0)).collect();
                let min = *done.iter().min().unwrap_or(&0) as f64;
                let max = *done.iter().max().unwrap_or(&1) as f64;
                fairness[i] = if max == 0.0 { 1.0 } else { min / max };
                json_rows.push(Json::obj([
                    (
                        "label",
                        Json::from(format!(
                            "{}/{}t/{}",
                            model.label(),
                            threads,
                            format!("{kind:?}").to_lowercase()
                        )),
                    ),
                    ("cycles", Json::U64(s.cycles)),
                    ("finished", Json::Bool(s.finished)),
                    ("retired_ops", Json::U64(s.retired_ops)),
                    ("throughput", Json::F64(s.throughput())),
                    ("invalidations", Json::U64(invs[i])),
                    ("fairness", Json::F64(fairness[i])),
                ]));
            }
            println!(
                "{:>8}{:>8}{:>12}{:>12}{:>12}{:>12}{:>13.3}{:>13.3}",
                model.label(),
                threads,
                cycles[0],
                cycles[1],
                invs[0],
                invs[1],
                fairness[0],
                fairness[1],
            );
        }
    }
    write_results_json(
        "fig12_lock_ablation",
        "lock ablation: TTAS vs ticket (throughput & traffic)",
        &cfg,
        json_rows,
    );
    println!(
        "\n(TTAS wins throughput via lock capture — the releaser re-acquires its \
              own M-state line; ticket pays a cross-core handoff per CS but keeps \
              every thread progressing: watch the fairness column)"
    );
}
