//! Figure 5 — speculation-depth and store-buffer-occupancy distributions:
//! why per-store state cannot stay small while block-granularity state can.

use tenways_bench::{banner, record_row, run_parallel, write_results_json, SuiteConfig};
use tenways_cpu::{ConsistencyModel, SpecConfig};
use tenways_sim::json::{Json, ToJson};
use tenways_waste::{report, Experiment};
use tenways_workloads::WorkloadKind;

fn main() {
    let cfg = SuiteConfig::from_env();
    banner(
        "Figure 5",
        "speculation depth & SB occupancy (SC + on-demand)",
        &cfg,
    );

    let jobs = WorkloadKind::all()
        .into_iter()
        .map(|k| {
            (
                k.name().to_string(),
                Experiment::new(k)
                    .params(cfg.params())
                    .model(ConsistencyModel::Sc)
                    .spec(SpecConfig::on_demand()),
            )
        })
        .collect();
    let results = run_parallel(jobs).require_all(
        "fig5_spec_depth",
        "speculation depth & SB occupancy (SC + on-demand)",
        &cfg,
    );
    let json_rows = results
        .iter()
        .map(|(label, r)| {
            let mut row = record_row(label, r);
            if let Json::Obj(pairs) = &mut row {
                pairs.push(("spec_depth".to_string(), r.spec_depth.to_json()));
                pairs.push(("sb_occupancy".to_string(), r.sb_occupancy.to_json()));
            }
            row
        })
        .collect();
    write_results_json(
        "fig5_spec_depth",
        "speculation depth & SB occupancy (SC + on-demand)",
        &cfg,
        json_rows,
    );

    println!(
        "{:<10}{:>10}{:>10}{:>10}{:>10}{:>12}{:>12}",
        "workload", "d-mean", "d-p50", "d-p90", "d-p99", "d-max", "sb-p90"
    );
    for (name, r) in &results {
        println!(
            "{:<10}{:>10.1}{:>10}{:>10}{:>10}{:>12}{:>12}",
            name,
            r.spec_depth.mean(),
            r.spec_depth.percentile(50.0),
            r.spec_depth.percentile(90.0),
            r.spec_depth.percentile(99.0),
            r.spec_depth.max(),
            r.sb_occupancy.percentile(90.0),
        );
    }

    // Full CDF for one representative workload.
    if let Some((name, r)) = results.iter().find(|(n, _)| n == "oltp") {
        println!();
        print!(
            "{}",
            report::cdf_listing(&format!("{name} epoch-depth CDF"), &r.spec_depth)
        );
    }
    println!(
        "\n(depths beyond a handful of stores overflow a per-store CAM; \
         block-granularity state is depth-independent — see Figure 6)"
    );
}
