//! Figure 1 — the ten-ways waste taxonomy: per-workload stacked cycle
//! breakdown under the baseline TSO machine.

use tenways_bench::{banner, record_row, run_parallel, write_results_json, SuiteConfig};
use tenways_sim::json::{Json, ToJson};
use tenways_waste::{report, Experiment};
use tenways_workloads::WorkloadKind;

fn main() {
    let cfg = SuiteConfig::from_env();
    banner(
        "Figure 1",
        "waste taxonomy (cycle breakdown, baseline TSO)",
        &cfg,
    );
    let jobs = WorkloadKind::all()
        .into_iter()
        .map(|k| {
            (
                k.name().to_string(),
                Experiment::new(k).params(cfg.params()),
            )
        })
        .collect();
    let results = run_parallel(jobs).require_all(
        "fig1_waste_taxonomy",
        "waste taxonomy (baseline TSO)",
        &cfg,
    );
    let rows = results
        .iter()
        .map(|(label, r)| {
            let mut row = record_row(label, r);
            if let Json::Obj(pairs) = &mut row {
                pairs.push(("breakdown".to_string(), r.breakdown.to_json()));
            }
            row
        })
        .collect();
    write_results_json(
        "fig1_waste_taxonomy",
        "waste taxonomy (baseline TSO)",
        &cfg,
        rows,
    );
    let records: Vec<_> = results.into_iter().map(|(_, r)| r).collect();
    print!("{}", report::breakdown_table(&records));
    println!();
    let avg_useful: f64 = records
        .iter()
        .map(|r| r.breakdown.useful_fraction())
        .sum::<f64>()
        / records.len() as f64;
    println!(
        "mean useful fraction: {:.1}% — the rest is the ten ways.",
        100.0 * avg_useful
    );
}
