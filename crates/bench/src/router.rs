//! `tenways route`: a shard-by-key router fronting N serve backends.
//!
//! PR 9 took one `tenways serve` node to saturation; past that point the
//! single frontend is the serialization bottleneck — wasted parallelism
//! at the cluster layer. This router scales the service *out* with the
//! same discipline the per-node design used: partition by key so shards
//! never coordinate (perfbook's sharded-counter idea lifted to whole
//! nodes), rather than sharing state between backends.
//!
//! * **Rendezvous (HRW) sharding.** Every request resolves to the
//!   canonical SHA-256 cache key ([`tenways_waste::SimConfig::cache_key`]),
//!   which is uniform by construction. The owner of a key is the live
//!   backend with the highest weight `sha256(key "|" addr)` — no ring
//!   state, no rebalancing table, and removing a backend moves *only*
//!   that backend's keys (each orphaned key independently falls to its
//!   next-ranked survivor). Because duplicate configs canonicalize to
//!   the same key, they land on the same backend, whose single-flight
//!   admission collapses them: the cluster never simulates a config
//!   twice while membership is stable.
//! * **Health + drain.** A monitor thread probes each backend's
//!   `/healthz` every [`RouterOptions::health_interval`], flipping an
//!   `up` flag. A transport failure on a live forward marks the backend
//!   down immediately (the monitor brings it back when it recovers).
//!   Down backends drop out of the rendezvous ranking, so their keyspace
//!   re-routes to the survivors; requests in flight on a draining
//!   backend still finish (the serve side answers, then closes).
//! * **Bounded retry + backoff.** A forward that hits a connect failure
//!   or a 503 is retried up to [`RouterOptions::retries`] times with
//!   exponential backoff, re-resolving the owner each attempt so a retry
//!   after a mark-down lands on a survivor. Past the bound the router
//!   answers 503 — backpressure propagates, it does not amplify.
//! * **Pooled keep-alive connections.** Forwards reuse persistent
//!   connections from a small per-backend pool; a send failure on a
//!   pooled socket (the backend may have idle-closed it) is retried once
//!   on a fresh connection before counting as a backend failure.
//! * **Lock-free counters.** The router's own request counters are
//!   sharded/atomic ([`ShardedCounter`]); `GET /stats` aggregates them
//!   with each live backend's `/stats` into a `serve_cluster_stats.v1`
//!   document (per-backend detail + cluster totals).
//!
//! Endpoints: `POST /run` and `GET /jobs/<key>` proxy to the owning
//! shard; `POST /batch` splits into per-backend sub-batches, posts them
//! concurrently, and merges the per-key statuses back into input order;
//! `GET /stats` aggregates; `GET /healthz` answers locally with the
//! backend census. Clients need no changes: the router speaks the same
//! `serve_response.v2`/`serve_batch.v1` documents as a single backend,
//! so `tenways sweep --server` points at a router transparently.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tenways_sim::json::{Json, ToJson};
use tenways_sim::Sha256;
use tenways_waste::SimConfig;

use crate::serve::{
    accept_loop, error_doc, parse_batch_body, read_request, reply_keeps_alive, send_on_stream,
    write_response, HttpReply, HttpRequest, ShardedCounter, KEEP_ALIVE_IDLE,
    SERVE_RESPONSE_SCHEMA_VERSION, SOCKET_TIMEOUT,
};

/// Version of the `GET /stats` aggregation document; bumped on any
/// breaking change. Mirrored in `results/schema/serve_cluster_stats.v1.json`.
pub const CLUSTER_STATS_SCHEMA_VERSION: u64 = 1;

/// File name of the published cluster-stats schema under `results/schema/`.
pub const SERVE_CLUSTER_STATS_SCHEMA: &str = "serve_cluster_stats.v1.json";

/// Connect timeout for forwarded requests (probes use a shorter one).
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// Health-probe connect timeout: a probe is cheap and frequent, so it
/// gives up fast — the next interval retries anyway.
const PROBE_CONNECT_TIMEOUT: Duration = Duration::from_millis(250);

/// Health-probe socket timeout (read + write).
const PROBE_SOCKET_TIMEOUT: Duration = Duration::from_millis(500);

/// Granularity of the monitor thread's interruptible sleep.
const MONITOR_SLICE: Duration = Duration::from_millis(25);

/// Idle keep-alive connections pooled per backend; excess connections
/// are simply closed (the backend reclaims its handler thread).
const POOL_CAP: usize = 16;

/// The `Retry-After` seconds a router-level 503 advertises.
const ROUTE_RETRY_AFTER_S: u64 = 1;

/// Tuning for a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// The serve backends to shard over (`host:port` each). At least one.
    pub backends: Vec<String>,
    /// How often the monitor probes each backend's `/healthz`.
    pub health_interval: Duration,
    /// Extra attempts per forwarded request on 503 / connect failure.
    pub retries: u32,
    /// Base backoff between attempts, doubled each retry.
    pub backoff: Duration,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            backends: Vec::new(),
            health_interval: Duration::from_millis(500),
            retries: 3,
            backoff: Duration::from_millis(50),
        }
    }
}

/// One backend's routing state: liveness flag, per-backend counters,
/// and the pool of idle keep-alive connections to it.
#[derive(Debug)]
struct Backend {
    addr: String,
    up: AtomicBool,
    /// Requests forwarded to this backend (attempts, not successes).
    forwarded: ShardedCounter,
    /// Transport failures observed talking to this backend.
    errors: AtomicU64,
    /// Up/down flips (initial probe included when it finds the backend
    /// down).
    transitions: AtomicU64,
    pool: Mutex<Vec<TcpStream>>,
}

impl Backend {
    fn new(addr: String) -> Backend {
        Backend {
            addr,
            up: AtomicBool::new(true),
            forwarded: ShardedCounter::default(),
            errors: AtomicU64::new(0),
            transitions: AtomicU64::new(0),
            pool: Mutex::new(Vec::new()),
        }
    }

    fn pooled(&self) -> Option<TcpStream> {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop()
    }

    fn pool_push(&self, stream: TcpStream) {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < POOL_CAP {
            pool.push(stream);
        }
    }

    fn pool_clear(&self) {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// Router-level counters (monotonic since start); hot-path ones sharded,
/// rare-event ones plain atomics. All lock-free — `/stats` never blocks
/// a forward.
#[derive(Debug, Default)]
struct RouterCounters {
    connections: ShardedCounter,
    requests: ShardedCounter,
    /// Backend responses successfully relayed to a client.
    proxied: ShardedCounter,
    /// Extra forward attempts taken (503 or transport failure).
    retries: AtomicU64,
    /// Requests answered by a backend other than their full-membership
    /// rendezvous owner (i.e. served by a survivor during an outage).
    rerouted: AtomicU64,
    /// Requests the router gave up on (no live backend / retry budget
    /// exhausted) and answered 503 itself.
    rejected: AtomicU64,
    bad_requests: AtomicU64,
}

/// The shard-by-key router. See the [module docs](self).
#[derive(Debug)]
pub struct Router {
    backends: Vec<Arc<Backend>>,
    retries: u32,
    backoff: Duration,
    counters: RouterCounters,
    shutdown: Arc<AtomicBool>,
    monitor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Router {
    /// Builds the router, probes every backend once (so routing starts
    /// with an honest liveness picture), and starts the health monitor.
    ///
    /// # Errors
    ///
    /// Returns a message when `options.backends` is empty or contains a
    /// duplicate address (duplicates would corrupt the rendezvous
    /// ranking).
    pub fn new(options: RouterOptions) -> Result<Router, String> {
        if options.backends.is_empty() {
            return Err("router needs at least one backend".to_string());
        }
        for (i, addr) in options.backends.iter().enumerate() {
            if options.backends[..i].contains(addr) {
                return Err(format!("duplicate backend address {addr}"));
            }
        }
        let backends: Vec<Arc<Backend>> = options
            .backends
            .iter()
            .map(|addr| Arc::new(Backend::new(addr.clone())))
            .collect();
        for b in &backends {
            let up = probe(&b.addr);
            b.up.store(up, Ordering::Relaxed);
            if !up {
                b.transitions.fetch_add(1, Ordering::Relaxed);
                eprintln!("[route] backend {} is down at startup", b.addr);
            }
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        let monitor = {
            let backends = backends.clone();
            let shutdown = Arc::clone(&shutdown);
            let interval = options.health_interval;
            std::thread::spawn(move || monitor_loop(&backends, interval, &shutdown))
        };
        Ok(Router {
            backends,
            retries: options.retries,
            backoff: options.backoff,
            counters: RouterCounters::default(),
            shutdown,
            monitor: Mutex::new(Some(monitor)),
        })
    }

    /// The configured backend addresses, in configuration order.
    pub fn backend_addrs(&self) -> Vec<String> {
        self.backends.iter().map(|b| b.addr.clone()).collect()
    }

    /// How many backends the monitor currently considers up.
    pub fn backends_up(&self) -> usize {
        self.backends
            .iter()
            .filter(|b| b.up.load(Ordering::Relaxed))
            .count()
    }

    /// All backend indices ranked by rendezvous weight for `key`,
    /// heaviest first. The ranking ignores liveness — it is the stable
    /// fallback order; [`Router::owner`] applies the up/down filter.
    pub fn rank(&self, key: &str) -> Vec<usize> {
        let mut ranked: Vec<(u64, usize)> = self
            .backends
            .iter()
            .enumerate()
            .map(|(i, b)| (hrw_weight(key, &b.addr), i))
            .collect();
        ranked.sort_by(|a, b| b.cmp(a));
        ranked.into_iter().map(|(_, i)| i).collect()
    }

    /// The live owner of `key`: the highest-ranked backend currently up
    /// (`None` when every backend is down).
    pub fn owner(&self, key: &str) -> Option<usize> {
        self.rank(key)
            .into_iter()
            .find(|&i| self.backends[i].up.load(Ordering::Relaxed))
    }

    /// Marks a backend down after a transport failure (the monitor
    /// brings it back up when `/healthz` answers again).
    fn mark_down(&self, idx: usize) {
        let b = &self.backends[idx];
        if b.up.swap(false, Ordering::Relaxed) {
            b.transitions.fetch_add(1, Ordering::Relaxed);
            b.pool_clear();
            eprintln!("[route] backend {} marked down", b.addr);
        }
    }

    /// Forwards one keyed request to its owner, retrying with backoff on
    /// 503 and transport failure. The owner is re-resolved each attempt,
    /// so a mark-down re-routes the retry to the key's next-ranked live
    /// backend.
    ///
    /// # Errors
    ///
    /// Returns a message when no backend is live or the retry budget is
    /// exhausted on transport failures (a relayed 503 is an `Ok` reply).
    fn forward(
        &self,
        key: &str,
        method: &str,
        path: &str,
        body: Option<(&str, &str)>,
    ) -> Result<HttpReply, String> {
        let home = self.rank(key)[0];
        let mut backoff = self.backoff;
        let mut attempt = 0u32;
        loop {
            let Some(idx) = self.owner(key) else {
                return Err("no live backend".to_string());
            };
            match self.backend_request(&self.backends[idx], method, path, body) {
                Ok(reply) if reply.status == 503 && attempt < self.retries => {
                    // Backend backpressure (full admission queue): back
                    // off and retry; the backend is alive, so the owner
                    // stays the same unless the monitor says otherwise.
                }
                Ok(reply) => {
                    if idx != home {
                        self.counters.rerouted.fetch_add(1, Ordering::Relaxed);
                    }
                    self.counters.proxied.incr();
                    return Ok(reply);
                }
                Err(e) => {
                    self.mark_down(idx);
                    if attempt >= self.retries {
                        return Err(format!("backend {}: {e}", self.backends[idx].addr));
                    }
                }
            }
            attempt += 1;
            self.counters.retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(backoff);
            backoff = backoff.saturating_mul(2);
        }
    }

    /// One request to one backend over a pooled keep-alive connection.
    /// A failure on a pooled socket gets one fresh-connection retry (the
    /// backend may have idle-closed it); a failure on a fresh connection
    /// counts as a backend error.
    fn backend_request(
        &self,
        b: &Backend,
        method: &str,
        path: &str,
        body: Option<(&str, &str)>,
    ) -> Result<HttpReply, String> {
        b.forwarded.incr();
        if let Some(mut stream) = b.pooled() {
            if let Ok(reply) = send_on_stream(&mut stream, &b.addr, method, path, body) {
                if reply_keeps_alive(&reply) {
                    b.pool_push(stream);
                }
                return Ok(reply);
            }
        }
        let fresh = || -> Result<TcpStream, String> {
            let sa = b
                .addr
                .to_socket_addrs()
                .map_err(|e| format!("resolve: {e}"))?
                .next()
                .ok_or_else(|| "resolve: no address".to_string())?;
            let stream =
                TcpStream::connect_timeout(&sa, CONNECT_TIMEOUT).map_err(|e| format!("{e}"))?;
            let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
            let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
            let _ = stream.set_nodelay(true);
            Ok(stream)
        };
        let outcome = fresh().and_then(|mut stream| {
            let reply = send_on_stream(&mut stream, &b.addr, method, path, body)?;
            if reply_keeps_alive(&reply) {
                b.pool_push(stream);
            }
            Ok(reply)
        });
        if outcome.is_err() {
            b.errors.fetch_add(1, Ordering::Relaxed);
        }
        outcome
    }

    /// Splits a batch into per-owner sub-batches, posts them to their
    /// backends concurrently, and merges the per-key statuses back into
    /// input order. A sub-batch whose backend fails mid-post is
    /// re-grouped over the survivors (the failed backend is already
    /// marked down) for up to `retries` extra rounds; keys that still
    /// cannot be placed report `rejected`.
    fn forward_batch(&self, configs: &[(String, SimConfig)]) -> Json {
        /// One batch item: (label, cache key, config).
        type Item<'a> = (String, String, &'a SimConfig);
        let keyed: Vec<Item> = configs
            .iter()
            .map(|(label, cfg)| (label.clone(), cfg.cache_key(), cfg))
            .collect();
        // Distinct keys, first-appearance order: the cluster-wide dedup
        // (each key is posted to exactly one backend, whose own
        // single-flight admission handles any racing singles).
        let mut todo: Vec<Item> = Vec::new();
        for item in &keyed {
            if !todo.iter().any(|(_, k, _)| *k == item.1) {
                todo.push(item.clone());
            }
        }
        let unique = todo.len();
        let mut statuses: HashMap<String, Json> = HashMap::new();
        let mut backoff = self.backoff;
        for round in 0..=self.retries {
            if todo.is_empty() {
                break;
            }
            if round > 0 {
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            // Group the remaining keys by their current live owner.
            let mut groups: HashMap<usize, Vec<Item>> = HashMap::new();
            let mut unroutable = Vec::new();
            for item in todo.drain(..) {
                match self.owner(&item.1) {
                    Some(idx) => groups.entry(idx).or_default().push(item),
                    None => unroutable.push(item),
                }
            }
            // Post the sub-batches concurrently — this fan-out is where
            // the cluster simulates shards in parallel.
            let outcomes: Vec<(Vec<Item>, Result<HttpReply, String>)> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = groups
                        .into_iter()
                        .map(|(idx, group)| {
                            scope.spawn(move || {
                                let body = sub_batch_body(&group);
                                let reply = self.backend_request(
                                    &self.backends[idx],
                                    "POST",
                                    "/batch",
                                    Some(("application/json", &body)),
                                );
                                if reply.is_err() {
                                    self.mark_down(idx);
                                }
                                (group, reply)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
            todo = unroutable;
            for (group, outcome) in outcomes {
                match outcome {
                    Ok(reply) if reply.status == 200 => {
                        self.counters.proxied.incr();
                        let mut by_key: HashMap<String, Json> = HashMap::new();
                        if let Some(results) = reply.body.get("results").and_then(Json::as_array) {
                            for item in results {
                                if let Some(key) = item.get("key").and_then(Json::as_str) {
                                    by_key.insert(key.to_string(), item.clone());
                                }
                            }
                        }
                        for item in group {
                            match by_key.remove(&item.1) {
                                Some(doc) => {
                                    statuses.insert(item.1.clone(), doc);
                                }
                                // The backend's report is missing the key
                                // (should not happen): try again.
                                None => todo.push(item),
                            }
                        }
                    }
                    // A non-200 batch response or a transport failure:
                    // the whole group re-groups over the survivors.
                    Ok(_) | Err(_) => todo.extend(group),
                }
            }
        }
        for (_, key, _) in &todo {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            statuses.insert(
                key.clone(),
                Json::obj([
                    ("key", Json::from(key.as_str())),
                    ("status", Json::from("rejected")),
                    ("error", Json::from("no live backend")),
                ]),
            );
        }
        merge_batch_doc(&keyed, unique, &statuses)
    }

    /// The `GET /stats` aggregation: router counters, per-backend detail
    /// (with each live backend's own `/stats` embedded), and cluster
    /// totals summed across the live backends.
    pub fn cluster_stats_json(&self) -> Json {
        let c = &self.counters;
        let load = |a: &AtomicU64| Json::U64(a.load(Ordering::Relaxed));
        let router = Json::obj([
            ("connections", Json::U64(c.connections.sum())),
            ("requests", Json::U64(c.requests.sum())),
            ("proxied", Json::U64(c.proxied.sum())),
            ("retries", load(&c.retries)),
            ("rerouted", load(&c.rerouted)),
            ("rejected", load(&c.rejected)),
            ("bad_requests", load(&c.bad_requests)),
        ]);
        const SUMMED: [&str; 8] = [
            "requests",
            "hits",
            "misses",
            "joined",
            "rejected",
            "sim_runs",
            "sim_failures",
            "connections",
        ];
        let mut totals: HashMap<&str, u64> = SUMMED.iter().map(|k| (*k, 0)).collect();
        let mut up_count = 0usize;
        let backends: Vec<Json> = self
            .backends
            .iter()
            .map(|b| {
                let up = b.up.load(Ordering::Relaxed);
                let stats = if up {
                    self.backend_request(b, "GET", "/stats", None)
                        .ok()
                        .filter(|r| r.status == 200)
                        .map(|r| r.body)
                } else {
                    None
                };
                if let Some(stats) = &stats {
                    up_count += 1;
                    for k in SUMMED {
                        if let Some(n) = stats.get(k).and_then(Json::as_u64) {
                            *totals.get_mut(k).expect("seeded") += n;
                        }
                    }
                }
                Json::obj([
                    ("addr", Json::from(b.addr.as_str())),
                    ("up", Json::Bool(up && stats.is_some())),
                    ("forwarded", Json::U64(b.forwarded.sum())),
                    ("errors", load(&b.errors)),
                    ("transitions", load(&b.transitions)),
                    ("stats", stats.unwrap_or(Json::Null)),
                ])
            })
            .collect();
        let mut cluster = vec![
            (
                "backends_total".to_string(),
                Json::from(self.backends.len()),
            ),
            ("backends_up".to_string(), Json::from(up_count)),
        ];
        for k in SUMMED {
            cluster.push((k.to_string(), Json::U64(totals[k])));
        }
        Json::obj([
            ("schema_version", Json::U64(CLUSTER_STATS_SCHEMA_VERSION)),
            ("router", router),
            ("backends", Json::Arr(backends)),
            ("cluster", Json::Obj(cluster)),
        ])
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let handle = {
            let mut monitor = self.monitor.lock().unwrap_or_else(|e| e.into_inner());
            monitor.take()
        };
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

/// The rendezvous weight of `addr` for `key`: the first 8 bytes of
/// `sha256(key "|" addr)` as a big-endian integer. SHA-256 keys are
/// uniform, so weights are too — expected load imbalance across N
/// backends is O(sqrt(keys/N)), with no placement table to maintain.
fn hrw_weight(key: &str, addr: &str) -> u64 {
    let mut h = Sha256::new();
    h.update(key.as_bytes());
    h.update(b"|");
    h.update(addr.as_bytes());
    let digest = h.finalize();
    u64::from_be_bytes(digest[..8].try_into().expect("sha256 digest is 32 bytes"))
}

/// One synchronous `/healthz` probe (its own short-timeout, one-shot
/// connection — probes never borrow the forwarding pool).
fn probe(addr: &str) -> bool {
    let Ok(mut addrs) = addr.to_socket_addrs() else {
        return false;
    };
    let Some(sa) = addrs.next() else {
        return false;
    };
    let Ok(mut stream) = TcpStream::connect_timeout(&sa, PROBE_CONNECT_TIMEOUT) else {
        return false;
    };
    let _ = stream.set_read_timeout(Some(PROBE_SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(PROBE_SOCKET_TIMEOUT));
    let request = format!("GET /healthz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    if stream.write_all(request.as_bytes()).is_err() {
        return false;
    }
    let mut response = Vec::new();
    if stream.read_to_end(&mut response).is_err() {
        return false;
    }
    response.starts_with(b"HTTP/1.1 200")
}

/// The monitor loop: probe every backend each interval, flip `up` flags
/// on change, and exit promptly when the router shuts down.
fn monitor_loop(backends: &[Arc<Backend>], interval: Duration, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::Relaxed) {
        for b in backends {
            let up = probe(&b.addr);
            let was = b.up.swap(up, Ordering::Relaxed);
            if was != up {
                b.transitions.fetch_add(1, Ordering::Relaxed);
                if !up {
                    b.pool_clear();
                }
                eprintln!(
                    "[route] backend {} is {}",
                    b.addr,
                    if up { "up" } else { "down" }
                );
            }
        }
        let slept = Instant::now();
        while slept.elapsed() < interval && !shutdown.load(Ordering::Relaxed) {
            std::thread::sleep(MONITOR_SLICE.min(interval));
        }
    }
}

/// Renders one per-backend sub-batch body (labelled canonical configs).
fn sub_batch_body(group: &[(String, String, &SimConfig)]) -> String {
    let configs: Vec<Json> = group
        .iter()
        .map(|(label, _, cfg)| {
            Json::obj([
                ("label", Json::from(label.as_str())),
                ("config", cfg.to_json()),
            ])
        })
        .collect();
    Json::obj([("configs", Json::Arr(configs))]).to_string()
}

/// Merges resolved per-key statuses back into input order and rebuilds
/// the `serve_batch.v1` counts — the same document shape a single
/// backend answers, so batch clients cannot tell a cluster from a node.
fn merge_batch_doc(
    keyed: &[(String, String, &SimConfig)],
    unique: usize,
    statuses: &HashMap<String, Json>,
) -> Json {
    let items: Vec<Json> = keyed
        .iter()
        .map(|(label, key, _)| {
            let resolved = statuses.get(key).cloned().unwrap_or_else(|| {
                Json::obj([
                    ("key", Json::from(key.as_str())),
                    ("status", Json::from("rejected")),
                    ("error", Json::from("no live backend")),
                ])
            });
            // The backend echoed the first-appearance label; restore
            // this item's own. Every other byte passes through.
            let Json::Obj(pairs) = resolved else {
                return resolved;
            };
            let mut relabelled: Vec<(String, Json)> =
                vec![("label".to_string(), Json::from(label.as_str()))];
            relabelled.extend(pairs.into_iter().filter(|(name, _)| name != "label"));
            Json::Obj(relabelled)
        })
        .collect();
    let count = |s: &str| {
        items
            .iter()
            .filter(|i| i.get("status").and_then(Json::as_str) == Some(s))
            .count()
    };
    Json::obj([
        ("schema_version", Json::U64(SERVE_RESPONSE_SCHEMA_VERSION)),
        ("total", Json::from(keyed.len())),
        ("unique", Json::from(unique)),
        ("deduplicated", Json::from(keyed.len() - unique)),
        ("cached", Json::from(count("cached"))),
        ("computed", Json::from(count("computed"))),
        ("queued", Json::from(count("queued"))),
        ("rejected", Json::from(count("rejected"))),
        ("failed", Json::from(count("failed"))),
        ("results", Json::Arr(items)),
    ])
}

/// Relays a backend reply to the client, preserving `Retry-After`.
fn relay(reply: HttpReply) -> (u16, Vec<(&'static str, String)>, Json) {
    let mut headers = Vec::new();
    if let Some(v) = reply.header("retry-after") {
        headers.push(("Retry-After", v.to_string()));
    }
    (reply.status, headers, reply.body)
}

/// Routes one parsed client request through the router.
fn route_request(
    router: &Router,
    request: &HttpRequest,
) -> (u16, Vec<(&'static str, String)>, Json) {
    let plain = |status: u16, doc: Json| (status, Vec::new(), doc);
    let give_up = |router: &Router, e: String| {
        router.counters.rejected.fetch_add(1, Ordering::Relaxed);
        (
            503,
            vec![("Retry-After", ROUTE_RETRY_AFTER_S.to_string())],
            error_doc(&e),
        )
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/run") => {
            let parsed = if request.content_type.contains("toml") {
                SimConfig::from_toml_str(&request.body)
            } else {
                SimConfig::from_json_str(&request.body)
            };
            let cfg = match parsed {
                Ok(cfg) => cfg,
                Err(e) => {
                    router.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                    return plain(400, error_doc(&e.to_string()));
                }
            };
            // Forward the canonical JSON rendering: the backend derives
            // the same cache key from it by construction, so router and
            // shard agree on ownership.
            let key = cfg.cache_key();
            let body = cfg.to_json().to_string();
            match router.forward(&key, "POST", "/run", Some(("application/json", &body))) {
                Ok(reply) => relay(reply),
                Err(e) => give_up(router, e),
            }
        }
        ("POST", "/batch") => match parse_batch_body(&request.content_type, &request.body) {
            Ok(configs) => plain(200, router.forward_batch(&configs)),
            Err(e) => {
                router.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                plain(400, error_doc(&e))
            }
        },
        ("GET", "/stats") => plain(200, router.cluster_stats_json()),
        ("GET", "/healthz") => {
            let up = router.backends_up();
            plain(
                200,
                Json::obj([
                    ("ok", Json::Bool(up > 0)),
                    ("backends_up", Json::from(up)),
                    ("backends_total", Json::from(router.backends.len())),
                ]),
            )
        }
        ("GET", path) if path.starts_with("/jobs/") => {
            let key = &path["/jobs/".len()..];
            match router.forward(key, "GET", path, None) {
                Ok(reply) => relay(reply),
                Err(e) => give_up(router, e),
            }
        }
        (method, path) => {
            router.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            plain(
                404,
                error_doc(&format!("no such endpoint: {method} {path}")),
            )
        }
    }
}

/// One client connection to the router: the same keep-alive request
/// loop the serve side runs.
fn handle_connection(
    router: &Router,
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
    verbose: bool,
) {
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let mut carry = Vec::new();
    let mut idle_limit = SOCKET_TIMEOUT;
    loop {
        let request = match read_request(stream, &mut carry, idle_limit, Some(shutdown)) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(e) => {
                router.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                write_response(stream, 400, &[], &error_doc(&e), false);
                return;
            }
        };
        router.counters.requests.incr();
        let (status, headers, doc) = route_request(router, &request);
        if verbose {
            eprintln!("[route] {} {} -> {status}", request.method, request.path);
        }
        let keep = request.keep_alive && !shutdown.load(Ordering::Relaxed);
        write_response(stream, status, &headers, &doc, keep);
        if !keep {
            return;
        }
        idle_limit = KEEP_ALIVE_IDLE;
    }
}

/// The router's accept loop — [`serve_http_shutdown`]'s counterpart
/// (`max_requests` counts accepted connections; raising `shutdown`
/// drains and returns).
///
/// # Errors
///
/// Returns a message when the listener cannot be made pollable.
///
/// [`serve_http_shutdown`]: crate::serve::serve_http_shutdown
pub fn route_http(
    router: Arc<Router>,
    listener: TcpListener,
    max_requests: Option<u64>,
    verbose: bool,
    shutdown: Arc<AtomicBool>,
) -> Result<(), String> {
    accept_loop(
        listener,
        max_requests,
        &Arc::clone(&shutdown),
        |mut stream| {
            router.counters.connections.incr();
            let router = Arc::clone(&router);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                handle_connection(&router, &mut stream, &shutdown, verbose);
            })
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{serve_http_shutdown, ServeOptions, SimService};
    use crate::HttpClient;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tenways-route-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_cfg(seed: u64) -> SimConfig {
        SimConfig {
            workload: "lu".to_string(),
            threads: 2,
            scale: 1,
            seed,
            ..SimConfig::default()
        }
    }

    /// One in-process serve backend on an ephemeral port.
    struct TestBackend {
        svc: Arc<SimService>,
        addr: String,
        shutdown: Arc<AtomicBool>,
        thread: Option<std::thread::JoinHandle<Result<(), String>>>,
        dir: PathBuf,
    }

    impl TestBackend {
        fn start(tag: &str) -> TestBackend {
            let dir = tmp_dir(tag);
            let svc = Arc::new(
                SimService::new(ServeOptions {
                    workers: 1,
                    cache_dir: dir.clone(),
                    ..ServeOptions::default()
                })
                .unwrap(),
            );
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            let shutdown = Arc::new(AtomicBool::new(false));
            let thread = {
                let svc = Arc::clone(&svc);
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || {
                    serve_http_shutdown(svc, listener, None, false, shutdown)
                })
            };
            TestBackend {
                svc,
                addr,
                shutdown,
                thread: Some(thread),
                dir,
            }
        }

        /// Kills the backend: drain, close every socket, free the port.
        fn stop(&mut self) {
            self.shutdown.store(true, Ordering::Relaxed);
            if let Some(thread) = self.thread.take() {
                thread.join().unwrap().unwrap();
            }
        }
    }

    impl Drop for TestBackend {
        fn drop(&mut self) {
            self.stop();
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }

    /// A router + N backends wired together, plus the router's own
    /// HTTP frontend.
    struct TestCluster {
        backends: Vec<TestBackend>,
        router: Arc<Router>,
        addr: String,
        shutdown: Arc<AtomicBool>,
        thread: Option<std::thread::JoinHandle<Result<(), String>>>,
    }

    impl TestCluster {
        fn start(tag: &str, n: usize) -> TestCluster {
            let backends: Vec<TestBackend> = (0..n)
                .map(|i| TestBackend::start(&format!("{tag}-b{i}")))
                .collect();
            let router = Arc::new(
                Router::new(RouterOptions {
                    backends: backends.iter().map(|b| b.addr.clone()).collect(),
                    health_interval: Duration::from_millis(50),
                    retries: 4,
                    backoff: Duration::from_millis(10),
                })
                .unwrap(),
            );
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            let shutdown = Arc::new(AtomicBool::new(false));
            let thread = {
                let router = Arc::clone(&router);
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || route_http(router, listener, None, false, shutdown))
            };
            TestCluster {
                backends,
                router,
                addr,
                shutdown,
                thread: Some(thread),
            }
        }

        fn total_sim_runs(&self) -> u64 {
            self.backends.iter().map(|b| b.svc.sim_runs()).sum()
        }
    }

    impl Drop for TestCluster {
        fn drop(&mut self) {
            self.shutdown.store(true, Ordering::Relaxed);
            if let Some(thread) = self.thread.take() {
                thread.join().unwrap().unwrap();
            }
        }
    }

    #[test]
    fn rendezvous_ranking_is_stable_and_minimally_disruptive() {
        let addrs = ["10.0.0.1:9000", "10.0.0.2:9000", "10.0.0.3:9000"];
        let keys: Vec<String> = (0..200).map(|i| format!("key-{i}")).collect();

        // Deterministic: the same key always ranks the same way.
        for key in &keys {
            let mut ranked: Vec<&str> = addrs.to_vec();
            ranked.sort_by_key(|addr| std::cmp::Reverse(hrw_weight(key, addr)));
            let mut again: Vec<&str> = addrs.to_vec();
            again.sort_by_key(|addr| std::cmp::Reverse(hrw_weight(key, addr)));
            assert_eq!(ranked, again);
        }

        // Uniform enough: every backend owns a nontrivial share.
        let mut owned = [0usize; 3];
        for key in &keys {
            let owner = (0..3).max_by_key(|&i| hrw_weight(key, addrs[i])).unwrap();
            owned[owner] += 1;
        }
        for (i, count) in owned.iter().enumerate() {
            assert!(
                *count > keys.len() / 10,
                "backend {i} owns only {count}/{} keys: {owned:?}",
                keys.len()
            );
        }

        // Minimal disruption: removing one backend moves only its own
        // keys — every other key keeps its owner.
        for (removed, _) in addrs.iter().enumerate() {
            for key in &keys {
                let full = (0..3).max_by_key(|&i| hrw_weight(key, addrs[i])).unwrap();
                let survivors: Vec<usize> = (0..3).filter(|&i| i != removed).collect();
                let reduced = survivors
                    .iter()
                    .copied()
                    .max_by_key(|&i| hrw_weight(key, addrs[i]))
                    .unwrap();
                if full != removed {
                    assert_eq!(full, reduced, "key {key} moved without losing its owner");
                }
            }
        }
    }

    #[test]
    fn same_key_routes_to_same_backend_and_never_duplicates_a_simulation() {
        let cluster = TestCluster::start("stable", 2);
        let mut client = HttpClient::new(cluster.addr.clone());
        let body = small_cfg(1).to_json().to_string();

        let first = client
            .request("POST", "/run", Some(("application/json", &body)))
            .unwrap();
        assert_eq!(first.status, 200);
        assert_eq!(
            first.body.get("cached").and_then(Json::as_bool),
            Some(false)
        );

        let second = client
            .request("POST", "/run", Some(("application/json", &body)))
            .unwrap();
        assert_eq!(second.status, 200);
        assert_eq!(
            second.body.get("cached").and_then(Json::as_bool),
            Some(true),
            "same key must land on the same (warm) backend"
        );
        assert_eq!(
            second.body.get("record").unwrap().to_string(),
            first.body.get("record").unwrap().to_string()
        );
        assert_eq!(cluster.total_sim_runs(), 1, "exactly one backend simulated");

        // The key's owner is stable and the job is pollable through the
        // router on the owning shard.
        let key = first.body.get("key").and_then(Json::as_str).unwrap();
        let job = client
            .request("GET", &format!("/jobs/{key}"), None)
            .unwrap();
        assert_eq!(job.status, 200);
        assert_eq!(job.body.get("status").and_then(Json::as_str), Some("done"));
    }

    #[test]
    fn failover_reroutes_a_dead_backends_keyspace_with_no_lost_request() {
        let mut cluster = TestCluster::start("failover", 2);
        let configs: Vec<SimConfig> = (0..6).map(small_cfg).collect();
        let mut client = HttpClient::new(cluster.addr.clone());

        // Warm every key through the router and remember who owns what.
        for cfg in &configs {
            let body = cfg.to_json().to_string();
            let reply = client
                .request("POST", "/run", Some(("application/json", &body)))
                .unwrap();
            assert_eq!(reply.status, 200);
        }
        assert_eq!(cluster.total_sim_runs(), 6);
        let victim_keys: Vec<String> = configs
            .iter()
            .map(|cfg| cfg.cache_key())
            .filter(|key| cluster.router.rank(key)[0] == 0)
            .collect();
        assert!(
            !victim_keys.is_empty() && victim_keys.len() < 6,
            "test wants both backends owning keys: {}/6 on backend 0",
            victim_keys.len()
        );

        // Kill backend 0 mid-cluster: every key must still answer 200 —
        // the victim's keyspace re-routes to the survivor, which
        // re-simulates what it never cached.
        cluster.backends[0].stop();
        for cfg in &configs {
            let body = cfg.to_json().to_string();
            let reply = client
                .request("POST", "/run", Some(("application/json", &body)))
                .unwrap();
            assert_eq!(reply.status, 200, "no request may be lost across the kill");
        }
        assert_eq!(cluster.router.backends_up(), 1);
        let rerouted = cluster.router.counters.rerouted.load(Ordering::Relaxed);
        assert!(
            rerouted >= victim_keys.len() as u64,
            "the victim's {} keys must be rerouted (saw {rerouted})",
            victim_keys.len()
        );
        // The survivor now holds every key: its original share plus the
        // orphaned victim keys, which it re-simulated afresh.
        assert_eq!(cluster.backends[1].svc.sim_runs(), 6);
        assert_eq!(cluster.backends[0].svc.sim_runs(), victim_keys.len() as u64);
    }

    #[test]
    fn batch_splits_by_owner_and_merges_statuses_byte_identically() {
        let cluster = TestCluster::start("batch", 2);
        let configs: Vec<(String, SimConfig)> = (0..4)
            .flat_map(|seed| {
                // Two labelled duplicates per seed: dedup must be
                // cluster-wide, labels must survive the merge.
                vec![
                    (format!("s{seed}-a"), small_cfg(seed)),
                    (format!("s{seed}-b"), small_cfg(seed)),
                ]
            })
            .collect();
        let body = Json::obj([(
            "configs",
            Json::Arr(
                configs
                    .iter()
                    .map(|(label, cfg)| {
                        Json::obj([
                            ("label", Json::from(label.as_str())),
                            ("config", cfg.to_json()),
                        ])
                    })
                    .collect(),
            ),
        )])
        .to_string();
        let mut client = HttpClient::new(cluster.addr.clone());
        let reply = client
            .request("POST", "/batch", Some(("application/json", &body)))
            .unwrap();
        assert_eq!(reply.status, 200);
        let doc = &reply.body;
        assert_eq!(doc.get("total").and_then(Json::as_u64), Some(8));
        assert_eq!(doc.get("unique").and_then(Json::as_u64), Some(4));
        assert_eq!(doc.get("deduplicated").and_then(Json::as_u64), Some(4));
        assert_eq!(
            cluster.total_sim_runs(),
            4,
            "cluster-wide dedup: one simulation per distinct key"
        );
        assert!(
            cluster.backends.iter().all(|b| b.svc.sim_runs() > 0)
                || cluster.backends.iter().any(|b| b.svc.sim_runs() == 4),
            "the batch was split across owners (or one owner owns all)"
        );

        // Byte-level fidelity: each merged record is identical to what
        // the owning backend serves directly for that key.
        let results = doc.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results.len(), 8);
        for (item, (label, cfg)) in results.iter().zip(&configs) {
            assert_eq!(
                item.get("label").and_then(Json::as_str),
                Some(label.as_str())
            );
            assert_eq!(
                item.get("key").and_then(Json::as_str),
                Some(cfg.cache_key().as_str())
            );
            let status = item.get("status").and_then(Json::as_str).unwrap();
            assert!(status == "computed" || status == "cached", "got {status}");
            let key = cfg.cache_key();
            let owner = cluster.router.owner(&key).unwrap();
            let direct = crate::serve::http_request(
                &cluster.backends[owner].addr,
                "GET",
                &format!("/jobs/{key}"),
                None,
            )
            .unwrap();
            assert_eq!(
                item.get("record").unwrap().to_string(),
                direct.body.get("record").unwrap().to_string(),
                "merged record must be byte-identical to the shard's"
            );
        }
    }

    #[test]
    fn cluster_stats_aggregate_per_backend_counters() {
        let cluster = TestCluster::start("stats", 2);
        let mut client = HttpClient::new(cluster.addr.clone());
        for seed in 0..4 {
            let body = small_cfg(seed).to_json().to_string();
            let reply = client
                .request("POST", "/run", Some(("application/json", &body)))
                .unwrap();
            assert_eq!(reply.status, 200);
        }
        let stats = client.request("GET", "/stats", None).unwrap();
        assert_eq!(stats.status, 200);
        let doc = &stats.body;
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_u64),
            Some(CLUSTER_STATS_SCHEMA_VERSION)
        );
        let cluster_doc = doc.get("cluster").unwrap();
        assert_eq!(
            cluster_doc.get("backends_up").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            cluster_doc.get("sim_runs").and_then(Json::as_u64),
            Some(cluster.total_sim_runs())
        );
        // The cluster totals are exactly the sum of the embedded
        // per-backend stats — aggregation is arithmetic, not sampling.
        let backends = doc.get("backends").and_then(Json::as_array).unwrap();
        assert_eq!(backends.len(), 2);
        for field in ["sim_runs", "hits", "misses", "requests"] {
            let summed: u64 = backends
                .iter()
                .filter_map(|b| b.get("stats").and_then(|s| s.get(field)))
                .filter_map(Json::as_u64)
                .sum();
            assert_eq!(
                cluster_doc.get(field).and_then(Json::as_u64),
                Some(summed),
                "cluster.{field} must equal the per-backend sum"
            );
        }
        // The router section counts its own traffic: 4 runs + 1 stats
        // over one keep-alive connection.
        let router_doc = doc.get("router").unwrap();
        assert_eq!(
            router_doc.get("connections").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(router_doc.get("requests").and_then(Json::as_u64), Some(5));
        assert_eq!(router_doc.get("proxied").and_then(Json::as_u64), Some(4));
        assert_eq!(router_doc.get("rejected").and_then(Json::as_u64), Some(0));
    }
}
