//! Simulation-as-a-service: the engine behind `tenways serve`.
//!
//! The paper catalogs ways to waste a parallel computer; the most complete
//! waste this repo could commit is re-running a deterministic simulation
//! whose answer it already produced. This module turns determinism into
//! serving capacity:
//!
//! * [`SimService`] — accepts [`SimConfig`] jobs, answers repeats from the
//!   two-tier content-addressed [`ResultCache`] (keyed on
//!   [`SimConfig::cache_key`]), and dispatches misses onto a persistent
//!   worker pool whose jobs run under the [`SweepRunner`]'s fail-soft
//!   containment (`catch_unwind`, retries, per-job wall budget).
//!   Concurrent requests for the same key are **single-flighted**: one
//!   simulation runs, every waiter shares its result.
//! * a minimal HTTP/1.1 layer over [`std::net::TcpListener`] (the build
//!   environment is offline, so no server crate): [`serve_http`] is the
//!   accept loop, [`http_call`] the matching client used by the CLI,
//!   tests, and CI.
//!
//! Endpoints (all responses JSON, `Connection: close`):
//!
//! | method & path  | body            | response                              |
//! |----------------|-----------------|---------------------------------------|
//! | `POST /run`    | `SimConfig` JSON (or TOML with a `toml` content type) | `{schema_version, key, cached, record}` |
//! | `GET /stats`   | —               | hit/miss counters and cache sizes     |
//! | `GET /healthz` | —               | `{"ok": true}`                        |
//!
//! A hit serves the byte-identical `run_record.v1` document of the
//! original run without simulating anything; with `workers = 0` the
//! service is cache-only and a miss is refused with HTTP 503 (this is how
//! the tests prove hits never simulate).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

use tenways_sim::json::{Json, ToJson};
use tenways_waste::{Experiment, SimConfig};

use crate::cache::ResultCache;
use crate::sweep::{SweepJob, SweepOptions, SweepRunner};

/// Version of the `POST /run` response document layout; bumped on any
/// breaking change. Mirrored in `results/schema/serve_response.v1.json`.
pub const SERVE_RESPONSE_SCHEMA_VERSION: u64 = 1;

/// Largest request (headers + body) the server will read, in bytes.
const MAX_REQUEST_BYTES: usize = 4 << 20;

/// Per-connection socket timeout: a stalled peer cannot pin a handler
/// thread forever. Generous because a miss legitimately blocks for the
/// whole simulation.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(600);

/// Tuning for a [`SimService`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads simulating cache misses. `0` makes the service
    /// **cache-only**: every miss is refused ([`ServeError::CacheOnly`]),
    /// which is also how tests prove a hit never simulates.
    pub workers: usize,
    /// In-memory LRU capacity (entries); disk is unbounded.
    pub mem_capacity: usize,
    /// Directory of the disk tier (entry files + index).
    pub cache_dir: PathBuf,
    /// Extra attempts per failed simulation (SweepRunner retry policy).
    pub retries: u32,
    /// Per-job wall budget in milliseconds (cooperative, like sweeps).
    pub job_budget_ms: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            mem_capacity: 128,
            cache_dir: crate::results_dir().join("cache"),
            retries: 0,
            job_budget_ms: None,
        }
    }
}

/// Why a submitted job produced no record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The service is cache-only (`workers = 0`) and the key missed.
    CacheOnly {
        /// The canonical key that missed.
        key: String,
    },
    /// The simulation ran and failed (message from the sweep containment:
    /// experiment error, panic, or timeout).
    Sim(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::CacheOnly { key } => write!(
                f,
                "result {key} is not cached and the worker pool is disabled (workers = 0)"
            ),
            ServeError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A successfully answered job.
#[derive(Debug, Clone)]
pub struct Answer {
    /// Canonical content-address of the request's configuration.
    pub key: String,
    /// Whether the record was served from the cache (`true`) or freshly
    /// simulated by this request (`false` — also the value joiners of an
    /// in-flight simulation see, since their request did trigger a wait).
    pub cached: bool,
    /// The `run_record.v1` document, byte-identical to the original run.
    pub record: Json,
}

impl Answer {
    /// The `POST /run` response document.
    pub fn to_response_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::U64(SERVE_RESPONSE_SCHEMA_VERSION)),
            ("key", Json::from(self.key.clone())),
            ("cached", Json::Bool(self.cached)),
            ("record", self.record.clone()),
        ])
    }
}

/// Service-level counters (monotonic since start).
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    joined: AtomicU64,
    sim_runs: AtomicU64,
    sim_failures: AtomicU64,
    bad_requests: AtomicU64,
}

/// One in-flight simulation that waiters rendezvous on.
#[derive(Debug, Default)]
struct Flight {
    slot: Mutex<Option<Result<Json, String>>>,
    done: Condvar,
}

impl Flight {
    fn wait(&self) -> Result<Json, String> {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match &*slot {
                Some(result) => return result.clone(),
                None => slot = self.done.wait(slot).unwrap_or_else(|e| e.into_inner()),
            }
        }
    }

    fn fill(&self, result: Result<Json, String>) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(result);
        self.done.notify_all();
    }
}

/// A persistent pool of worker threads draining submitted closures.
/// Dropping the pool closes the queue and joins every worker.
#[derive(Debug)]
struct WorkerPool {
    tx: Option<mpsc::Sender<Box<dyn FnOnce() + Send>>>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(workers: usize) -> WorkerPool {
        let (tx, rx) = mpsc::channel::<Box<dyn FnOnce() + Send>>();
        let rx = Arc::new(Mutex::new(rx));
        let threads = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    let task = {
                        let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                        guard.recv()
                    };
                    match task {
                        Ok(task) => task(),
                        Err(_) => break, // queue closed: pool is shutting down
                    }
                })
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            threads,
        }
    }

    fn submit(&self, task: Box<dyn FnOnce() + Send>) -> Result<(), String> {
        self.tx
            .as_ref()
            .expect("pool queue alive until drop")
            .send(task)
            .map_err(|_| "worker pool is shut down".to_string())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.tx = None; // close the queue; workers drain and exit
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The simulation service: content-addressed cache in front of a
/// persistent, fail-soft worker pool. See the [module docs](self).
#[derive(Debug)]
pub struct SimService {
    cache: Arc<Mutex<ResultCache>>,
    inflight: Arc<Mutex<HashMap<String, Arc<Flight>>>>,
    counters: Arc<Counters>,
    runner: Arc<SweepRunner>,
    pool: Option<WorkerPool>,
    workers: usize,
}

impl SimService {
    /// Opens the cache and starts the worker pool.
    ///
    /// # Errors
    ///
    /// Returns a message when the cache directory cannot be created.
    pub fn new(options: ServeOptions) -> Result<SimService, String> {
        let cache = ResultCache::open(&options.cache_dir, options.mem_capacity)?;
        let runner = SweepRunner::with_options(SweepOptions {
            retries: options.retries,
            job_budget_ms: options.job_budget_ms,
            ..SweepOptions::default()
        });
        Ok(SimService {
            cache: Arc::new(Mutex::new(cache)),
            inflight: Arc::new(Mutex::new(HashMap::new())),
            counters: Arc::new(Counters::default()),
            runner: Arc::new(runner),
            pool: (options.workers > 0).then(|| WorkerPool::new(options.workers)),
            workers: options.workers,
        })
    }

    /// Answers one job: cache hit, join of an identical in-flight
    /// simulation, or a fresh simulation on the worker pool. Blocks until
    /// the record is available.
    ///
    /// # Errors
    ///
    /// [`ServeError::CacheOnly`] on a miss with `workers = 0`,
    /// [`ServeError::Sim`] when the simulation itself fails.
    pub fn submit(&self, cfg: &SimConfig) -> Result<Answer, ServeError> {
        let key = cfg.cache_key();
        if let Some(record) = self.lookup(&key) {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Answer {
                key,
                cached: true,
                record,
            });
        }
        let Some(pool) = &self.pool else {
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::CacheOnly { key });
        };

        // Single-flight: the first requester of a key launches the
        // simulation; identical concurrent requests wait on the same
        // Flight and share the one result.
        let (flight, leader) = {
            let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
            match inflight.get(&key) {
                Some(flight) => (Arc::clone(flight), false),
                None => {
                    let flight = Arc::new(Flight::default());
                    inflight.insert(key.clone(), Arc::clone(&flight));
                    (Arc::clone(&flight), true)
                }
            }
        };
        if leader {
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            let task = self.simulation_task(key.clone(), cfg.clone(), Arc::clone(&flight));
            if let Err(e) = pool.submit(task) {
                // Unblock any joiners that raced in before the failure.
                self.remove_inflight(&key);
                flight.fill(Err(e.clone()));
                return Err(ServeError::Sim(e));
            }
        } else {
            self.counters.joined.fetch_add(1, Ordering::Relaxed);
        }
        match flight.wait() {
            Ok(record) => Ok(Answer {
                key,
                cached: false,
                record,
            }),
            Err(e) => Err(ServeError::Sim(e)),
        }
    }

    /// The closure a cache miss enqueues: simulate under the runner's
    /// containment, publish to the cache, then release the flight. The
    /// cache `put` happens *before* the in-flight entry is removed, so a
    /// late requester either joins the flight or hits the cache — never
    /// re-simulates.
    fn simulation_task(
        &self,
        key: String,
        cfg: SimConfig,
        flight: Arc<Flight>,
    ) -> Box<dyn FnOnce() + Send> {
        let cache = Arc::clone(&self.cache);
        let counters = Arc::clone(&self.counters);
        let runner = Arc::clone(&self.runner);
        let inflight = Arc::clone(&self.inflight);
        Box::new(move || {
            let job = SweepJob::new(key.clone(), move || {
                let record = Experiment::from_config(&cfg)
                    .map_err(|e| e.to_string())?
                    .run()
                    .map_err(|e| e.to_string())?;
                Ok(record.to_json())
            });
            counters.sim_runs.fetch_add(1, Ordering::Relaxed);
            let outcome = runner.run_one(&job);
            let result = match outcome.result {
                Ok(record) => {
                    let put = {
                        let mut cache = cache.lock().unwrap_or_else(|e| e.into_inner());
                        cache.put(&key, record.clone())
                    };
                    if let Err(e) = put {
                        // The record is still correct and still served;
                        // only persistence degraded.
                        eprintln!("[serve] cache write for {key} failed: {e}");
                    }
                    Ok(record)
                }
                Err(e) => {
                    counters.sim_failures.fetch_add(1, Ordering::Relaxed);
                    Err(e.to_string())
                }
            };
            {
                let mut map = inflight.lock().unwrap_or_else(|e| e.into_inner());
                map.remove(&key);
            }
            flight.fill(result);
        })
    }

    fn lookup(&self, key: &str) -> Option<Json> {
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        cache.get(key)
    }

    fn remove_inflight(&self, key: &str) {
        let mut map = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        map.remove(key);
    }

    /// Counts one handled HTTP request (the CLI's `/stats` reports it).
    fn count_request(&self) {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one malformed request.
    fn count_bad_request(&self) {
        self.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Simulations started since the service came up. A pure-hit workload
    /// keeps this at zero — the bench and the CI gate assert on it.
    pub fn sim_runs(&self) -> u64 {
        self.counters.sim_runs.load(Ordering::Relaxed)
    }

    /// The `GET /stats` document.
    pub fn stats_json(&self) -> Json {
        let c = &self.counters;
        let (cache_stats, mem_entries, disk_entries) = {
            let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            (cache.stats(), cache.len_mem(), cache.len_disk())
        };
        Json::obj([
            ("schema_version", Json::U64(SERVE_RESPONSE_SCHEMA_VERSION)),
            ("requests", Json::U64(c.requests.load(Ordering::Relaxed))),
            ("hits", Json::U64(c.hits.load(Ordering::Relaxed))),
            ("misses", Json::U64(c.misses.load(Ordering::Relaxed))),
            ("joined", Json::U64(c.joined.load(Ordering::Relaxed))),
            ("sim_runs", Json::U64(c.sim_runs.load(Ordering::Relaxed))),
            (
                "sim_failures",
                Json::U64(c.sim_failures.load(Ordering::Relaxed)),
            ),
            (
                "bad_requests",
                Json::U64(c.bad_requests.load(Ordering::Relaxed)),
            ),
            ("workers", Json::from(self.workers)),
            (
                "cache",
                Json::obj([
                    ("mem_entries", Json::from(mem_entries)),
                    ("disk_entries", Json::from(disk_entries)),
                    ("mem_hits", Json::U64(cache_stats.mem_hits)),
                    ("disk_hits", Json::U64(cache_stats.disk_hits)),
                    ("corrupt_entries", Json::U64(cache_stats.corrupt_entries)),
                    ("evictions", Json::U64(cache_stats.evictions)),
                ]),
            ),
        ])
    }
}

/// A parsed HTTP request.
#[derive(Debug)]
struct HttpRequest {
    method: String,
    path: String,
    content_type: String,
    body: String,
}

/// Reads one HTTP/1.1 request from the stream (size-bounded).
fn read_request(stream: &mut TcpStream) -> Result<HttpRequest, String> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err("request too large".to_string());
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-request".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head =
        std::str::from_utf8(&buf[..header_end]).map_err(|_| "non-utf8 header".to_string())?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().unwrap_or("").to_uppercase();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Err(format!("malformed request line `{request_line}`"));
    }
    let mut content_length = 0usize;
    let mut content_type = String::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| format!("bad content-length `{value}`"))?;
        } else if name.eq_ignore_ascii_case("content-type") {
            content_type = value.to_ascii_lowercase();
        }
    }
    if content_length > MAX_REQUEST_BYTES {
        return Err("request body too large".to_string());
    }
    let body_start = header_end + 4;
    let mut body = buf[body_start.min(buf.len())..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".to_string());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| "non-utf8 body".to_string())?;
    Ok(HttpRequest {
        method,
        path,
        content_type,
        body,
    })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes one JSON response and closes the stream.
fn write_response(stream: &mut TcpStream, status: u16, doc: &Json) {
    let mut body = doc.pretty();
    body.push('\n');
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_reason(status),
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn error_doc(message: &str) -> Json {
    Json::obj([("error", Json::from(message))])
}

/// Handles one connection: parse, route, respond.
fn handle_connection(service: &SimService, stream: &mut TcpStream, verbose: bool) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    service.count_request();
    let request = match read_request(stream) {
        Ok(request) => request,
        Err(e) => {
            service.count_bad_request();
            write_response(stream, 400, &error_doc(&e));
            return;
        }
    };
    let (status, doc) = route(service, &request);
    if verbose {
        eprintln!("[serve] {} {} -> {status}", request.method, request.path);
    }
    write_response(stream, status, &doc);
}

/// Routes a parsed request to the service.
fn route(service: &SimService, request: &HttpRequest) -> (u16, Json) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/run") => {
            let parsed = if request.content_type.contains("toml") {
                SimConfig::from_toml_str(&request.body)
            } else {
                SimConfig::from_json_str(&request.body)
            };
            let cfg = match parsed {
                Ok(cfg) => cfg,
                Err(e) => {
                    service.count_bad_request();
                    return (400, error_doc(&e.to_string()));
                }
            };
            match service.submit(&cfg) {
                Ok(answer) => (200, answer.to_response_json()),
                Err(e @ ServeError::CacheOnly { .. }) => (503, error_doc(&e.to_string())),
                Err(e @ ServeError::Sim(_)) => (500, error_doc(&e.to_string())),
            }
        }
        ("GET", "/stats") => (200, service.stats_json()),
        ("GET", "/healthz") => (200, Json::obj([("ok", Json::Bool(true))])),
        (method, path) => {
            service.count_bad_request();
            (
                404,
                error_doc(&format!("no such endpoint: {method} {path}")),
            )
        }
    }
}

/// The accept loop: each connection is handled on its own thread (the
/// worker pool, not the connection count, bounds simulation concurrency).
/// With `max_requests` set the loop exits cleanly after that many
/// connections — how tests and the CI gate shut the server down.
pub fn serve_http(
    service: Arc<SimService>,
    listener: TcpListener,
    max_requests: Option<u64>,
    verbose: bool,
) -> Result<(), String> {
    let mut handled = 0u64;
    let mut handlers = Vec::new();
    for stream in listener.incoming() {
        let mut stream = match stream {
            Ok(stream) => stream,
            Err(e) => {
                eprintln!("[serve] accept failed: {e}");
                continue;
            }
        };
        let service = Arc::clone(&service);
        handlers.push(std::thread::spawn(move || {
            handle_connection(&service, &mut stream, verbose);
        }));
        handled += 1;
        if max_requests.is_some_and(|max| handled >= max) {
            break;
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
    Ok(())
}

/// Minimal HTTP client for the server above: one request, one JSON
/// response. Used by `tenways serve --post/--stats`, the tests, and CI.
///
/// # Errors
///
/// Returns a message on connection failure or a malformed response.
pub fn http_call(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<(&str, &str)>, // (content type, payload)
) -> Result<(u16, Json), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    if let Some((content_type, payload)) = body {
        request.push_str(&format!(
            "Content-Type: {content_type}\r\nContent-Length: {}\r\n\r\n{payload}",
            payload.len()
        ));
    } else {
        request.push_str("\r\n");
    }
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| format!("receive: {e}"))?;
    let text = String::from_utf8(response).map_err(|_| "non-utf8 response".to_string())?;
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed response: no header terminator".to_string())?;
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line in `{head}`"))?;
    let doc = Json::parse(payload).map_err(|e| format!("malformed response body: {e}"))?;
    Ok((status, doc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tenways-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_cfg() -> SimConfig {
        SimConfig {
            workload: "lu".to_string(),
            threads: 2,
            scale: 1,
            ..SimConfig::default()
        }
    }

    fn service(dir: &std::path::Path, workers: usize) -> SimService {
        SimService::new(ServeOptions {
            workers,
            cache_dir: dir.to_path_buf(),
            ..ServeOptions::default()
        })
        .unwrap()
    }

    #[test]
    fn miss_then_hit_serves_identical_bytes_without_resimulating() {
        let dir = tmp_dir("hit");
        let svc = service(&dir, 1);
        let cfg = small_cfg();
        let cold = svc.submit(&cfg).unwrap();
        assert!(!cold.cached);
        assert_eq!(svc.sim_runs(), 1);
        let warm = svc.submit(&cfg).unwrap();
        assert!(warm.cached);
        assert_eq!(svc.sim_runs(), 1, "a hit must not simulate");
        assert_eq!(
            warm.record.to_string(),
            cold.record.to_string(),
            "hit must be byte-identical to the original record"
        );
        assert_eq!(warm.key, cold.key);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_only_service_serves_hits_and_refuses_misses() {
        let dir = tmp_dir("cache-only");
        let cfg = small_cfg();
        let primed = {
            let svc = service(&dir, 1);
            svc.submit(&cfg).unwrap()
        };
        // Same cache dir, worker pool disabled: the hit must come back
        // byte-identical with zero simulations; any other config misses
        // and is refused.
        let svc = service(&dir, 0);
        let hit = svc.submit(&cfg).unwrap();
        assert!(hit.cached);
        assert_eq!(svc.sim_runs(), 0);
        assert_eq!(hit.record.to_string(), primed.record.to_string());
        let other = SimConfig {
            seed: 99,
            ..small_cfg()
        };
        match svc.submit(&other) {
            Err(ServeError::CacheOnly { key }) => assert_eq!(key, other.cache_key()),
            other => panic!("expected CacheOnly, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_identical_requests_single_flight() {
        let dir = tmp_dir("joined");
        let svc = Arc::new(service(&dir, 2));
        let cfg = small_cfg();
        let answers: Vec<Answer> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let svc = Arc::clone(&svc);
                    let cfg = cfg.clone();
                    scope.spawn(move || svc.submit(&cfg).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // However the four requests interleaved, the simulation ran at
        // most... exactly once per cache fill: every response is identical.
        assert_eq!(svc.sim_runs(), 1, "identical requests share one run");
        let first = answers[0].record.to_string();
        for a in &answers {
            assert_eq!(a.record.to_string(), first);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failing_config_reports_sim_error_and_does_not_cache() {
        let dir = tmp_dir("fail");
        let svc = service(&dir, 1);
        let bad = SimConfig {
            workload: "no-such-kernel".to_string(),
            ..small_cfg()
        };
        match svc.submit(&bad) {
            Err(ServeError::Sim(msg)) => assert!(msg.contains("unknown workload"), "{msg}"),
            other => panic!("expected Sim error, got {other:?}"),
        }
        // Failures are not cached: a second submit fails again (runs again).
        assert_eq!(svc.sim_runs(), 1);
        assert!(svc.submit(&bad).is_err());
        assert_eq!(svc.sim_runs(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn http_round_trip_over_loopback() {
        let dir = tmp_dir("http");
        let svc = Arc::new(service(&dir, 1));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || serve_http(svc, listener, Some(4), false))
        };

        let body = r#"{"workload":"lu","threads":2,"scale":1}"#;
        let (status, first) =
            http_call(&addr, "POST", "/run", Some(("application/json", body))).unwrap();
        assert_eq!(status, 200);
        assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));

        // Same config as TOML: canonicalization makes it the same key.
        let toml = "workload = \"lu\"\nthreads = 2\nscale = 1\n";
        let (status, second) =
            http_call(&addr, "POST", "/run", Some(("application/toml", toml))).unwrap();
        assert_eq!(status, 200);
        assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            second.get("key").and_then(Json::as_str),
            first.get("key").and_then(Json::as_str)
        );
        assert_eq!(
            second.get("record").unwrap().to_string(),
            first.get("record").unwrap().to_string()
        );

        let (status, stats) = http_call(&addr, "GET", "/stats", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(stats.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("misses").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("sim_runs").and_then(Json::as_u64), Some(1));

        let (status, err) = http_call(
            &addr,
            "POST",
            "/run",
            Some(("application/json", r#"{"wrkload":"oops"}"#)),
        )
        .unwrap();
        assert_eq!(status, 400);
        assert!(err.get("error").is_some());

        server.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
