//! Simulation-as-a-service: the engine behind `tenways serve`.
//!
//! The paper catalogs ways to waste a parallel computer; the most complete
//! waste this repo could commit is re-running a deterministic simulation
//! whose answer it already produced. This module turns determinism into
//! serving capacity — and keeps the service itself from wasting *its*
//! parallel computer under load:
//!
//! * [`SimService`] — accepts [`SimConfig`] jobs, answers repeats from the
//!   two-tier content-addressed [`ResultCache`] (keyed on
//!   [`SimConfig::cache_key`]), and dispatches misses onto a persistent
//!   worker pool whose jobs run under the [`SweepRunner`]'s fail-soft
//!   containment (`catch_unwind`, retries, per-job wall budget).
//!   Concurrent requests for the same key are **single-flighted**: one
//!   simulation runs, every waiter shares its result.
//! * a **bounded admission queue** in front of the pool
//!   ([`ServeOptions::queue_depth`]): a miss that cannot get a queue slot
//!   is refused immediately with HTTP 503 + `Retry-After` instead of
//!   silently pinning a connection thread — backpressure at the front
//!   door, not serialization behind it. Joining an in-flight key never
//!   needs a slot, so a hot-key burst is admitted no matter how deep.
//! * **batch submission** ([`SimService::submit_batch`], `POST /batch`):
//!   a grid or config list is canonicalized to keys, deduplicated within
//!   the batch *and* against in-flight singles, and answered with per-key
//!   `cached`/`computed`/`queued` status — K duplicate configs cost one
//!   simulation.
//! * **async job handles**: a miss outlasting
//!   [`ServeOptions::sync_timeout_ms`] answers `202 Accepted` with its
//!   key; `GET /jobs/<key>` polls `pending`/`running`/`done`/`failed`
//!   without pinning a connection thread on a long simulation.
//! * counters on the hot path are **atomic and sharded** (perfbook-style
//!   partitioned counting: writers stripe across padded cache lines,
//!   readers sum) and `GET /stats` reads cache gauges from
//!   [`CacheCounters`] — stats traffic never takes the cache lock, so
//!   observing the service cannot slow it down.
//!
//! The HTTP layer speaks persistent HTTP/1.1: a connection carries a
//! request loop (`Connection: keep-alive`, the 1.1 default) until the
//! client closes, asks to close, or idles past [`KEEP_ALIVE_IDLE`] — so
//! a client issuing N requests pays one TCP handshake, not N. The
//! pooled [`HttpClient`] is the matching client; [`http_request`] stays
//! one-shot (`Connection: close`) for scripts and CI. The accept loop
//! ([`serve_http_shutdown`]) also takes a shutdown flag: raising it
//! stops accepting, lets every in-flight request finish (drain), and
//! answers the last response on each connection with
//! `Connection: close` — this is how a router observes a backend going
//! away without losing a request.
//!
//! Endpoints (all responses JSON):
//!
//! | method & path     | body            | response                           |
//! |-------------------|-----------------|------------------------------------|
//! | `POST /run`       | `SimConfig` JSON (or TOML with a `toml` content type) | `200 {schema_version, key, cached, record}`, `202 {key, status}` past the sync timeout, or `503` + `Retry-After` when the queue is full |
//! | `POST /batch`     | `{configs: [...]}`, a bare JSON array, or a sweep-grid document | `{schema_version, total, unique, results: [{label, key, status, ...}]}` |
//! | `GET /jobs/<key>` | —               | `{schema_version, key, status: pending\|running\|done\|failed, ...}` |
//! | `GET /stats`      | —               | counters: hits/misses, queue depth, rejections, cache tiers |
//! | `GET /healthz`    | —               | `{"ok": true}`                     |
//!
//! A hit serves the byte-identical `run_record.v1` document of the
//! original run without simulating anything; with `workers = 0` the
//! service is cache-only and a miss is refused with HTTP 503 (this is how
//! the tests prove hits never simulate).

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tenways_sim::json::{Json, ToJson};
use tenways_waste::{Experiment, SimConfig};

use crate::cache::{CacheCounters, ResultCache};
use crate::grid::SweepSpec;
use crate::sweep::{SweepJob, SweepOptions, SweepRunner};

/// Version of the serve response document layouts (`/run`, `/batch`,
/// `/jobs`, `/stats`); bumped on any breaking change. Mirrored in
/// `results/schema/serve_response.v2.json` (plus `serve_batch.v1.json`
/// and `serve_job.v1.json` for the batch and job-poll bodies).
pub const SERVE_RESPONSE_SCHEMA_VERSION: u64 = 2;

/// Largest request (headers + body) the server will read, in bytes.
const MAX_REQUEST_BYTES: usize = 4 << 20;

/// Per-connection socket timeout: a stalled peer cannot pin a handler
/// thread forever. Generous because a miss legitimately blocks for the
/// whole simulation.
pub(crate) const SOCKET_TIMEOUT: Duration = Duration::from_secs(600);

/// How long a keep-alive connection may sit idle between requests
/// before the server closes it.
pub const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(10);

/// Granularity of the blocking-read slices in the request reader: idle
/// handler threads re-check the shutdown flag this often, which bounds
/// how long a draining server waits on its parked keep-alive sockets.
const READ_SLICE: Duration = Duration::from_millis(50);

/// How often the accept loop polls for new connections (and re-checks
/// the shutdown flag) when nothing is arriving.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// How many recent job failures `GET /jobs/<key>` can still report.
const FAILURE_MEMORY: usize = 64;

/// The `Retry-After` seconds a queue-full rejection advertises.
const RETRY_AFTER_S: u64 = 1;

/// Shards in a [`ShardedCounter`]. Power of two so the shard pick is a
/// mask, sized for more cores than this repo's CI hosts have.
const COUNTER_SHARDS: usize = 16;

/// One cache line worth of counter: padding keeps two shards from
/// false-sharing a line, which is exactly the waste (invalidation
/// ping-pong) the underlying paper catalogs.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedCounter(AtomicU64);

/// A perfbook-style partitioned counter: writers stripe over per-thread
/// shards (no shared cache line on the hot path), readers sum the shards.
/// Reads are racy-by-design snapshots — fine for monotonic stats.
#[derive(Debug, Default)]
pub struct ShardedCounter {
    shards: [PaddedCounter; COUNTER_SHARDS],
}

impl ShardedCounter {
    /// Increments this thread's shard.
    pub fn incr(&self) {
        self.shards[shard_index()].0.fetch_add(1, Ordering::Relaxed);
    }

    /// Sums all shards (a racy snapshot of a monotonic count).
    pub fn sum(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Stable per-thread shard assignment: threads draw a ticket from a
/// global counter on first use, so long-lived worker and handler threads
/// spread evenly instead of hashing onto one line.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
    }
    SHARD.with(|s| *s)
}

/// Tuning for a [`SimService`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads simulating cache misses. `0` makes the service
    /// **cache-only**: every miss is refused ([`ServeError::CacheOnly`]),
    /// which is also how tests prove a hit never simulates.
    pub workers: usize,
    /// In-memory LRU capacity (entries).
    pub mem_capacity: usize,
    /// Directory of the disk tier (entry files + index).
    pub cache_dir: PathBuf,
    /// Disk-tier byte budget (`None` = unbounded): on overflow the cache
    /// evicts least-recently-accessed entries.
    pub disk_budget: Option<u64>,
    /// Admission bound: how many misses may wait for a worker at once.
    /// A miss past this bound is refused with [`ServeError::Rejected`]
    /// (HTTP 503 + `Retry-After`) instead of queueing unboundedly.
    /// Joining an already-in-flight key never consumes a slot.
    pub queue_depth: usize,
    /// How long a synchronous `submit` waits for a fresh simulation
    /// before answering `202`/`queued` (`None` = wait forever, the
    /// pre-queue behaviour).
    pub sync_timeout_ms: Option<u64>,
    /// Extra attempts per failed simulation (SweepRunner retry policy).
    pub retries: u32,
    /// Per-job wall budget in milliseconds (cooperative, like sweeps).
    pub job_budget_ms: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            mem_capacity: 128,
            cache_dir: crate::results_dir().join("cache"),
            disk_budget: None,
            queue_depth: 256,
            sync_timeout_ms: None,
            retries: 0,
            job_budget_ms: None,
        }
    }
}

/// Why a submitted job produced no record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The service is cache-only (`workers = 0`) and the key missed.
    CacheOnly {
        /// The canonical key that missed.
        key: String,
    },
    /// The admission queue is full; retry after backing off.
    Rejected {
        /// The canonical key that was refused.
        key: String,
        /// The configured queue bound.
        queue_depth: usize,
    },
    /// The simulation ran and failed (message from the sweep containment:
    /// experiment error, panic, or timeout).
    Sim(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::CacheOnly { key } => write!(
                f,
                "result {key} is not cached and the worker pool is disabled (workers = 0)"
            ),
            ServeError::Rejected { key, queue_depth } => write!(
                f,
                "admission queue full ({queue_depth} waiting); {key} rejected — retry later"
            ),
            ServeError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A successfully answered job.
#[derive(Debug, Clone)]
pub struct Answer {
    /// Canonical content-address of the request's configuration.
    pub key: String,
    /// Whether the record was served from the cache (`true`) or freshly
    /// simulated by this request (`false` — also the value joiners of an
    /// in-flight simulation see, since their request did trigger a wait).
    pub cached: bool,
    /// The `run_record.v1` document, byte-identical to the original run.
    pub record: Json,
}

impl Answer {
    /// The `POST /run` response document.
    pub fn to_response_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::U64(SERVE_RESPONSE_SCHEMA_VERSION)),
            ("key", Json::from(self.key.clone())),
            ("cached", Json::Bool(self.cached)),
            ("record", self.record.clone()),
        ])
    }
}

/// What a deadline-bounded submit produced.
#[derive(Debug, Clone)]
pub enum Submission {
    /// The record is available (hit, join, or fresh simulation).
    Ready(Answer),
    /// The simulation is still queued/running past the sync timeout;
    /// poll `GET /jobs/<key>`.
    Pending {
        /// The canonical key to poll.
        key: String,
    },
}

/// One `GET /jobs/<key>` verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum JobView {
    /// Admitted, waiting for a worker.
    Pending,
    /// A worker is simulating it right now.
    Running,
    /// The record is in the cache.
    Done(Json),
    /// The simulation failed; the service remembers recent failures.
    Failed(String),
    /// The service has never seen this key (or has forgotten a failure).
    Unknown,
}

impl JobView {
    /// The schema string for this state.
    pub fn status(&self) -> &'static str {
        match self {
            JobView::Pending => "pending",
            JobView::Running => "running",
            JobView::Done(_) => "done",
            JobView::Failed(_) => "failed",
            JobView::Unknown => "unknown",
        }
    }

    /// The `GET /jobs/<key>` response document.
    pub fn to_response_json(&self, key: &str) -> Json {
        let mut pairs = vec![
            (
                "schema_version".to_string(),
                Json::U64(SERVE_RESPONSE_SCHEMA_VERSION),
            ),
            ("key".to_string(), Json::from(key)),
            ("status".to_string(), Json::from(self.status())),
        ];
        match self {
            JobView::Done(record) => pairs.push(("record".to_string(), record.clone())),
            JobView::Failed(e) => pairs.push(("error".to_string(), Json::from(e.clone()))),
            _ => {}
        }
        Json::Obj(pairs)
    }
}

/// Per-key status of one batch item.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchStatus {
    /// Served from the cache without simulating.
    Cached(Json),
    /// Simulated (or joined) within the batch deadline.
    Computed(Json),
    /// Admitted but not finished by the deadline; poll `/jobs/<key>`.
    Queued,
    /// The admission queue was full; the key was not admitted.
    Rejected,
    /// The simulation failed (or the service is cache-only).
    Failed(String),
}

impl BatchStatus {
    /// The schema string for this status.
    pub fn status(&self) -> &'static str {
        match self {
            BatchStatus::Cached(_) => "cached",
            BatchStatus::Computed(_) => "computed",
            BatchStatus::Queued => "queued",
            BatchStatus::Rejected => "rejected",
            BatchStatus::Failed(_) => "failed",
        }
    }

    /// The served record, when there is one.
    pub fn record(&self) -> Option<&Json> {
        match self {
            BatchStatus::Cached(r) | BatchStatus::Computed(r) => Some(r),
            _ => None,
        }
    }
}

/// One labelled input item of a batch, resolved.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// The caller's label for this item (grid point label or `cfg[i]`).
    pub label: String,
    /// Canonical content-address of the item's configuration.
    pub key: String,
    /// What happened to the key.
    pub status: BatchStatus,
}

/// What [`SimService::submit_batch`] produced.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-input-item results, in input order (duplicates share a key and
    /// a status).
    pub items: Vec<BatchItem>,
    /// Distinct keys in the batch.
    pub unique: usize,
}

impl BatchReport {
    /// The `POST /batch` response document.
    pub fn to_response_json(&self) -> Json {
        let count = |s: &str| self.items.iter().filter(|i| i.status.status() == s).count();
        Json::obj([
            ("schema_version", Json::U64(SERVE_RESPONSE_SCHEMA_VERSION)),
            ("total", Json::from(self.items.len())),
            ("unique", Json::from(self.unique)),
            ("deduplicated", Json::from(self.items.len() - self.unique)),
            ("cached", Json::from(count("cached"))),
            ("computed", Json::from(count("computed"))),
            ("queued", Json::from(count("queued"))),
            ("rejected", Json::from(count("rejected"))),
            ("failed", Json::from(count("failed"))),
            (
                "results",
                Json::Arr(
                    self.items
                        .iter()
                        .map(|item| {
                            let mut pairs = vec![
                                ("label".to_string(), Json::from(item.label.clone())),
                                ("key".to_string(), Json::from(item.key.clone())),
                                ("status".to_string(), Json::from(item.status.status())),
                            ];
                            if let Some(record) = item.status.record() {
                                pairs.push(("record".to_string(), record.clone()));
                            }
                            if let BatchStatus::Failed(e) = &item.status {
                                pairs.push(("error".to_string(), Json::from(e.clone())));
                            }
                            Json::Obj(pairs)
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Service-level counters (monotonic since start). The request-path
/// counters are sharded; the rare-event ones are plain atomics.
#[derive(Debug, Default)]
struct Counters {
    /// Accepted TCP connections (each may carry many keep-alive requests).
    connections: ShardedCounter,
    requests: ShardedCounter,
    hits: ShardedCounter,
    misses: ShardedCounter,
    joined: ShardedCounter,
    rejected: AtomicU64,
    sim_runs: AtomicU64,
    sim_failures: AtomicU64,
    bad_requests: AtomicU64,
    /// Gauge: misses admitted to the queue, not yet picked up by a worker.
    queued: AtomicU64,
    /// Gauge: simulations currently executing.
    in_flight: AtomicU64,
    /// High-water mark of `in_flight`.
    peak_in_flight: AtomicU64,
}

/// One in-flight simulation that waiters rendezvous on.
#[derive(Debug, Default)]
struct Flight {
    slot: Mutex<Option<Result<Json, String>>>,
    done: Condvar,
    /// False while queued, true once a worker picked the job up.
    running: AtomicBool,
}

impl Flight {
    fn wait(&self) -> Result<Json, String> {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match &*slot {
                Some(result) => return result.clone(),
                None => slot = self.done.wait(slot).unwrap_or_else(|e| e.into_inner()),
            }
        }
    }

    /// Waits until the flight lands or `deadline` passes; `None` on
    /// timeout (the flight keeps going — the caller polls later).
    fn wait_until(&self, deadline: Instant) -> Option<Result<Json, String>> {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = &*slot {
                return Some(result.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .done
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            slot = guard;
        }
    }

    fn fill(&self, result: Result<Json, String>) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(result);
        self.done.notify_all();
    }
}

/// A persistent pool of worker threads draining submitted closures.
/// Dropping the pool closes the queue and joins every worker.
#[derive(Debug)]
struct WorkerPool {
    tx: Option<mpsc::Sender<Box<dyn FnOnce() + Send>>>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(workers: usize) -> WorkerPool {
        let (tx, rx) = mpsc::channel::<Box<dyn FnOnce() + Send>>();
        let rx = Arc::new(Mutex::new(rx));
        let threads = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    let task = {
                        let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                        guard.recv()
                    };
                    match task {
                        Ok(task) => task(),
                        Err(_) => break, // queue closed: pool is shutting down
                    }
                })
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            threads,
        }
    }

    fn submit(&self, task: Box<dyn FnOnce() + Send>) -> Result<(), String> {
        self.tx
            .as_ref()
            .expect("pool queue alive until drop")
            .send(task)
            .map_err(|_| "worker pool is shut down".to_string())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.tx = None; // close the queue; workers drain and exit
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The simulation service: content-addressed cache in front of a bounded
/// admission queue and a persistent, fail-soft worker pool. See the
/// [module docs](self).
#[derive(Debug)]
pub struct SimService {
    cache: Arc<Mutex<ResultCache>>,
    cache_counters: Arc<CacheCounters>,
    disk_budget: Option<u64>,
    inflight: Arc<Mutex<HashMap<String, Arc<Flight>>>>,
    /// Recent failures, newest last, capped at [`FAILURE_MEMORY`].
    failures: Arc<Mutex<Vec<(String, String)>>>,
    counters: Arc<Counters>,
    runner: Arc<SweepRunner>,
    pool: Option<WorkerPool>,
    workers: usize,
    queue_depth: usize,
    sync_timeout: Option<Duration>,
}

impl SimService {
    /// Opens the cache and starts the worker pool.
    ///
    /// # Errors
    ///
    /// Returns a message when the cache directory cannot be created.
    pub fn new(options: ServeOptions) -> Result<SimService, String> {
        let cache = ResultCache::open_budgeted(
            &options.cache_dir,
            options.mem_capacity,
            options.disk_budget,
        )?;
        let cache_counters = cache.counters();
        let runner = SweepRunner::with_options(SweepOptions {
            retries: options.retries,
            job_budget_ms: options.job_budget_ms,
            ..SweepOptions::default()
        });
        Ok(SimService {
            cache: Arc::new(Mutex::new(cache)),
            cache_counters,
            disk_budget: options.disk_budget,
            inflight: Arc::new(Mutex::new(HashMap::new())),
            failures: Arc::new(Mutex::new(Vec::new())),
            counters: Arc::new(Counters::default()),
            runner: Arc::new(runner),
            pool: (options.workers > 0).then(|| WorkerPool::new(options.workers)),
            workers: options.workers,
            queue_depth: options.queue_depth,
            sync_timeout: options.sync_timeout_ms.map(Duration::from_millis),
        })
    }

    /// The configured synchronous wait bound (`None` = wait forever).
    pub fn sync_timeout(&self) -> Option<Duration> {
        self.sync_timeout
    }

    /// Answers one job: cache hit, join of an identical in-flight
    /// simulation, or a fresh simulation on the worker pool. Blocks until
    /// the record is available.
    ///
    /// # Errors
    ///
    /// [`ServeError::CacheOnly`] on a miss with `workers = 0`,
    /// [`ServeError::Rejected`] when the admission queue is full,
    /// [`ServeError::Sim`] when the simulation itself fails.
    pub fn submit(&self, cfg: &SimConfig) -> Result<Answer, ServeError> {
        match self.submit_with_deadline(cfg, None)? {
            Submission::Ready(answer) => Ok(answer),
            Submission::Pending { .. } => unreachable!("no deadline, no pending"),
        }
    }

    /// [`SimService::submit`] with an explicit synchronous wait bound:
    /// a miss still unfinished after `timeout` answers
    /// [`Submission::Pending`] (the simulation keeps running; poll
    /// [`SimService::job_status`]). `None` waits forever.
    ///
    /// # Errors
    ///
    /// Same as [`SimService::submit`].
    pub fn submit_with_deadline(
        &self,
        cfg: &SimConfig,
        timeout: Option<Duration>,
    ) -> Result<Submission, ServeError> {
        let key = cfg.cache_key();
        if let Some(record) = self.lookup(&key) {
            self.counters.hits.incr();
            return Ok(Submission::Ready(Answer {
                key,
                cached: true,
                record,
            }));
        }
        let flight = match self.admit(&key, cfg)? {
            Admitted::Flight(flight) => flight,
            Admitted::Raced(record) => {
                // The flight landed and was removed between our cache miss
                // and the in-flight check; the cache has it now.
                self.counters.hits.incr();
                return Ok(Submission::Ready(Answer {
                    key,
                    cached: true,
                    record,
                }));
            }
        };
        let result = match timeout {
            None => flight.wait(),
            Some(timeout) => match flight.wait_until(Instant::now() + timeout) {
                Some(result) => result,
                None => return Ok(Submission::Pending { key }),
            },
        };
        match result {
            Ok(record) => Ok(Submission::Ready(Answer {
                key,
                cached: false,
                record,
            })),
            Err(e) => Err(ServeError::Sim(e)),
        }
    }

    /// Resolves a whole batch: every config is canonicalized, duplicate
    /// keys collapse onto one flight (within the batch and against any
    /// already-in-flight singles), cache hits answer immediately, and the
    /// admitted remainder is awaited until `timeout` (falling back to the
    /// service's sync timeout; `None` waits forever). Items not finished
    /// by the deadline report `queued` and stay pollable via
    /// [`SimService::job_status`].
    pub fn submit_batch(
        &self,
        configs: &[(String, SimConfig)],
        timeout: Option<Duration>,
    ) -> BatchReport {
        // Resolve each distinct key once, in first-appearance order.
        let keyed: Vec<(String, String, &SimConfig)> = configs
            .iter()
            .map(|(label, cfg)| (label.clone(), cfg.cache_key(), cfg))
            .collect();
        let mut resolved: HashMap<String, BatchStatus> = HashMap::new();
        let mut flights: Vec<(String, Arc<Flight>)> = Vec::new();
        for (_, key, cfg) in &keyed {
            if resolved.contains_key(key) || flights.iter().any(|(k, _)| k == key) {
                continue;
            }
            if let Some(record) = self.lookup(key) {
                self.counters.hits.incr();
                resolved.insert(key.clone(), BatchStatus::Cached(record));
                continue;
            }
            match self.admit(key, cfg) {
                Ok(Admitted::Flight(flight)) => flights.push((key.clone(), flight)),
                Ok(Admitted::Raced(record)) => {
                    self.counters.hits.incr();
                    resolved.insert(key.clone(), BatchStatus::Cached(record));
                }
                Err(ServeError::Rejected { .. }) => {
                    resolved.insert(key.clone(), BatchStatus::Rejected);
                }
                Err(e) => {
                    resolved.insert(key.clone(), BatchStatus::Failed(e.to_string()));
                }
            }
        }

        // Await the admitted flights under one shared deadline.
        let deadline = timeout.or(self.sync_timeout).map(|t| Instant::now() + t);
        for (key, flight) in flights {
            let result = match deadline {
                None => Some(flight.wait()),
                Some(deadline) => flight.wait_until(deadline),
            };
            let status = match result {
                Some(Ok(record)) => BatchStatus::Computed(record),
                Some(Err(e)) => BatchStatus::Failed(e),
                None => BatchStatus::Queued,
            };
            resolved.insert(key, status);
        }

        let unique = resolved.len();
        let items = keyed
            .into_iter()
            .map(|(label, key, _)| BatchItem {
                status: resolved.get(&key).cloned().unwrap_or(BatchStatus::Queued),
                label,
                key,
            })
            .collect();
        BatchReport { items, unique }
    }

    /// Where a key stands: queued, running, done (with the record),
    /// recently failed (with the error), or unknown. Reads are
    /// counter-neutral — polling a job does not skew hit/miss stats.
    pub fn job_status(&self, key: &str) -> JobView {
        // In-flight first: if present, it is pending or running. A flight
        // that lands between this check and the cache peek still answers
        // correctly (the cache peek below finds it).
        let flight = {
            let map = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
            map.get(key).cloned()
        };
        if let Some(flight) = flight {
            return if flight.running.load(Ordering::Relaxed) {
                JobView::Running
            } else {
                JobView::Pending
            };
        }
        let peeked = {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            cache.peek(key)
        };
        if let Some(record) = peeked {
            return JobView::Done(record);
        }
        let failures = self.failures.lock().unwrap_or_else(|e| e.into_inner());
        match failures.iter().rev().find(|(k, _)| k == key) {
            Some((_, e)) => JobView::Failed(e.clone()),
            None => JobView::Unknown,
        }
    }

    /// Single-flight admission: join an existing flight for `key`, or
    /// lead a new one through the bounded queue. Leading requires a queue
    /// slot; joining never does.
    fn admit(&self, key: &str, cfg: &SimConfig) -> Result<Admitted, ServeError> {
        let Some(pool) = &self.pool else {
            self.counters.misses.incr();
            return Err(ServeError::CacheOnly {
                key: key.to_string(),
            });
        };
        let (flight, leader) = {
            let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
            match inflight.get(key) {
                Some(flight) => (Arc::clone(flight), false),
                None => {
                    // Between our cache miss and this lock the previous
                    // flight may have landed; re-check the cache before
                    // leading a duplicate simulation.
                    if let Some(record) = {
                        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
                        cache.peek(key)
                    } {
                        return Ok(Admitted::Raced(record));
                    }
                    if !self.try_acquire_queue_slot() {
                        self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                        return Err(ServeError::Rejected {
                            key: key.to_string(),
                            queue_depth: self.queue_depth,
                        });
                    }
                    let flight = Arc::new(Flight::default());
                    inflight.insert(key.to_string(), Arc::clone(&flight));
                    (flight, true)
                }
            }
        };
        if leader {
            self.counters.misses.incr();
            let task = self.simulation_task(key.to_string(), cfg.clone(), Arc::clone(&flight));
            if let Err(e) = pool.submit(task) {
                // Unblock any joiners that raced in before the failure.
                self.release_queue_slot();
                self.remove_inflight(key);
                flight.fill(Err(e.clone()));
                return Err(ServeError::Sim(e));
            }
        } else {
            self.counters.joined.incr();
        }
        Ok(Admitted::Flight(flight))
    }

    /// Claims one admission-queue slot; `false` when the queue is full.
    /// CAS loop rather than blind increment so a refused request never
    /// transiently inflates the gauge.
    fn try_acquire_queue_slot(&self) -> bool {
        let queued = &self.counters.queued;
        let mut current = queued.load(Ordering::Relaxed);
        loop {
            if current >= self.queue_depth as u64 {
                return false;
            }
            match queued.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => current = seen,
            }
        }
    }

    fn release_queue_slot(&self) {
        self.counters.queued.fetch_sub(1, Ordering::Relaxed);
    }

    /// The closure a cache miss enqueues: simulate under the runner's
    /// containment, publish to the cache, then release the flight. The
    /// cache `put` happens *before* the in-flight entry is removed, so a
    /// late requester either joins the flight or hits the cache — never
    /// re-simulates.
    fn simulation_task(
        &self,
        key: String,
        cfg: SimConfig,
        flight: Arc<Flight>,
    ) -> Box<dyn FnOnce() + Send> {
        let cache = Arc::clone(&self.cache);
        let counters = Arc::clone(&self.counters);
        let runner = Arc::clone(&self.runner);
        let inflight = Arc::clone(&self.inflight);
        let failures = Arc::clone(&self.failures);
        Box::new(move || {
            // The job left the admission queue and entered execution.
            counters.queued.fetch_sub(1, Ordering::Relaxed);
            let running = counters.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
            counters
                .peak_in_flight
                .fetch_max(running, Ordering::Relaxed);
            flight.running.store(true, Ordering::Relaxed);

            let job = SweepJob::new(key.clone(), move || {
                let record = Experiment::from_config(&cfg)
                    .map_err(|e| e.to_string())?
                    .run()
                    .map_err(|e| e.to_string())?;
                Ok(record.to_json())
            });
            counters.sim_runs.fetch_add(1, Ordering::Relaxed);
            let outcome = runner.run_one(&job);
            let result = match outcome.result {
                Ok(record) => {
                    let put = {
                        let mut cache = cache.lock().unwrap_or_else(|e| e.into_inner());
                        cache.put(&key, record.clone())
                    };
                    if let Err(e) = put {
                        // The record is still correct and still served;
                        // only persistence degraded.
                        eprintln!("[serve] cache write for {key} failed: {e}");
                    }
                    Ok(record)
                }
                Err(e) => {
                    counters.sim_failures.fetch_add(1, Ordering::Relaxed);
                    let message = e.to_string();
                    let mut recent = failures.lock().unwrap_or_else(|e| e.into_inner());
                    recent.retain(|(k, _)| k != &key);
                    recent.push((key.clone(), message.clone()));
                    let overflow = recent.len().saturating_sub(FAILURE_MEMORY);
                    recent.drain(..overflow);
                    Err(message)
                }
            };
            {
                let mut map = inflight.lock().unwrap_or_else(|e| e.into_inner());
                map.remove(&key);
            }
            counters.in_flight.fetch_sub(1, Ordering::Relaxed);
            flight.fill(result);
        })
    }

    fn lookup(&self, key: &str) -> Option<Json> {
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        cache.get(key)
    }

    fn remove_inflight(&self, key: &str) {
        let mut map = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        map.remove(key);
    }

    /// Counts one handled HTTP request (the CLI's `/stats` reports it).
    fn count_request(&self) {
        self.counters.requests.incr();
    }

    /// Counts one accepted connection. With keep-alive, `requests >`
    /// `connections` is the visible proof that handshakes are reused.
    fn count_connection(&self) {
        self.counters.connections.incr();
    }

    /// Counts one malformed request.
    fn count_bad_request(&self) {
        self.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Simulations started since the service came up. A pure-hit workload
    /// keeps this at zero — the bench and the CI gate assert on it.
    pub fn sim_runs(&self) -> u64 {
        self.counters.sim_runs.load(Ordering::Relaxed)
    }

    /// Misses refused by the admission bound since the service came up.
    pub fn rejected(&self) -> u64 {
        self.counters.rejected.load(Ordering::Relaxed)
    }

    /// The `GET /stats` document. Reads only atomics (service counters
    /// and the cache's shared [`CacheCounters`]) — never the cache lock —
    /// so stats traffic cannot contend with the request hot path.
    pub fn stats_json(&self) -> Json {
        let c = &self.counters;
        let cc = &self.cache_counters;
        let load = |a: &AtomicU64| Json::U64(a.load(Ordering::Relaxed));
        Json::obj([
            ("schema_version", Json::U64(SERVE_RESPONSE_SCHEMA_VERSION)),
            ("connections", Json::U64(c.connections.sum())),
            ("requests", Json::U64(c.requests.sum())),
            ("hits", Json::U64(c.hits.sum())),
            ("misses", Json::U64(c.misses.sum())),
            ("joined", Json::U64(c.joined.sum())),
            ("rejected", load(&c.rejected)),
            ("queue_depth", load(&c.queued)),
            ("queue_capacity", Json::from(self.queue_depth)),
            ("in_flight", load(&c.in_flight)),
            ("peak_in_flight", load(&c.peak_in_flight)),
            ("sim_runs", load(&c.sim_runs)),
            ("sim_failures", load(&c.sim_failures)),
            ("bad_requests", load(&c.bad_requests)),
            ("workers", Json::from(self.workers)),
            (
                "cache",
                Json::obj([
                    ("mem_entries", load(&cc.mem_entries)),
                    ("disk_entries", load(&cc.disk_entries)),
                    ("disk_bytes", load(&cc.disk_bytes)),
                    (
                        "disk_budget_bytes",
                        match self.disk_budget {
                            Some(b) => Json::U64(b),
                            None => Json::Null,
                        },
                    ),
                    ("mem_hits", load(&cc.mem_hits)),
                    ("disk_hits", load(&cc.disk_hits)),
                    ("corrupt_entries", load(&cc.corrupt_entries)),
                    ("mem_evictions", load(&cc.mem_evictions)),
                    ("evicted", load(&cc.disk_evictions)),
                ]),
            ),
        ])
    }

    /// Pre-populates the result cache with every point of a grid before
    /// the service takes traffic (`tenways serve --warm`). Duplicate
    /// keys collapse first; already-cached keys are skipped. Cold keys
    /// simulate on up to `workers` scoped threads (at least one — a
    /// cache-only service can still be warmed, that is the point of it)
    /// under the usual fail-soft containment. Traffic-counter-neutral
    /// by design: warming uses `peek`/`put` directly, so the request
    /// and hit/miss counters still read zero when the listener opens —
    /// only `sim_runs`/`sim_failures` count, because those simulations
    /// really ran.
    pub fn warm(&self, points: &[(String, SimConfig)]) -> WarmReport {
        let mut unique: Vec<(String, String, &SimConfig)> = Vec::new();
        for (label, cfg) in points {
            let key = cfg.cache_key();
            if !unique.iter().any(|(_, k, _)| *k == key) {
                unique.push((label.clone(), key, cfg));
            }
        }
        let mut report = WarmReport {
            unique: unique.len(),
            ..WarmReport::default()
        };
        let cold: Vec<&(String, String, &SimConfig)> = unique
            .iter()
            .filter(|(_, key, _)| {
                let hit = {
                    let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
                    cache.peek(key).is_some()
                };
                if hit {
                    report.skipped += 1;
                }
                !hit
            })
            .collect();
        let width = self.workers.max(1).min(cold.len().max(1));
        let next = AtomicUsize::new(0);
        let outcomes: Mutex<Vec<(String, Result<(), String>)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..width {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some((label, key, cfg)) = cold.get(i) else {
                        break;
                    };
                    let job = SweepJob::new(key.clone(), {
                        let cfg = (*cfg).clone();
                        move || {
                            let record = Experiment::from_config(&cfg)
                                .map_err(|e| e.to_string())?
                                .run()
                                .map_err(|e| e.to_string())?;
                            Ok(record.to_json())
                        }
                    });
                    self.counters.sim_runs.fetch_add(1, Ordering::Relaxed);
                    let outcome = match self.runner.run_one(&job).result {
                        Ok(record) => {
                            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
                            cache.put(key, record)
                        }
                        Err(e) => {
                            self.counters.sim_failures.fetch_add(1, Ordering::Relaxed);
                            Err(e.to_string())
                        }
                    };
                    let mut out = outcomes.lock().unwrap_or_else(|e| e.into_inner());
                    out.push((label.clone(), outcome));
                });
            }
        });
        for (label, outcome) in outcomes.into_inner().unwrap_or_else(|e| e.into_inner()) {
            match outcome {
                Ok(()) => report.warmed += 1,
                Err(e) => report.failed.push((label, e)),
            }
        }
        report
    }
}

/// What [`SimService::warm`] did, point by point.
#[derive(Debug, Default, Clone)]
pub struct WarmReport {
    /// Distinct keys in the spec (duplicates collapse before warming).
    pub unique: usize,
    /// Keys freshly simulated and written to the cache.
    pub warmed: usize,
    /// Keys that were already cached.
    pub skipped: usize,
    /// `(label, error)` of points that failed to simulate (or persist).
    pub failed: Vec<(String, String)>,
}

/// What [`SimService::admit`] produced for a missed key.
enum Admitted {
    /// A flight to wait on (led or joined).
    Flight(Arc<Flight>),
    /// The previous flight landed during admission; here is its record.
    Raced(Json),
}

/// A parsed HTTP request.
#[derive(Debug)]
pub(crate) struct HttpRequest {
    pub(crate) method: String,
    pub(crate) path: String,
    pub(crate) content_type: String,
    pub(crate) body: String,
    /// Whether the client allows the connection to carry another request
    /// (HTTP/1.1 defaults to yes; `Connection: close` or HTTP/1.0
    /// without `Connection: keep-alive` says no).
    pub(crate) keep_alive: bool,
}

/// Reads one HTTP/1.1 request from the stream (size-bounded).
///
/// `carry` holds bytes read past the previous request on the same
/// keep-alive connection; leftovers past this request's body are put
/// back for the next call. Reads run in [`READ_SLICE`]-long slices so an
/// idle connection notices `shutdown` promptly. Returns `Ok(None)` when
/// the connection ends *between* requests — peer close, `idle_limit`
/// elapsed with no bytes, or shutdown raised — and `Err` when it dies
/// mid-request.
pub(crate) fn read_request(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    idle_limit: Duration,
    shutdown: Option<&AtomicBool>,
) -> Result<Option<HttpRequest>, String> {
    let mut buf: Vec<u8> = std::mem::take(carry);
    let mut chunk = [0u8; 4096];
    let _ = stream.set_read_timeout(Some(READ_SLICE));
    let started = Instant::now();
    let mut read_some = |buf: &mut Vec<u8>, started: Instant| -> Result<bool, String> {
        // One sliced read: Ok(true) appended bytes, Ok(false) got a
        // timeout slice (caller decides whether that ends the wait).
        match stream.read(&mut chunk) {
            Ok(0) => Err("closed".to_string()),
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                Ok(true)
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if started.elapsed() >= SOCKET_TIMEOUT {
                    Err("timed out mid-request".to_string())
                } else {
                    Ok(false)
                }
            }
            Err(e) => Err(format!("read: {e}")),
        }
    };
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err("request too large".to_string());
        }
        match read_some(&mut buf, started) {
            Ok(true) => {}
            Ok(false) if buf.is_empty() => {
                // Nothing started yet: this is the idle window where a
                // close (drain or idle timeout) loses no request.
                if shutdown.is_some_and(|s| s.load(Ordering::Relaxed))
                    || started.elapsed() >= idle_limit
                {
                    return Ok(None);
                }
            }
            Ok(false) => {}
            Err(e) if e == "closed" => {
                return if buf.is_empty() {
                    Ok(None)
                } else {
                    Err("connection closed mid-request".to_string())
                };
            }
            Err(e) => return Err(e),
        }
    };
    let head =
        std::str::from_utf8(&buf[..header_end]).map_err(|_| "non-utf8 header".to_string())?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().unwrap_or("").to_uppercase();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("HTTP/1.1").to_ascii_uppercase();
    if method.is_empty() || path.is_empty() {
        return Err(format!("malformed request line `{request_line}`"));
    }
    let mut content_length = 0usize;
    let mut content_type = String::new();
    let mut connection = String::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| format!("bad content-length `{value}`"))?;
        } else if name.eq_ignore_ascii_case("content-type") {
            content_type = value.to_ascii_lowercase();
        } else if name.eq_ignore_ascii_case("connection") {
            connection = value.to_ascii_lowercase();
        }
    }
    let keep_alive = if connection.contains("close") {
        false
    } else if version == "HTTP/1.0" {
        connection.contains("keep-alive")
    } else {
        true
    };
    if content_length > MAX_REQUEST_BYTES {
        return Err("request body too large".to_string());
    }
    let body_start = header_end + 4;
    let mut body = buf.split_off(body_start.min(buf.len()));
    while body.len() < content_length {
        match read_some(&mut body, started) {
            Ok(_) => {}
            Err(e) if e == "closed" => return Err("connection closed mid-body".to_string()),
            Err(e) => return Err(e),
        }
    }
    // Bytes past the body belong to the next pipelined request.
    *carry = body.split_off(content_length.min(body.len()));
    let body = String::from_utf8(body).map_err(|_| "non-utf8 body".to_string())?;
    Ok(Some(HttpRequest {
        method,
        path,
        content_type,
        body,
        keep_alive,
    }))
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes one JSON response (plus any extra headers). The `Connection`
/// header tells the client whether the server will read another request
/// from this socket.
pub(crate) fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    doc: &Json,
    keep_alive: bool,
) {
    let mut body = doc.pretty();
    body.push('\n');
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        status_reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    // One write for head + body: a split write would let Nagle hold the
    // body back until the head's delayed ACK (~40 ms per response on a
    // persistent connection).
    head.push_str(&body);
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.flush();
}

pub(crate) fn error_doc(message: &str) -> Json {
    Json::obj([("error", Json::from(message))])
}

/// The structured body of a queue-full rejection (paired with the
/// `Retry-After` header).
fn rejection_doc(key: &str, queue_depth: usize) -> Json {
    Json::obj([
        ("schema_version", Json::U64(SERVE_RESPONSE_SCHEMA_VERSION)),
        ("error", Json::from("admission queue full")),
        ("status", Json::from("rejected")),
        ("key", Json::from(key)),
        ("queue_depth", Json::from(queue_depth)),
        ("retry_after_s", Json::U64(RETRY_AFTER_S)),
    ])
}

/// Handles one connection: a keep-alive request loop. Each iteration
/// parses one request, routes it, and answers; the loop ends when the
/// client closes or asks to (`Connection: close`), the connection idles
/// out, a request is malformed, or the server is draining (the request
/// that already arrived is still answered — drained, not dropped).
fn handle_connection(
    service: &SimService,
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
    verbose: bool,
) {
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let mut carry = Vec::new();
    // The first request gets the full socket timeout; follow-ups on a
    // kept-alive socket only get the idle window.
    let mut idle_limit = SOCKET_TIMEOUT;
    loop {
        let request = match read_request(stream, &mut carry, idle_limit, Some(shutdown)) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(e) => {
                service.count_bad_request();
                write_response(stream, 400, &[], &error_doc(&e), false);
                return;
            }
        };
        service.count_request();
        let (status, headers, doc) = route(service, &request);
        if verbose {
            eprintln!("[serve] {} {} -> {status}", request.method, request.path);
        }
        let keep = request.keep_alive && !shutdown.load(Ordering::Relaxed);
        write_response(stream, status, &headers, &doc, keep);
        if !keep {
            return;
        }
        idle_limit = KEEP_ALIVE_IDLE;
    }
}

/// Parses a `POST /batch` body into labelled configs. Three accepted
/// shapes: a JSON object with a `configs` array (each element a bare
/// `SimConfig` object or a `{label, config}` wrapper), a bare JSON array
/// of the same, or a sweep-grid document (TOML, or JSON with a `grid`/
/// `sweep` section) expanded through [`SweepSpec`].
pub(crate) fn parse_batch_body(
    content_type: &str,
    body: &str,
) -> Result<Vec<(String, SimConfig)>, String> {
    let doc = if content_type.contains("toml") {
        tenways_sim::toml::parse_toml(body).map_err(|e| e.to_string())?
    } else {
        Json::parse(body).map_err(|e| e.to_string())?
    };
    let items = match &doc {
        Json::Arr(items) => Some(items.clone()),
        Json::Obj(_) => doc
            .get("configs")
            .and_then(Json::as_array)
            .map(<[Json]>::to_vec),
        _ => {
            return Err(format!(
                "batch body must be an object or array, got {}",
                doc.type_name()
            ))
        }
    };
    match items {
        Some(items) => items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let (label, cfg_doc) = match item.get("config") {
                    Some(cfg_doc) => (
                        item.get("label")
                            .and_then(Json::as_str)
                            .map_or_else(|| format!("cfg[{i}]"), str::to_string),
                        cfg_doc.clone(),
                    ),
                    None => (format!("cfg[{i}]"), item.clone()),
                };
                let mut cfg = SimConfig::default();
                cfg.apply_json(&cfg_doc)
                    .map_err(|e| format!("configs[{i}]: {e}"))?;
                Ok((label, cfg))
            })
            .collect(),
        None => {
            // No config list: treat the document as a sweep grid.
            let spec = SweepSpec::from_json(&doc, "batch")?;
            let points = spec.points()?;
            Ok(points.into_iter().map(|p| (p.label, p.config)).collect())
        }
    }
}

/// Routes a parsed request to the service.
fn route(service: &SimService, request: &HttpRequest) -> (u16, Vec<(&'static str, String)>, Json) {
    let plain = |status: u16, doc: Json| (status, Vec::new(), doc);
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/run") => {
            let parsed = if request.content_type.contains("toml") {
                SimConfig::from_toml_str(&request.body)
            } else {
                SimConfig::from_json_str(&request.body)
            };
            let cfg = match parsed {
                Ok(cfg) => cfg,
                Err(e) => {
                    service.count_bad_request();
                    return plain(400, error_doc(&e.to_string()));
                }
            };
            match service.submit_with_deadline(&cfg, service.sync_timeout()) {
                Ok(Submission::Ready(answer)) => plain(200, answer.to_response_json()),
                Ok(Submission::Pending { key }) => plain(
                    202,
                    Json::obj([
                        ("schema_version", Json::U64(SERVE_RESPONSE_SCHEMA_VERSION)),
                        ("key", Json::from(key)),
                        ("status", Json::from("pending")),
                    ]),
                ),
                Err(ServeError::Rejected { key, queue_depth }) => (
                    503,
                    vec![("Retry-After", RETRY_AFTER_S.to_string())],
                    rejection_doc(&key, queue_depth),
                ),
                Err(e @ ServeError::CacheOnly { .. }) => plain(503, error_doc(&e.to_string())),
                Err(e @ ServeError::Sim(_)) => plain(500, error_doc(&e.to_string())),
            }
        }
        ("POST", "/batch") => match parse_batch_body(&request.content_type, &request.body) {
            Ok(configs) => {
                let report = service.submit_batch(&configs, service.sync_timeout());
                plain(200, report.to_response_json())
            }
            Err(e) => {
                service.count_bad_request();
                plain(400, error_doc(&e))
            }
        },
        ("GET", "/stats") => plain(200, service.stats_json()),
        ("GET", "/healthz") => plain(200, Json::obj([("ok", Json::Bool(true))])),
        ("GET", path) if path.starts_with("/jobs/") => {
            let key = &path["/jobs/".len()..];
            let view = service.job_status(key);
            let status = if view == JobView::Unknown { 404 } else { 200 };
            plain(status, view.to_response_json(key))
        }
        (method, path) => {
            service.count_bad_request();
            plain(
                404,
                error_doc(&format!("no such endpoint: {method} {path}")),
            )
        }
    }
}

/// The accept loop: each connection is handled on its own thread (the
/// worker pool, not the connection count, bounds simulation concurrency).
/// With `max_requests` set the loop exits cleanly after that many
/// connections — how tests and the CI gate shut the server down.
pub fn serve_http(
    service: Arc<SimService>,
    listener: TcpListener,
    max_requests: Option<u64>,
    verbose: bool,
) -> Result<(), String> {
    serve_http_shutdown(
        service,
        listener,
        max_requests,
        verbose,
        Arc::new(AtomicBool::new(false)),
    )
}

/// [`serve_http`] with a drain switch: raising `shutdown` stops the
/// accept loop, lets requests already being handled finish, answers the
/// final response on every kept-alive socket with `Connection: close`,
/// and returns once all handler threads have exited. No request that
/// reached the server is dropped — this is the backend half of the
/// router's kill-and-reroute story.
pub fn serve_http_shutdown(
    service: Arc<SimService>,
    listener: TcpListener,
    max_requests: Option<u64>,
    verbose: bool,
    shutdown: Arc<AtomicBool>,
) -> Result<(), String> {
    accept_loop(
        listener,
        max_requests,
        &Arc::clone(&shutdown),
        |mut stream| {
            service.count_connection();
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                handle_connection(&service, &mut stream, &shutdown, verbose);
            })
        },
    )
}

/// The shared accept loop behind [`serve_http_shutdown`] and the
/// router's `route_http`: poll-accept (so the shutdown flag is noticed
/// without another connection), spawn one handler thread per accepted
/// socket, and join every handler before returning. `max_requests`
/// counts accepted *connections* — with keep-alive one connection may
/// carry many requests.
pub(crate) fn accept_loop(
    listener: TcpListener,
    max_requests: Option<u64>,
    shutdown: &AtomicBool,
    mut spawn_handler: impl FnMut(TcpStream) -> std::thread::JoinHandle<()>,
) -> Result<(), String> {
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("listener: {e}"))?;
    let mut handled = 0u64;
    let mut handlers = Vec::new();
    while !shutdown.load(Ordering::Relaxed) {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            Err(e) => {
                eprintln!("[serve] accept failed: {e}");
                continue;
            }
        };
        // The listener is nonblocking only so this loop can poll the
        // shutdown flag; accepted sockets block (with timeouts) as usual.
        if let Err(e) = stream.set_nonblocking(false) {
            eprintln!("[serve] accept failed: {e}");
            continue;
        }
        // Persistent connections make Nagle vs delayed-ACK stalls real;
        // responses are single writes, so nothing is left to coalesce.
        let _ = stream.set_nodelay(true);
        handlers.push(spawn_handler(stream));
        handled += 1;
        if max_requests.is_some_and(|max| handled >= max) {
            break;
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
    Ok(())
}

/// One parsed HTTP response: status, headers, JSON body.
#[derive(Debug)]
pub struct HttpReply {
    /// The response status code.
    pub status: u16,
    /// Response headers, lowercased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// The parsed JSON body.
    pub body: Json,
}

impl HttpReply {
    /// The first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Minimal HTTP client for the server above: one request, one JSON
/// response with headers. Used by `tenways serve --post/--stats`, the
/// tests, and CI.
///
/// # Errors
///
/// Returns a message on connection failure or a malformed response.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<(&str, &str)>, // (content type, payload)
) -> Result<HttpReply, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    if let Some((content_type, payload)) = body {
        request.push_str(&format!(
            "Content-Type: {content_type}\r\nContent-Length: {}\r\n\r\n{payload}",
            payload.len()
        ));
    } else {
        request.push_str("\r\n");
    }
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| format!("receive: {e}"))?;
    let text = String::from_utf8(response).map_err(|_| "non-utf8 response".to_string())?;
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed response: no header terminator".to_string())?;
    let (status, headers) = parse_reply_head(head)?;
    let body = Json::parse(payload).map_err(|e| format!("malformed response body: {e}"))?;
    Ok(HttpReply {
        status,
        headers,
        body,
    })
}

/// Parses an HTTP response head into (status, lowercased headers).
fn parse_reply_head(head: &str) -> Result<(u16, Vec<(String, String)>), String> {
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line in `{status_line}`"))?;
    let headers = lines
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    Ok((status, headers))
}

/// [`http_request`] without the headers — the historical client shape
/// most callers want.
///
/// # Errors
///
/// Same as [`http_request`].
pub fn http_call(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<(&str, &str)>, // (content type, payload)
) -> Result<(u16, Json), String> {
    let reply = http_request(addr, method, path, body)?;
    Ok((reply.status, reply.body))
}

/// Whether the server's response allows another request on the socket.
pub(crate) fn reply_keeps_alive(reply: &HttpReply) -> bool {
    !matches!(reply.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
}

/// Sends one keep-alive request on an already-connected stream and
/// reads the `Content-Length`-delimited reply (the stream stays usable
/// for the next request when [`reply_keeps_alive`] says so).
pub(crate) fn send_on_stream(
    stream: &mut TcpStream,
    host: &str,
    method: &str,
    path: &str,
    body: Option<(&str, &str)>, // (content type, payload)
) -> Result<HttpReply, String> {
    let mut request =
        format!("{method} {path} HTTP/1.1\r\nHost: {host}\r\nConnection: keep-alive\r\n");
    if let Some((content_type, payload)) = body {
        request.push_str(&format!(
            "Content-Type: {content_type}\r\nContent-Length: {}\r\n\r\n{payload}",
            payload.len()
        ));
    } else {
        request.push_str("\r\n");
    }
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    read_reply(stream)
}

/// Reads one HTTP response off the stream, bounded by `Content-Length`
/// (which this repo's server always sends) instead of waiting for EOF —
/// the difference that makes connection reuse possible.
fn read_reply(stream: &mut TcpStream) -> Result<HttpReply, String> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("receive: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-response".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head =
        std::str::from_utf8(&buf[..header_end]).map_err(|_| "non-utf8 response".to_string())?;
    let (status, headers) = parse_reply_head(head)?;
    let content_length: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .ok_or_else(|| "response missing content-length".to_string())?;
    let mut payload = buf.split_off((header_end + 4).min(buf.len()));
    while payload.len() < content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("receive: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-response".to_string());
        }
        payload.extend_from_slice(&chunk[..n]);
    }
    payload.truncate(content_length);
    let text = String::from_utf8(payload).map_err(|_| "non-utf8 response".to_string())?;
    let body = Json::parse(&text).map_err(|e| format!("malformed response body: {e}"))?;
    Ok(HttpReply {
        status,
        headers,
        body,
    })
}

/// A pooled keep-alive HTTP client: one client owns (at most) one
/// persistent connection and reuses it across requests, reconnecting
/// transparently when the server has since closed it. Not `Sync` — give
/// each client thread its own. The one-shot [`http_request`] remains
/// for fire-and-forget callers (CLI one-liners, CI probes).
#[derive(Debug)]
pub struct HttpClient {
    addr: String,
    conn: Option<TcpStream>,
}

impl HttpClient {
    /// A client for `host:port` (connects lazily on first request).
    pub fn new(addr: impl Into<String>) -> HttpClient {
        HttpClient {
            addr: addr.into(),
            conn: None,
        }
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether a pooled connection is currently held open.
    pub fn connected(&self) -> bool {
        self.conn.is_some()
    }

    /// Sends one request. A failure on a *reused* connection gets one
    /// retry on a fresh connection — the server may have idle-closed the
    /// pooled socket since the last request, which is not an error.
    ///
    /// # Errors
    ///
    /// Returns a message on connection failure or a malformed response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<(&str, &str)>, // (content type, payload)
    ) -> Result<HttpReply, String> {
        let pooled = self.conn.is_some();
        match self.send(method, path, body) {
            Err(_) if pooled => self.send(method, path, body),
            outcome => outcome,
        }
    }

    fn send(
        &mut self,
        method: &str,
        path: &str,
        body: Option<(&str, &str)>,
    ) -> Result<HttpReply, String> {
        let mut stream = match self.conn.take() {
            Some(stream) => stream,
            None => {
                let stream = TcpStream::connect(&self.addr)
                    .map_err(|e| format!("cannot connect to {}: {e}", self.addr))?;
                let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
                let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
                let _ = stream.set_nodelay(true);
                stream
            }
        };
        let reply = send_on_stream(&mut stream, &self.addr, method, path, body)?;
        if reply_keeps_alive(&reply) {
            self.conn = Some(stream);
        }
        Ok(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tenways-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_cfg() -> SimConfig {
        SimConfig {
            workload: "lu".to_string(),
            threads: 2,
            scale: 1,
            ..SimConfig::default()
        }
    }

    /// A config that simulates long enough (~1–2 s in debug builds) to
    /// observe in-flight states and exercise admission rejection.
    /// Runtime at this scale is strongly seed-sensitive (some seeds run
    /// 50× longer) — callers pass only empirically-vetted fast seeds
    /// (1, 2, 4, 6, 7, 8).
    fn slow_cfg(seed: u64) -> SimConfig {
        SimConfig {
            workload: "oltp".to_string(),
            threads: 8,
            scale: 96,
            seed,
            ..SimConfig::default()
        }
    }

    fn service(dir: &std::path::Path, workers: usize) -> SimService {
        SimService::new(ServeOptions {
            workers,
            cache_dir: dir.to_path_buf(),
            ..ServeOptions::default()
        })
        .unwrap()
    }

    #[test]
    fn miss_then_hit_serves_identical_bytes_without_resimulating() {
        let dir = tmp_dir("hit");
        let svc = service(&dir, 1);
        let cfg = small_cfg();
        let cold = svc.submit(&cfg).unwrap();
        assert!(!cold.cached);
        assert_eq!(svc.sim_runs(), 1);
        let warm = svc.submit(&cfg).unwrap();
        assert!(warm.cached);
        assert_eq!(svc.sim_runs(), 1, "a hit must not simulate");
        assert_eq!(
            warm.record.to_string(),
            cold.record.to_string(),
            "hit must be byte-identical to the original record"
        );
        assert_eq!(warm.key, cold.key);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_only_service_serves_hits_and_refuses_misses() {
        let dir = tmp_dir("cache-only");
        let cfg = small_cfg();
        let primed = {
            let svc = service(&dir, 1);
            svc.submit(&cfg).unwrap()
        };
        // Same cache dir, worker pool disabled: the hit must come back
        // byte-identical with zero simulations; any other config misses
        // and is refused.
        let svc = service(&dir, 0);
        let hit = svc.submit(&cfg).unwrap();
        assert!(hit.cached);
        assert_eq!(svc.sim_runs(), 0);
        assert_eq!(hit.record.to_string(), primed.record.to_string());
        let other = SimConfig {
            seed: 99,
            ..small_cfg()
        };
        match svc.submit(&other) {
            Err(ServeError::CacheOnly { key }) => assert_eq!(key, other.cache_key()),
            other => panic!("expected CacheOnly, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_identical_requests_single_flight() {
        let dir = tmp_dir("joined");
        let svc = Arc::new(service(&dir, 2));
        let cfg = small_cfg();
        let answers: Vec<Answer> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let svc = Arc::clone(&svc);
                    let cfg = cfg.clone();
                    scope.spawn(move || svc.submit(&cfg).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // However the four requests interleaved, the simulation ran at
        // most... exactly once per cache fill: every response is identical.
        assert_eq!(svc.sim_runs(), 1, "identical requests share one run");
        let first = answers[0].record.to_string();
        for a in &answers {
            assert_eq!(a.record.to_string(), first);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failing_config_reports_sim_error_and_does_not_cache() {
        let dir = tmp_dir("fail");
        let svc = service(&dir, 1);
        let bad = SimConfig {
            workload: "no-such-kernel".to_string(),
            ..small_cfg()
        };
        match svc.submit(&bad) {
            Err(ServeError::Sim(msg)) => assert!(msg.contains("unknown workload"), "{msg}"),
            other => panic!("expected Sim error, got {other:?}"),
        }
        // Failures are not cached: a second submit fails again (runs again).
        assert_eq!(svc.sim_runs(), 1);
        assert!(svc.submit(&bad).is_err());
        assert_eq!(svc.sim_runs(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queue_full_rejects_immediately_without_deadlock() {
        // 1 worker, queue depth 1, and 2x-oversubscribed distinct cold
        // keys submitted concurrently: at most 1 running + 1 queued at any
        // moment, so some submits must be rejected — and every thread must
        // return (rejection is immediate, not a blocked connection).
        let dir = tmp_dir("queue-full");
        let svc = Arc::new(
            SimService::new(ServeOptions {
                workers: 1,
                queue_depth: 1,
                cache_dir: dir.clone(),
                ..ServeOptions::default()
            })
            .unwrap(),
        );
        let outcomes: Vec<Result<Answer, ServeError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = [1u64, 2, 4, 6]
                .into_iter()
                .map(|seed| {
                    let svc = Arc::clone(&svc);
                    scope.spawn(move || svc.submit(&slow_cfg(seed)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let ok = outcomes.iter().filter(|o| o.is_ok()).count();
        let rejected = outcomes
            .iter()
            .filter(|o| matches!(o, Err(ServeError::Rejected { .. })))
            .count();
        assert_eq!(ok + rejected, 4, "every submit resolves: {outcomes:?}");
        assert!(rejected >= 1, "oversubscription must reject: {outcomes:?}");
        assert!(ok >= 1, "admitted work still completes");
        assert_eq!(svc.rejected(), rejected as u64);
        // The queue drains: a later submit of a fresh key is admitted.
        assert!(svc.submit(&small_cfg()).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hot_key_joins_never_consume_queue_slots() {
        // queue_depth 1 with 4 identical concurrent requests: the leader
        // takes the only slot, the joiners join — nobody is rejected.
        let dir = tmp_dir("join-slots");
        let svc = Arc::new(
            SimService::new(ServeOptions {
                workers: 1,
                queue_depth: 1,
                cache_dir: dir.clone(),
                ..ServeOptions::default()
            })
            .unwrap(),
        );
        let cfg = small_cfg();
        let answers: Vec<Result<Answer, ServeError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let svc = Arc::clone(&svc);
                    let cfg = cfg.clone();
                    scope.spawn(move || svc.submit(&cfg))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(answers.iter().all(|a| a.is_ok()), "{answers:?}");
        assert_eq!(svc.rejected(), 0);
        assert_eq!(svc.sim_runs(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn job_lifecycle_pending_running_done_and_failed() {
        let dir = tmp_dir("jobs");
        let svc = service(&dir, 1);
        assert_eq!(svc.job_status("no-such-key"), JobView::Unknown);

        // A fast sync timeout turns a slow miss into a pending handle.
        let cfg = slow_cfg(7);
        let key = cfg.cache_key();
        match svc
            .submit_with_deadline(&cfg, Some(Duration::from_millis(1)))
            .unwrap()
        {
            Submission::Pending { key: k } => assert_eq!(k, key),
            Submission::Ready(_) => {
                // The host was fast enough to finish inside 1 ms; the
                // remaining lifecycle still holds.
            }
        }
        // Poll until done; in between the status must be one of the
        // in-flight states, never unknown.
        let deadline = Instant::now() + Duration::from_secs(60);
        let record = loop {
            match svc.job_status(&key) {
                JobView::Done(record) => break record,
                JobView::Pending | JobView::Running => {
                    assert!(Instant::now() < deadline, "job never completed");
                    std::thread::sleep(Duration::from_millis(10));
                }
                other => panic!("unexpected job state {other:?}"),
            }
        };
        // Done answers the byte-identical record and a repeat submit hits.
        let warm = svc.submit(&cfg).unwrap();
        assert!(warm.cached);
        assert_eq!(warm.record.to_string(), record.to_string());
        assert_eq!(svc.sim_runs(), 1);

        // A failing config lands in the failure memory.
        let bad = SimConfig {
            workload: "no-such-kernel".to_string(),
            ..small_cfg()
        };
        let bad_key = bad.cache_key();
        assert!(svc.submit(&bad).is_err());
        match svc.job_status(&bad_key) {
            JobView::Failed(msg) => assert!(msg.contains("unknown workload"), "{msg}"),
            other => panic!("expected Failed, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_with_duplicate_keys_runs_exactly_one_simulation() {
        let dir = tmp_dir("batch-dedup");
        let svc = service(&dir, 2);
        let cfg = small_cfg();
        let configs: Vec<(String, SimConfig)> =
            (0..4).map(|i| (format!("dup{i}"), cfg.clone())).collect();
        let report = svc.submit_batch(&configs, None);
        assert_eq!(report.items.len(), 4);
        assert_eq!(report.unique, 1);
        assert_eq!(svc.sim_runs(), 1, "duplicates share one simulation");
        let first = report.items[0].status.record().unwrap().to_string();
        for item in &report.items {
            assert_eq!(item.status.status(), "computed");
            assert_eq!(item.status.record().unwrap().to_string(), first);
            assert_eq!(item.key, report.items[0].key);
        }
        // Resubmitting the same batch is all cached, still one sim total.
        let again = svc.submit_batch(&configs, None);
        assert!(again.items.iter().all(|i| i.status.status() == "cached"));
        assert_eq!(svc.sim_runs(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_mixes_cached_computed_and_failed() {
        let dir = tmp_dir("batch-mixed");
        let svc = service(&dir, 2);
        let warm = small_cfg();
        svc.submit(&warm).unwrap(); // prime one key
        let cold = SimConfig {
            seed: 41,
            ..small_cfg()
        };
        let bad = SimConfig {
            workload: "no-such-kernel".to_string(),
            ..small_cfg()
        };
        let report = svc.submit_batch(
            &[
                ("warm".to_string(), warm),
                ("cold".to_string(), cold),
                ("bad".to_string(), bad),
            ],
            None,
        );
        let statuses: Vec<&str> = report.items.iter().map(|i| i.status.status()).collect();
        assert_eq!(statuses, ["cached", "computed", "failed"]);
        assert_eq!(report.unique, 3);
        assert_eq!(svc.sim_runs(), 3, "warm key did not re-simulate");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_deduplicates_against_inflight_singles() {
        let dir = tmp_dir("batch-inflight");
        let svc = Arc::new(service(&dir, 1));
        let cfg = slow_cfg(8);
        // Launch a single slow request, then batch the same config while
        // it is still in flight: the batch must join, not re-run.
        let single = {
            let svc = Arc::clone(&svc);
            let cfg = cfg.clone();
            std::thread::spawn(move || svc.submit(&cfg).unwrap())
        };
        // Wait until the single is actually in flight (bounded: the
        // slow config outlasts this by a wide margin).
        let key = cfg.cache_key();
        let deadline = Instant::now() + Duration::from_secs(30);
        while svc.job_status(&key) == JobView::Unknown && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let report = svc.submit_batch(&[("joined".to_string(), cfg.clone())], None);
        single.join().unwrap();
        assert_eq!(svc.sim_runs(), 1, "batch joined the in-flight single");
        let status = report.items[0].status.status();
        assert!(
            status == "computed" || status == "cached",
            "joined batch item resolves, got {status}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn http_round_trip_over_loopback() {
        let dir = tmp_dir("http");
        let svc = Arc::new(service(&dir, 1));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || serve_http(svc, listener, Some(6), false))
        };

        let body = r#"{"workload":"lu","threads":2,"scale":1}"#;
        let (status, first) =
            http_call(&addr, "POST", "/run", Some(("application/json", body))).unwrap();
        assert_eq!(status, 200);
        assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
        assert_eq!(
            first.get("schema_version").and_then(Json::as_u64),
            Some(SERVE_RESPONSE_SCHEMA_VERSION)
        );

        // Same config as TOML: canonicalization makes it the same key.
        let toml = "workload = \"lu\"\nthreads = 2\nscale = 1\n";
        let (status, second) =
            http_call(&addr, "POST", "/run", Some(("application/toml", toml))).unwrap();
        assert_eq!(status, 200);
        assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            second.get("key").and_then(Json::as_str),
            first.get("key").and_then(Json::as_str)
        );
        assert_eq!(
            second.get("record").unwrap().to_string(),
            first.get("record").unwrap().to_string()
        );

        // The completed job is pollable by key.
        let key = first.get("key").and_then(Json::as_str).unwrap();
        let (status, job) = http_call(&addr, "GET", &format!("/jobs/{key}"), None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(job.get("status").and_then(Json::as_str), Some("done"));
        assert_eq!(
            job.get("record").unwrap().to_string(),
            first.get("record").unwrap().to_string()
        );

        let (status, stats) = http_call(&addr, "GET", "/stats", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(stats.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("misses").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("sim_runs").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("queue_depth").and_then(Json::as_u64), Some(0));
        assert_eq!(stats.get("rejected").and_then(Json::as_u64), Some(0));
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("disk_entries").and_then(Json::as_u64), Some(1));
        assert!(cache.get("disk_bytes").and_then(Json::as_u64).unwrap() > 0);
        assert_eq!(cache.get("evicted").and_then(Json::as_u64), Some(0));

        let (status, err) = http_call(
            &addr,
            "POST",
            "/run",
            Some(("application/json", r#"{"wrkload":"oops"}"#)),
        )
        .unwrap();
        assert_eq!(status, 400);
        assert!(err.get("error").is_some());

        let (status, _) = http_call(&addr, "GET", "/jobs/no-such-key", None).unwrap();
        assert_eq!(status, 404);

        server.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn http_batch_dedups_and_rejection_carries_retry_after() {
        let dir = tmp_dir("http-batch");
        let svc = Arc::new(
            SimService::new(ServeOptions {
                workers: 1,
                queue_depth: 1,
                cache_dir: dir.clone(),
                ..ServeOptions::default()
            })
            .unwrap(),
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || serve_http(svc, listener, Some(3), false))
        };

        // A batch of 4 duplicates (mixed bare and labelled forms) runs
        // exactly one simulation.
        let body = r#"{"configs": [
            {"workload":"lu","threads":2,"scale":1},
            {"label":"named","config":{"workload":"lu","threads":2,"scale":1}},
            {"workload":"lu","threads":2,"scale":1},
            {"workload":"lu","threads":2,"scale":1}
        ]}"#;
        let reply =
            http_request(&addr, "POST", "/batch", Some(("application/json", body))).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.body.get("total").and_then(Json::as_u64), Some(4));
        assert_eq!(reply.body.get("unique").and_then(Json::as_u64), Some(1));
        assert_eq!(
            reply.body.get("deduplicated").and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(svc.sim_runs(), 1);
        let results = reply.body.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results.len(), 4);
        assert_eq!(
            results[1].get("label").and_then(Json::as_str),
            Some("named")
        );

        // A TOML grid body expands like a sweep and reuses the warm key.
        let grid = "workload = \"lu\"\nscale = 1\n\n[grid]\nthreads = [2]\n";
        let reply =
            http_request(&addr, "POST", "/batch", Some(("application/toml", grid))).unwrap();
        assert_eq!(reply.status, 200);
        let results = reply.body.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(
            results[0].get("status").and_then(Json::as_str),
            Some("cached")
        );
        assert_eq!(svc.sim_runs(), 1, "grid batch reused the warm key");

        // Queue-full rejection: saturate the 1-deep queue from inside
        // (occupy the worker, then the slot), then probe over HTTP. The
        // filler waits for the blocker to reach the worker — submitted
        // earlier it would race the blocker for the single queue slot and
        // be rejected itself. The slow configs hold worker and slot for
        // seconds; the bounds only guard against a pathological scheduler.
        let deadline = Instant::now() + Duration::from_secs(30);
        let blocker = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                let _ = svc.submit(&slow_cfg(1));
            })
        };
        while svc.counters.in_flight.load(Ordering::Relaxed) < 1 {
            assert!(
                Instant::now() < deadline,
                "blocker never reached the worker"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let filler = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                let _ = svc.submit(&slow_cfg(2));
            })
        };
        while svc.counters.queued.load(Ordering::Relaxed) < 1 {
            assert!(Instant::now() < deadline, "queue slot never filled");
            std::thread::sleep(Duration::from_millis(1));
        }
        let probe = SimConfig::default();
        let probe_body = probe.to_json().to_string();
        let reply = http_request(
            &addr,
            "POST",
            "/run",
            Some(("application/json", &probe_body)),
        )
        .unwrap();
        assert_eq!(reply.status, 503);
        assert_eq!(reply.header("retry-after"), Some("1"));
        assert_eq!(
            reply.body.get("status").and_then(Json::as_str),
            Some("rejected")
        );
        assert!(reply.body.get("retry_after_s").is_some());
        blocker.join().unwrap();
        filler.join().unwrap();

        server.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keep_alive_connection_carries_many_requests() {
        let dir = tmp_dir("keep-alive");
        let svc = Arc::new(service(&dir, 1));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // max_requests counts *connections*: the server retires after
        // one socket, so every request below must share it.
        let server = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || serve_http(svc, listener, Some(1), false))
        };

        let mut client = HttpClient::new(addr);
        let body = small_cfg().to_json().to_string();
        let first = client
            .request("POST", "/run", Some(("application/json", &body)))
            .unwrap();
        assert_eq!(first.status, 200);
        assert_eq!(first.header("connection"), Some("keep-alive"));
        let second = client
            .request("POST", "/run", Some(("application/json", &body)))
            .unwrap();
        assert_eq!(second.status, 200);
        assert_eq!(
            second.body.get("cached").and_then(Json::as_bool),
            Some(true)
        );
        let stats = client.request("GET", "/stats", None).unwrap();
        assert_eq!(
            stats.body.get("connections").and_then(Json::as_u64),
            Some(1),
            "three requests, one TCP connection"
        );
        assert_eq!(stats.body.get("requests").and_then(Json::as_u64), Some(3));

        drop(client); // EOF ends the handler's request loop
        server.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_drains_parked_keep_alive_sockets_promptly() {
        let dir = tmp_dir("drain");
        let svc = Arc::new(service(&dir, 1));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let server = {
            let svc = Arc::clone(&svc);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || serve_http_shutdown(svc, listener, None, false, shutdown))
        };

        // Park a keep-alive connection idle on the server, then drain:
        // the handler must notice the flag long before the 10 s idle
        // window and the accept loop must join it.
        let mut client = HttpClient::new(addr);
        let body = small_cfg().to_json().to_string();
        let reply = client
            .request("POST", "/run", Some(("application/json", &body)))
            .unwrap();
        assert_eq!(reply.status, 200);
        assert!(client.connected(), "client pooled the connection");

        let begun = Instant::now();
        shutdown.store(true, Ordering::Relaxed);
        server.join().unwrap().unwrap();
        assert!(
            begun.elapsed() < Duration::from_secs(2),
            "drain took {:?} with a parked keep-alive socket",
            begun.elapsed()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_prepopulates_cache_and_stays_counter_neutral() {
        let dir = tmp_dir("warm");
        let svc = service(&dir, 2);
        let points = vec![
            ("a".to_string(), small_cfg()),
            (
                "b".to_string(),
                SimConfig {
                    seed: 11,
                    ..small_cfg()
                },
            ),
            ("a-again".to_string(), small_cfg()), // duplicate key
        ];
        let report = svc.warm(&points);
        assert!(report.failed.is_empty(), "failures: {:?}", report.failed);
        assert_eq!(report.unique, 2);
        assert_eq!(report.warmed, 2);
        assert_eq!(report.skipped, 0);
        assert_eq!(svc.sim_runs(), 2);

        // Counter-neutral: the listener-facing stats still read zero.
        let stats = svc.stats_json();
        assert_eq!(stats.get("hits").and_then(Json::as_u64), Some(0));
        assert_eq!(stats.get("misses").and_then(Json::as_u64), Some(0));
        assert_eq!(stats.get("requests").and_then(Json::as_u64), Some(0));

        // Warming again skips everything; a real submit is a pure hit.
        let again = svc.warm(&points);
        assert_eq!(again.warmed, 0);
        assert_eq!(again.skipped, 2);
        assert_eq!(svc.sim_runs(), 2);
        let answer = svc.submit(&small_cfg()).unwrap();
        assert!(answer.cached, "warmed key must be served from cache");
        assert_eq!(svc.sim_runs(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
