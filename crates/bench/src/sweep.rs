//! Fail-soft parallel sweep engine: [`SweepRunner`].
//!
//! The old `run_parallel` pulled jobs from a `Mutex<iterator>` and panicked
//! on the first failing experiment; the unwind inside `std::thread::scope`
//! poisoned the queue mutex, so every sibling worker then panicked on
//! `lock().unwrap()`, masking the root error and throwing away all finished
//! work. This module replaces that with a work queue dispatched off a
//! single atomic counter (no lock on the claim path) where every job
//! produces its own `Result`:
//!
//! * a job that returns `Err` or **panics** fails *only itself* — the
//!   panic is contained with [`std::panic::catch_unwind`] and surfaced as
//!   [`SweepError::Panicked`]; siblings keep running;
//! * failed jobs can be **retried** with exponential backoff
//!   ([`SweepOptions::retries`] / [`SweepOptions::backoff_ms`]);
//! * a job whose wall-clock time exceeds [`SweepOptions::job_budget_ms`]
//!   is reported as [`SweepError::TimedOut`] (cooperatively — the run is
//!   not killed mid-simulation, its result is discarded on return);
//! * **cancellation** is cooperative: once a [`CancelToken`] fires (or
//!   [`SweepOptions::fail_fast`] trips it on the first failure), jobs that
//!   have not started yet complete immediately as
//!   [`SweepError::Cancelled`] and report as skipped.
//!
//! Results come back in input order as a [`SweepBatch`], which knows how to
//! render per-row status JSON (`ok` / `failed` / `skipped`) for the
//! results emitter.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use tenways_sim::json::Json;
use tenways_waste::{Experiment, RunRecord};

/// Why one sweep job produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The job ran and returned an error (after exhausting retries).
    Failed(String),
    /// The job panicked (after exhausting retries); the payload is the
    /// panic message.
    Panicked(String),
    /// The job ran longer than its per-job wall-clock budget; its result
    /// was discarded.
    TimedOut {
        /// The configured budget, in milliseconds.
        budget_ms: u64,
        /// How long the job actually ran, in milliseconds.
        elapsed_ms: u64,
    },
    /// The batch was cancelled before this job started.
    Cancelled,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Failed(e) => write!(f, "failed: {e}"),
            SweepError::Panicked(e) => write!(f, "panicked: {e}"),
            SweepError::TimedOut {
                budget_ms,
                elapsed_ms,
            } => write!(f, "timed out: ran {elapsed_ms} ms, budget {budget_ms} ms"),
            SweepError::Cancelled => write!(f, "cancelled before start"),
        }
    }
}

impl std::error::Error for SweepError {}

/// The per-row status the results schema reports for a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The job completed and its result is available.
    Ok,
    /// The job ran (possibly several times) and never produced a result.
    Failed,
    /// The job never started (cancellation or a `max_jobs` cutoff).
    Skipped,
}

impl JobStatus {
    /// The schema string for this status (`"ok"` / `"failed"` /
    /// `"skipped"`).
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Failed => "failed",
            JobStatus::Skipped => "skipped",
        }
    }
}

/// A cooperative cancellation flag shared between a sweep and its owner.
///
/// Cancelling never interrupts a job mid-run; jobs that have not started
/// yet finish immediately as [`SweepError::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Fires the token: jobs not yet started will be skipped.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// One unit of work: a label plus a retryable closure.
///
/// The closure is `Fn` (not `FnOnce`) so failed attempts can be retried.
pub struct SweepJob<T> {
    /// Display / results label for the job.
    pub label: String,
    run: Box<dyn Fn() -> Result<T, String> + Send + Sync>,
}

impl<T> SweepJob<T> {
    /// Wraps a closure as a job.
    pub fn new(
        label: impl Into<String>,
        run: impl Fn() -> Result<T, String> + Send + Sync + 'static,
    ) -> Self {
        SweepJob {
            label: label.into(),
            run: Box::new(run),
        }
    }
}

impl SweepJob<RunRecord> {
    /// A job that runs one [`Experiment`].
    pub fn experiment(label: impl Into<String>, exp: Experiment) -> Self {
        SweepJob::new(label, move || exp.run().map_err(|e| e.to_string()))
    }
}

impl<T> std::fmt::Debug for SweepJob<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepJob")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// Tuning knobs for a [`SweepRunner`].
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads; `None` uses `std::thread::available_parallelism`.
    pub workers: Option<usize>,
    /// Extra attempts after the first failure (0 = no retries).
    pub retries: u32,
    /// Base backoff between retries, doubled per attempt (milliseconds).
    pub backoff_ms: u64,
    /// Per-job wall-clock budget in milliseconds; `None` = unlimited.
    /// Enforced cooperatively: an over-budget job is not killed, but its
    /// result is discarded and reported as [`SweepError::TimedOut`].
    pub job_budget_ms: Option<u64>,
    /// Cancel the rest of the batch as soon as one job fails for good.
    pub fail_fast: bool,
    /// Start at most this many jobs; the rest report as skipped. Used for
    /// incremental sweeps and for exercising checkpoint/resume.
    pub max_jobs: Option<usize>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            workers: None,
            retries: 0,
            backoff_ms: 50,
            job_budget_ms: None,
            fail_fast: false,
            max_jobs: None,
        }
    }
}

/// What happened to one job, in input order inside a [`SweepBatch`].
#[derive(Debug)]
pub struct JobOutcome<T> {
    /// The job's label.
    pub label: String,
    /// How many times the job was attempted (0 for skipped jobs).
    pub attempts: u32,
    /// The job's result, or why there is none.
    pub result: Result<T, SweepError>,
}

impl<T> JobOutcome<T> {
    /// The schema status for this outcome.
    pub fn status(&self) -> JobStatus {
        match &self.result {
            Ok(_) => JobStatus::Ok,
            Err(SweepError::Cancelled) => JobStatus::Skipped,
            Err(_) => JobStatus::Failed,
        }
    }
}

/// The fail-soft batch executor. See the [module docs](self).
#[derive(Debug, Default)]
pub struct SweepRunner {
    options: SweepOptions,
    cancel: CancelToken,
}

impl SweepRunner {
    /// A runner with default options.
    pub fn new() -> Self {
        SweepRunner::default()
    }

    /// A runner with explicit options.
    pub fn with_options(options: SweepOptions) -> Self {
        SweepRunner {
            options,
            cancel: CancelToken::new(),
        }
    }

    /// The runner's cancellation token (clone it to cancel from outside).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Runs a batch, returning outcomes in input order.
    pub fn run<T: Send + Sync>(&self, jobs: Vec<SweepJob<T>>) -> SweepBatch<T> {
        self.run_observed(jobs, |_, _| {})
    }

    /// Runs a batch, invoking `observer` after each job completes (ok or
    /// not). Observer calls are serialized (never concurrent), which makes
    /// it a safe place to checkpoint completed rows; the job *dispatch*
    /// path stays lock-free.
    pub fn run_observed<T: Send + Sync>(
        &self,
        jobs: Vec<SweepJob<T>>,
        observer: impl Fn(usize, &JobOutcome<T>) + Sync,
    ) -> SweepBatch<T> {
        if jobs.is_empty() {
            return SweepBatch {
                outcomes: Vec::new(),
            };
        }
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let workers = self.options.workers.unwrap_or(parallelism).max(1);
        let workers = workers.min(jobs.len());

        // The whole dispatch path is this one counter: a worker claims the
        // next job with a single uncontended fetch_add — no shared lock to
        // poison, no cache line ping-pong beyond the counter itself.
        let next = AtomicUsize::new(0);
        let started = AtomicUsize::new(0);
        let slots: Vec<OnceLock<JobOutcome<T>>> = jobs.iter().map(|_| OnceLock::new()).collect();
        let observe = Mutex::new(&observer);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    let budget_ok = match self.options.max_jobs {
                        Some(max) => {
                            // Claim a start slot; over-budget claims are
                            // rolled back so a later resume sees an exact
                            // count.
                            let n = started.fetch_add(1, Ordering::Relaxed);
                            if n >= max {
                                started.fetch_sub(1, Ordering::Relaxed);
                                false
                            } else {
                                true
                            }
                        }
                        None => true,
                    };
                    let outcome = if !budget_ok || self.cancel.is_cancelled() {
                        JobOutcome {
                            label: job.label.clone(),
                            attempts: 0,
                            result: Err(SweepError::Cancelled),
                        }
                    } else {
                        self.attempt(job)
                    };
                    if outcome.result.is_err()
                        && outcome.status() == JobStatus::Failed
                        && self.options.fail_fast
                    {
                        self.cancel.cancel();
                    }
                    {
                        let guard = observe.lock().unwrap_or_else(|e| e.into_inner());
                        guard(i, &outcome);
                    }
                    let _ = slots[i].set(outcome);
                });
            }
        });

        SweepBatch {
            outcomes: slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("every claimed slot is filled"))
                .collect(),
        }
    }

    /// Runs one job on the calling thread with the full fail-soft
    /// containment — `catch_unwind` panic capture, retry with backoff, the
    /// per-job wall budget, and cancellation. This is what the `tenways
    /// serve` worker pool uses per cache miss: the pool owns the threads,
    /// the runner owns the containment policy.
    pub fn run_one<T>(&self, job: &SweepJob<T>) -> JobOutcome<T> {
        if self.cancel.is_cancelled() {
            return JobOutcome {
                label: job.label.clone(),
                attempts: 0,
                result: Err(SweepError::Cancelled),
            };
        }
        self.attempt(job)
    }

    /// Runs one job to completion, honouring retries, backoff and the
    /// per-job budget.
    fn attempt<T>(&self, job: &SweepJob<T>) -> JobOutcome<T> {
        let mut attempts = 0;
        let mut last_err;
        loop {
            attempts += 1;
            let begun = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| (job.run)()));
            let elapsed_ms = begun.elapsed().as_millis() as u64;
            let err = match result {
                Ok(Ok(value)) => match self.options.job_budget_ms {
                    Some(budget_ms) if elapsed_ms > budget_ms => SweepError::TimedOut {
                        budget_ms,
                        elapsed_ms,
                    },
                    _ => {
                        return JobOutcome {
                            label: job.label.clone(),
                            attempts,
                            result: Ok(value),
                        }
                    }
                },
                Ok(Err(e)) => SweepError::Failed(e),
                Err(payload) => SweepError::Panicked(panic_message(payload.as_ref())),
            };
            let retryable = !matches!(err, SweepError::TimedOut { .. });
            last_err = err;
            if !retryable || attempts > self.options.retries || self.cancel.is_cancelled() {
                return JobOutcome {
                    label: job.label.clone(),
                    attempts,
                    result: Err(last_err),
                };
            }
            let backoff = self
                .options
                .backoff_ms
                .saturating_mul(1u64 << (attempts - 1).min(6));
            if backoff > 0 {
                std::thread::sleep(Duration::from_millis(backoff.min(5_000)));
            }
        }
    }
}

/// Extracts a readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The outcomes of one batch, in input order.
#[derive(Debug)]
pub struct SweepBatch<T = RunRecord> {
    /// Per-job outcomes, in the order jobs were submitted.
    pub outcomes: Vec<JobOutcome<T>>,
}

impl<T> SweepBatch<T> {
    /// Number of jobs in the batch.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Whether every job completed successfully.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.result.is_ok())
    }

    /// `(ok, failed, skipped)` job counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for o in &self.outcomes {
            match o.status() {
                JobStatus::Ok => c.0 += 1,
                JobStatus::Failed => c.1 += 1,
                JobStatus::Skipped => c.2 += 1,
            }
        }
        c
    }

    /// Iterates `(label, error)` for every job that did not complete.
    pub fn failures(&self) -> impl Iterator<Item = (&str, &SweepError)> + '_ {
        self.outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().err().map(|e| (o.label.as_str(), e)))
    }

    /// Per-row status JSON: `row(label, value)` renders completed jobs
    /// (the `status`/`attempts` keys are appended); failed and skipped
    /// jobs become `{label, status, error}` rows, so no completed sibling
    /// work is ever dropped from the results document.
    pub fn status_rows_with(&self, row: impl Fn(&str, &T) -> Json) -> Vec<Json> {
        self.outcomes
            .iter()
            .map(|o| {
                let mut pairs = match &o.result {
                    Ok(value) => match row(&o.label, value) {
                        Json::Obj(pairs) => pairs,
                        other => vec![
                            ("label".to_string(), Json::from(o.label.clone())),
                            ("value".to_string(), other),
                        ],
                    },
                    Err(_) => vec![("label".to_string(), Json::from(o.label.clone()))],
                };
                pairs.push((
                    "status".to_string(),
                    Json::from(o.status().as_str().to_string()),
                ));
                if let Err(e) = &o.result {
                    if !matches!(e, SweepError::Cancelled) {
                        pairs.push(("error".to_string(), Json::from(e.to_string())));
                    }
                }
                if o.attempts > 1 {
                    pairs.push(("attempts".to_string(), Json::U64(u64::from(o.attempts))));
                }
                Json::Obj(pairs)
            })
            .collect()
    }

    /// Consumes the batch into `(label, value)` pairs, or `None` if any
    /// job did not complete.
    pub fn into_results(self) -> Option<Vec<(String, T)>> {
        if !self.all_ok() {
            return None;
        }
        Some(
            self.outcomes
                .into_iter()
                .map(|o| {
                    let value = o.result.unwrap_or_else(|_| unreachable!("checked all_ok"));
                    (o.label, value)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn ok_job(label: &str, v: u32) -> SweepJob<u32> {
        SweepJob::new(label, move || Ok(v))
    }

    #[test]
    fn results_come_back_in_input_order() {
        let jobs = (0..32).map(|i| ok_job(&format!("j{i}"), i)).collect();
        let batch = SweepRunner::new().run(jobs);
        let values: Vec<u32> = batch
            .outcomes
            .iter()
            .map(|o| *o.result.as_ref().unwrap())
            .collect();
        assert_eq!(values, (0..32).collect::<Vec<_>>());
        assert!(batch.all_ok());
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch = SweepRunner::new().run(Vec::<SweepJob<u32>>::new());
        assert!(batch.is_empty());
        assert!(batch.all_ok());
    }

    #[test]
    fn an_err_job_fails_alone_and_siblings_complete() {
        let jobs = vec![
            ok_job("a", 1),
            SweepJob::new("bad", || Err::<u32, _>("boom".to_string())),
            ok_job("c", 3),
        ];
        let batch = SweepRunner::new().run(jobs);
        assert_eq!(batch.counts(), (2, 1, 0));
        assert_eq!(batch.outcomes[0].result, Ok(1));
        assert_eq!(
            batch.outcomes[1].result,
            Err(SweepError::Failed("boom".to_string()))
        );
        assert_eq!(batch.outcomes[2].result, Ok(3));
    }

    #[test]
    fn a_panicking_job_fails_alone_and_siblings_complete() {
        let jobs = vec![
            ok_job("a", 1),
            SweepJob::new("kaboom", || -> Result<u32, String> {
                panic!("workload exploded")
            }),
            ok_job("c", 3),
        ];
        let batch = SweepRunner::new().run(jobs);
        assert_eq!(batch.counts(), (2, 1, 0));
        match &batch.outcomes[1].result {
            Err(SweepError::Panicked(msg)) => assert!(msg.contains("workload exploded")),
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(batch.outcomes[2].result, Ok(3));
    }

    #[test]
    fn retries_eventually_succeed() {
        let tries = Arc::new(AtomicU32::new(0));
        let t = tries.clone();
        let jobs = vec![SweepJob::new("flaky", move || {
            if t.fetch_add(1, Ordering::SeqCst) < 2 {
                Err("transient".to_string())
            } else {
                Ok(99u32)
            }
        })];
        let runner = SweepRunner::with_options(SweepOptions {
            retries: 3,
            backoff_ms: 0,
            ..SweepOptions::default()
        });
        let batch = runner.run(jobs);
        assert_eq!(batch.outcomes[0].result, Ok(99));
        assert_eq!(batch.outcomes[0].attempts, 3);
        assert_eq!(tries.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn retries_exhaust_into_failed() {
        let jobs = vec![SweepJob::new("hopeless", || {
            Err::<u32, _>("always".to_string())
        })];
        let runner = SweepRunner::with_options(SweepOptions {
            retries: 2,
            backoff_ms: 0,
            ..SweepOptions::default()
        });
        let batch = runner.run(jobs);
        assert_eq!(batch.outcomes[0].attempts, 3);
        assert_eq!(batch.outcomes[0].status(), JobStatus::Failed);
    }

    #[test]
    fn over_budget_jobs_report_timed_out() {
        let jobs = vec![SweepJob::new("slow", || {
            std::thread::sleep(Duration::from_millis(30));
            Ok(1u32)
        })];
        let runner = SweepRunner::with_options(SweepOptions {
            job_budget_ms: Some(1),
            ..SweepOptions::default()
        });
        let batch = runner.run(jobs);
        match &batch.outcomes[0].result {
            Err(SweepError::TimedOut { budget_ms, .. }) => assert_eq!(*budget_ms, 1),
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    #[test]
    fn fail_fast_skips_the_rest_of_the_batch() {
        let jobs = vec![
            SweepJob::new("bad", || Err::<u32, _>("first".to_string())),
            ok_job("b", 2),
            ok_job("c", 3),
        ];
        let runner = SweepRunner::with_options(SweepOptions {
            workers: Some(1),
            fail_fast: true,
            ..SweepOptions::default()
        });
        let batch = runner.run(jobs);
        assert_eq!(batch.counts(), (0, 1, 2));
        assert_eq!(batch.outcomes[1].result, Err(SweepError::Cancelled));
        assert_eq!(batch.outcomes[1].status(), JobStatus::Skipped);
    }

    #[test]
    fn cancel_token_skips_unstarted_jobs() {
        let runner = SweepRunner::with_options(SweepOptions {
            workers: Some(1),
            ..SweepOptions::default()
        });
        let token = runner.cancel_token();
        let jobs = vec![
            SweepJob::new("first", move || {
                token.cancel();
                Ok(1u32)
            }),
            ok_job("second", 2),
        ];
        let batch = runner.run(jobs);
        assert_eq!(batch.outcomes[0].result, Ok(1));
        assert_eq!(batch.outcomes[1].result, Err(SweepError::Cancelled));
    }

    #[test]
    fn max_jobs_caps_fresh_starts() {
        let jobs = (0..6).map(|i| ok_job(&format!("j{i}"), i)).collect();
        let runner = SweepRunner::with_options(SweepOptions {
            workers: Some(1),
            max_jobs: Some(2),
            ..SweepOptions::default()
        });
        let batch = runner.run(jobs);
        assert_eq!(batch.counts(), (2, 0, 4));
    }

    #[test]
    fn observer_sees_every_outcome() {
        let seen = Mutex::new(Vec::new());
        let jobs = (0..8).map(|i| ok_job(&format!("j{i}"), i)).collect();
        SweepRunner::new().run_observed(jobs, |i, o: &JobOutcome<u32>| {
            seen.lock().unwrap().push((i, o.status()));
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_by_key(|(i, _)| *i);
        assert_eq!(seen.len(), 8);
        assert!(seen.iter().all(|(_, s)| *s == JobStatus::Ok));
    }

    #[test]
    fn status_rows_carry_status_and_error() {
        let jobs = vec![
            ok_job("good", 7),
            SweepJob::new("bad", || Err::<u32, _>("nope".to_string())),
        ];
        let batch = SweepRunner::new().run(jobs);
        let rows = batch.status_rows_with(|label, v| {
            Json::obj([
                ("label", Json::from(label)),
                ("value", Json::U64(*v as u64)),
            ])
        });
        assert_eq!(
            rows[0].get("status").and_then(Json::as_str),
            Some("ok"),
            "{rows:?}"
        );
        assert_eq!(rows[0].get("value").and_then(Json::as_u64), Some(7));
        assert_eq!(rows[1].get("status").and_then(Json::as_str), Some("failed"));
        assert!(rows[1]
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("nope"));
    }
}
